# Empty compiler generated dependencies file for abl_fine_parity_striping.
# This may be replaced when dependencies are built.
