file(REMOVE_RECURSE
  "CMakeFiles/abl_fine_parity_striping.dir/abl_fine_parity_striping.cpp.o"
  "CMakeFiles/abl_fine_parity_striping.dir/abl_fine_parity_striping.cpp.o.d"
  "abl_fine_parity_striping"
  "abl_fine_parity_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fine_parity_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
