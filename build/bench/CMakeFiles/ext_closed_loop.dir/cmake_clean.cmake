file(REMOVE_RECURSE
  "CMakeFiles/ext_closed_loop.dir/ext_closed_loop.cpp.o"
  "CMakeFiles/ext_closed_loop.dir/ext_closed_loop.cpp.o.d"
  "ext_closed_loop"
  "ext_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
