# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig15_parity_caching_hit_ratio.
