file(REMOVE_RECURSE
  "CMakeFiles/fig15_parity_caching_hit_ratio.dir/fig15_parity_caching_hit_ratio.cpp.o"
  "CMakeFiles/fig15_parity_caching_hit_ratio.dir/fig15_parity_caching_hit_ratio.cpp.o.d"
  "fig15_parity_caching_hit_ratio"
  "fig15_parity_caching_hit_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_parity_caching_hit_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
