# Empty dependencies file for fig15_parity_caching_hit_ratio.
# This may be replaced when dependencies are built.
