# Empty dependencies file for fig08_uncached_striping_unit.
# This may be replaced when dependencies are built.
