file(REMOVE_RECURSE
  "CMakeFiles/fig08_uncached_striping_unit.dir/fig08_uncached_striping_unit.cpp.o"
  "CMakeFiles/fig08_uncached_striping_unit.dir/fig08_uncached_striping_unit.cpp.o.d"
  "fig08_uncached_striping_unit"
  "fig08_uncached_striping_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_uncached_striping_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
