file(REMOVE_RECURSE
  "CMakeFiles/fig04_sync_policies.dir/fig04_sync_policies.cpp.o"
  "CMakeFiles/fig04_sync_policies.dir/fig04_sync_policies.cpp.o.d"
  "fig04_sync_policies"
  "fig04_sync_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sync_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
