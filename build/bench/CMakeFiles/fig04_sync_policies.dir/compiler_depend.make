# Empty compiler generated dependencies file for fig04_sync_policies.
# This may be replaced when dependencies are built.
