# Empty compiler generated dependencies file for fig19_parity_caching_striping_unit.
# This may be replaced when dependencies are built.
