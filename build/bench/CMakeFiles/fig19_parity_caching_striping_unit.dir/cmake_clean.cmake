file(REMOVE_RECURSE
  "CMakeFiles/fig19_parity_caching_striping_unit.dir/fig19_parity_caching_striping_unit.cpp.o"
  "CMakeFiles/fig19_parity_caching_striping_unit.dir/fig19_parity_caching_striping_unit.cpp.o.d"
  "fig19_parity_caching_striping_unit"
  "fig19_parity_caching_striping_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_parity_caching_striping_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
