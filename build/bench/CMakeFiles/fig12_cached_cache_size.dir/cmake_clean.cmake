file(REMOVE_RECURSE
  "CMakeFiles/fig12_cached_cache_size.dir/fig12_cached_cache_size.cpp.o"
  "CMakeFiles/fig12_cached_cache_size.dir/fig12_cached_cache_size.cpp.o.d"
  "fig12_cached_cache_size"
  "fig12_cached_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cached_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
