# Empty dependencies file for fig12_cached_cache_size.
# This may be replaced when dependencies are built.
