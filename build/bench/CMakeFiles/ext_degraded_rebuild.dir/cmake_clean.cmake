file(REMOVE_RECURSE
  "CMakeFiles/ext_degraded_rebuild.dir/ext_degraded_rebuild.cpp.o"
  "CMakeFiles/ext_degraded_rebuild.dir/ext_degraded_rebuild.cpp.o.d"
  "ext_degraded_rebuild"
  "ext_degraded_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_degraded_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
