# Empty dependencies file for ext_degraded_rebuild.
# This may be replaced when dependencies are built.
