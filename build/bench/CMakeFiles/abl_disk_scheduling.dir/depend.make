# Empty dependencies file for abl_disk_scheduling.
# This may be replaced when dependencies are built.
