file(REMOVE_RECURSE
  "CMakeFiles/abl_disk_scheduling.dir/abl_disk_scheduling.cpp.o"
  "CMakeFiles/abl_disk_scheduling.dir/abl_disk_scheduling.cpp.o.d"
  "abl_disk_scheduling"
  "abl_disk_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_disk_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
