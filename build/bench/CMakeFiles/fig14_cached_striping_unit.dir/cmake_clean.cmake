file(REMOVE_RECURSE
  "CMakeFiles/fig14_cached_striping_unit.dir/fig14_cached_striping_unit.cpp.o"
  "CMakeFiles/fig14_cached_striping_unit.dir/fig14_cached_striping_unit.cpp.o.d"
  "fig14_cached_striping_unit"
  "fig14_cached_striping_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cached_striping_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
