# Empty compiler generated dependencies file for fig14_cached_striping_unit.
# This may be replaced when dependencies are built.
