# Empty compiler generated dependencies file for fig13_cached_array_size.
# This may be replaced when dependencies are built.
