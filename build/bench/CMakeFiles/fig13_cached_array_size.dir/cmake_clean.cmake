file(REMOVE_RECURSE
  "CMakeFiles/fig13_cached_array_size.dir/fig13_cached_array_size.cpp.o"
  "CMakeFiles/fig13_cached_array_size.dir/fig13_cached_array_size.cpp.o.d"
  "fig13_cached_array_size"
  "fig13_cached_array_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cached_array_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
