# Empty dependencies file for fig11_hit_ratios.
# This may be replaced when dependencies are built.
