file(REMOVE_RECURSE
  "CMakeFiles/fig11_hit_ratios.dir/fig11_hit_ratios.cpp.o"
  "CMakeFiles/fig11_hit_ratios.dir/fig11_hit_ratios.cpp.o.d"
  "fig11_hit_ratios"
  "fig11_hit_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hit_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
