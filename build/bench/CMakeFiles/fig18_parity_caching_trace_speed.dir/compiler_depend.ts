# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig18_parity_caching_trace_speed.
