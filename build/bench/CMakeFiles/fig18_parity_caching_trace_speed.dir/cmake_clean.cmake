file(REMOVE_RECURSE
  "CMakeFiles/fig18_parity_caching_trace_speed.dir/fig18_parity_caching_trace_speed.cpp.o"
  "CMakeFiles/fig18_parity_caching_trace_speed.dir/fig18_parity_caching_trace_speed.cpp.o.d"
  "fig18_parity_caching_trace_speed"
  "fig18_parity_caching_trace_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_parity_caching_trace_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
