# Empty compiler generated dependencies file for fig18_parity_caching_trace_speed.
# This may be replaced when dependencies are built.
