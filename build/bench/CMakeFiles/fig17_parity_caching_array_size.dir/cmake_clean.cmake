file(REMOVE_RECURSE
  "CMakeFiles/fig17_parity_caching_array_size.dir/fig17_parity_caching_array_size.cpp.o"
  "CMakeFiles/fig17_parity_caching_array_size.dir/fig17_parity_caching_array_size.cpp.o.d"
  "fig17_parity_caching_array_size"
  "fig17_parity_caching_array_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_parity_caching_array_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
