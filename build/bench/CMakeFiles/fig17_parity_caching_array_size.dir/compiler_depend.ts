# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_parity_caching_array_size.
