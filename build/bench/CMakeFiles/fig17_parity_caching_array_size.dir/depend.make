# Empty dependencies file for fig17_parity_caching_array_size.
# This may be replaced when dependencies are built.
