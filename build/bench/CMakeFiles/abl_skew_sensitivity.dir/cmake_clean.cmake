file(REMOVE_RECURSE
  "CMakeFiles/abl_skew_sensitivity.dir/abl_skew_sensitivity.cpp.o"
  "CMakeFiles/abl_skew_sensitivity.dir/abl_skew_sensitivity.cpp.o.d"
  "abl_skew_sensitivity"
  "abl_skew_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_skew_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
