# Empty dependencies file for fig16_parity_caching_cache_size.
# This may be replaced when dependencies are built.
