# Empty dependencies file for abl_destage_policy.
# This may be replaced when dependencies are built.
