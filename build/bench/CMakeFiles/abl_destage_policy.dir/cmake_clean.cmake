file(REMOVE_RECURSE
  "CMakeFiles/abl_destage_policy.dir/abl_destage_policy.cpp.o"
  "CMakeFiles/abl_destage_policy.dir/abl_destage_policy.cpp.o.d"
  "abl_destage_policy"
  "abl_destage_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_destage_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
