file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_access_distribution.dir/fig06_07_access_distribution.cpp.o"
  "CMakeFiles/fig06_07_access_distribution.dir/fig06_07_access_distribution.cpp.o.d"
  "fig06_07_access_distribution"
  "fig06_07_access_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_access_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
