# Empty compiler generated dependencies file for fig06_07_access_distribution.
# This may be replaced when dependencies are built.
