file(REMOVE_RECURSE
  "CMakeFiles/raidsim_bench_common.dir/common.cpp.o"
  "CMakeFiles/raidsim_bench_common.dir/common.cpp.o.d"
  "libraidsim_bench_common.a"
  "libraidsim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
