file(REMOVE_RECURSE
  "libraidsim_bench_common.a"
)
