# Empty dependencies file for raidsim_bench_common.
# This may be replaced when dependencies are built.
