# Empty compiler generated dependencies file for fig09_parity_placement.
# This may be replaced when dependencies are built.
