file(REMOVE_RECURSE
  "CMakeFiles/fig09_parity_placement.dir/fig09_parity_placement.cpp.o"
  "CMakeFiles/fig09_parity_placement.dir/fig09_parity_placement.cpp.o.d"
  "fig09_parity_placement"
  "fig09_parity_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_parity_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
