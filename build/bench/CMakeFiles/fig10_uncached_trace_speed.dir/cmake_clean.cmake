file(REMOVE_RECURSE
  "CMakeFiles/fig10_uncached_trace_speed.dir/fig10_uncached_trace_speed.cpp.o"
  "CMakeFiles/fig10_uncached_trace_speed.dir/fig10_uncached_trace_speed.cpp.o.d"
  "fig10_uncached_trace_speed"
  "fig10_uncached_trace_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_uncached_trace_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
