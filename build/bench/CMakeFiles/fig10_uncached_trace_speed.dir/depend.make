# Empty dependencies file for fig10_uncached_trace_speed.
# This may be replaced when dependencies are built.
