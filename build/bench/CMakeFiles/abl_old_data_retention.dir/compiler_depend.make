# Empty compiler generated dependencies file for abl_old_data_retention.
# This may be replaced when dependencies are built.
