file(REMOVE_RECURSE
  "CMakeFiles/abl_old_data_retention.dir/abl_old_data_retention.cpp.o"
  "CMakeFiles/abl_old_data_retention.dir/abl_old_data_retention.cpp.o.d"
  "abl_old_data_retention"
  "abl_old_data_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_old_data_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
