# Empty dependencies file for fig05_uncached_array_size.
# This may be replaced when dependencies are built.
