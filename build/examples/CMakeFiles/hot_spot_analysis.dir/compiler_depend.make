# Empty compiler generated dependencies file for hot_spot_analysis.
# This may be replaced when dependencies are built.
