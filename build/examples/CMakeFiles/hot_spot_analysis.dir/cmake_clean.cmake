file(REMOVE_RECURSE
  "CMakeFiles/hot_spot_analysis.dir/hot_spot_analysis.cpp.o"
  "CMakeFiles/hot_spot_analysis.dir/hot_spot_analysis.cpp.o.d"
  "hot_spot_analysis"
  "hot_spot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_spot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
