
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/raidsim_cli.cpp" "examples/CMakeFiles/raidsim_cli.dir/raidsim_cli.cpp.o" "gcc" "examples/CMakeFiles/raidsim_cli.dir/raidsim_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/raidsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/raidsim_array.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/raidsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/raidsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/raidsim_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/raidsim_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/raidsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/raidsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/raidsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
