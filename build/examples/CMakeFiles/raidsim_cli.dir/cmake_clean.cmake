file(REMOVE_RECURSE
  "CMakeFiles/raidsim_cli.dir/raidsim_cli.cpp.o"
  "CMakeFiles/raidsim_cli.dir/raidsim_cli.cpp.o.d"
  "raidsim_cli"
  "raidsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
