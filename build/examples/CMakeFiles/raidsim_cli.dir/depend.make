# Empty dependencies file for raidsim_cli.
# This may be replaced when dependencies are built.
