file(REMOVE_RECURSE
  "CMakeFiles/cache_tuning.dir/cache_tuning.cpp.o"
  "CMakeFiles/cache_tuning.dir/cache_tuning.cpp.o.d"
  "cache_tuning"
  "cache_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
