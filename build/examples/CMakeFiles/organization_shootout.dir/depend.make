# Empty dependencies file for organization_shootout.
# This may be replaced when dependencies are built.
