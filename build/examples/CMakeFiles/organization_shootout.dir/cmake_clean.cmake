file(REMOVE_RECURSE
  "CMakeFiles/organization_shootout.dir/organization_shootout.cpp.o"
  "CMakeFiles/organization_shootout.dir/organization_shootout.cpp.o.d"
  "organization_shootout"
  "organization_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/organization_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
