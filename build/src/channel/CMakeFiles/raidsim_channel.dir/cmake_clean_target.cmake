file(REMOVE_RECURSE
  "libraidsim_channel.a"
)
