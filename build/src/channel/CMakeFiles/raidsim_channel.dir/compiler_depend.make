# Empty compiler generated dependencies file for raidsim_channel.
# This may be replaced when dependencies are built.
