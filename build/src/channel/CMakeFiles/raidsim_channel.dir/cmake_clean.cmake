file(REMOVE_RECURSE
  "CMakeFiles/raidsim_channel.dir/channel.cpp.o"
  "CMakeFiles/raidsim_channel.dir/channel.cpp.o.d"
  "libraidsim_channel.a"
  "libraidsim_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
