# Empty compiler generated dependencies file for raidsim_core.
# This may be replaced when dependencies are built.
