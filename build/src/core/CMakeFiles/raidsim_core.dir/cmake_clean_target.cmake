file(REMOVE_RECURSE
  "libraidsim_core.a"
)
