file(REMOVE_RECURSE
  "CMakeFiles/raidsim_core.dir/closed_loop.cpp.o"
  "CMakeFiles/raidsim_core.dir/closed_loop.cpp.o.d"
  "CMakeFiles/raidsim_core.dir/config.cpp.o"
  "CMakeFiles/raidsim_core.dir/config.cpp.o.d"
  "CMakeFiles/raidsim_core.dir/metrics.cpp.o"
  "CMakeFiles/raidsim_core.dir/metrics.cpp.o.d"
  "CMakeFiles/raidsim_core.dir/reliability.cpp.o"
  "CMakeFiles/raidsim_core.dir/reliability.cpp.o.d"
  "CMakeFiles/raidsim_core.dir/replication.cpp.o"
  "CMakeFiles/raidsim_core.dir/replication.cpp.o.d"
  "CMakeFiles/raidsim_core.dir/simulator.cpp.o"
  "CMakeFiles/raidsim_core.dir/simulator.cpp.o.d"
  "CMakeFiles/raidsim_core.dir/workloads.cpp.o"
  "CMakeFiles/raidsim_core.dir/workloads.cpp.o.d"
  "libraidsim_core.a"
  "libraidsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
