file(REMOVE_RECURSE
  "CMakeFiles/raidsim_disk.dir/disk.cpp.o"
  "CMakeFiles/raidsim_disk.dir/disk.cpp.o.d"
  "CMakeFiles/raidsim_disk.dir/geometry.cpp.o"
  "CMakeFiles/raidsim_disk.dir/geometry.cpp.o.d"
  "CMakeFiles/raidsim_disk.dir/seek_model.cpp.o"
  "CMakeFiles/raidsim_disk.dir/seek_model.cpp.o.d"
  "libraidsim_disk.a"
  "libraidsim_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
