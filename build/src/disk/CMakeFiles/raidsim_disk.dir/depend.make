# Empty dependencies file for raidsim_disk.
# This may be replaced when dependencies are built.
