file(REMOVE_RECURSE
  "libraidsim_disk.a"
)
