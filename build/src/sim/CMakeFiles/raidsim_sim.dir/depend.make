# Empty dependencies file for raidsim_sim.
# This may be replaced when dependencies are built.
