file(REMOVE_RECURSE
  "libraidsim_sim.a"
)
