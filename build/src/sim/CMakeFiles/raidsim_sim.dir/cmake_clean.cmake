file(REMOVE_RECURSE
  "CMakeFiles/raidsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/raidsim_sim.dir/event_queue.cpp.o.d"
  "libraidsim_sim.a"
  "libraidsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
