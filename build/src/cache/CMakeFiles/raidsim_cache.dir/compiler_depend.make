# Empty compiler generated dependencies file for raidsim_cache.
# This may be replaced when dependencies are built.
