file(REMOVE_RECURSE
  "libraidsim_cache.a"
)
