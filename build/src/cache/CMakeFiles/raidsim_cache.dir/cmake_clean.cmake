file(REMOVE_RECURSE
  "CMakeFiles/raidsim_cache.dir/nv_cache.cpp.o"
  "CMakeFiles/raidsim_cache.dir/nv_cache.cpp.o.d"
  "libraidsim_cache.a"
  "libraidsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
