
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/cached_controller.cpp" "src/array/CMakeFiles/raidsim_array.dir/cached_controller.cpp.o" "gcc" "src/array/CMakeFiles/raidsim_array.dir/cached_controller.cpp.o.d"
  "/root/repo/src/array/controller.cpp" "src/array/CMakeFiles/raidsim_array.dir/controller.cpp.o" "gcc" "src/array/CMakeFiles/raidsim_array.dir/controller.cpp.o.d"
  "/root/repo/src/array/rebuild.cpp" "src/array/CMakeFiles/raidsim_array.dir/rebuild.cpp.o" "gcc" "src/array/CMakeFiles/raidsim_array.dir/rebuild.cpp.o.d"
  "/root/repo/src/array/uncached_controller.cpp" "src/array/CMakeFiles/raidsim_array.dir/uncached_controller.cpp.o" "gcc" "src/array/CMakeFiles/raidsim_array.dir/uncached_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/raidsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/raidsim_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/raidsim_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/raidsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/raidsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/raidsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
