# Empty dependencies file for raidsim_array.
# This may be replaced when dependencies are built.
