file(REMOVE_RECURSE
  "libraidsim_array.a"
)
