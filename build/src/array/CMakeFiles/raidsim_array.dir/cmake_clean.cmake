file(REMOVE_RECURSE
  "CMakeFiles/raidsim_array.dir/cached_controller.cpp.o"
  "CMakeFiles/raidsim_array.dir/cached_controller.cpp.o.d"
  "CMakeFiles/raidsim_array.dir/controller.cpp.o"
  "CMakeFiles/raidsim_array.dir/controller.cpp.o.d"
  "CMakeFiles/raidsim_array.dir/rebuild.cpp.o"
  "CMakeFiles/raidsim_array.dir/rebuild.cpp.o.d"
  "CMakeFiles/raidsim_array.dir/uncached_controller.cpp.o"
  "CMakeFiles/raidsim_array.dir/uncached_controller.cpp.o.d"
  "libraidsim_array.a"
  "libraidsim_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
