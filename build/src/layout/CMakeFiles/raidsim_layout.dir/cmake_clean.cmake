file(REMOVE_RECURSE
  "CMakeFiles/raidsim_layout.dir/layout.cpp.o"
  "CMakeFiles/raidsim_layout.dir/layout.cpp.o.d"
  "CMakeFiles/raidsim_layout.dir/placement_model.cpp.o"
  "CMakeFiles/raidsim_layout.dir/placement_model.cpp.o.d"
  "libraidsim_layout.a"
  "libraidsim_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
