# Empty compiler generated dependencies file for raidsim_layout.
# This may be replaced when dependencies are built.
