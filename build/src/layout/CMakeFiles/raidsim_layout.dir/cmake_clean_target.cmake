file(REMOVE_RECURSE
  "libraidsim_layout.a"
)
