file(REMOVE_RECURSE
  "libraidsim_trace.a"
)
