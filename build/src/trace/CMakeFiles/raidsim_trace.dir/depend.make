# Empty dependencies file for raidsim_trace.
# This may be replaced when dependencies are built.
