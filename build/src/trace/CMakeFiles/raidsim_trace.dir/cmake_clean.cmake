file(REMOVE_RECURSE
  "CMakeFiles/raidsim_trace.dir/lru_stack.cpp.o"
  "CMakeFiles/raidsim_trace.dir/lru_stack.cpp.o.d"
  "CMakeFiles/raidsim_trace.dir/record.cpp.o"
  "CMakeFiles/raidsim_trace.dir/record.cpp.o.d"
  "CMakeFiles/raidsim_trace.dir/synthetic.cpp.o"
  "CMakeFiles/raidsim_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/raidsim_trace.dir/trace_io.cpp.o"
  "CMakeFiles/raidsim_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/raidsim_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/raidsim_trace.dir/trace_stats.cpp.o.d"
  "libraidsim_trace.a"
  "libraidsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
