file(REMOVE_RECURSE
  "CMakeFiles/raidsim_util.dir/fenwick.cpp.o"
  "CMakeFiles/raidsim_util.dir/fenwick.cpp.o.d"
  "CMakeFiles/raidsim_util.dir/mixture.cpp.o"
  "CMakeFiles/raidsim_util.dir/mixture.cpp.o.d"
  "CMakeFiles/raidsim_util.dir/rng.cpp.o"
  "CMakeFiles/raidsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/raidsim_util.dir/stats.cpp.o"
  "CMakeFiles/raidsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/raidsim_util.dir/table.cpp.o"
  "CMakeFiles/raidsim_util.dir/table.cpp.o.d"
  "libraidsim_util.a"
  "libraidsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
