# Empty compiler generated dependencies file for raidsim_util.
# This may be replaced when dependencies are built.
