file(REMOVE_RECURSE
  "libraidsim_util.a"
)
