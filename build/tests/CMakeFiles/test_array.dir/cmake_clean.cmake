file(REMOVE_RECURSE
  "CMakeFiles/test_array.dir/array/buffer_pressure_test.cpp.o"
  "CMakeFiles/test_array.dir/array/buffer_pressure_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/cached_test.cpp.o"
  "CMakeFiles/test_array.dir/array/cached_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/channel_contention_test.cpp.o"
  "CMakeFiles/test_array.dir/array/channel_contention_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/controller_test.cpp.o"
  "CMakeFiles/test_array.dir/array/controller_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/degraded_cached_test.cpp.o"
  "CMakeFiles/test_array.dir/array/degraded_cached_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/degraded_test.cpp.o"
  "CMakeFiles/test_array.dir/array/degraded_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/parity_caching_test.cpp.o"
  "CMakeFiles/test_array.dir/array/parity_caching_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/sync_timing_test.cpp.o"
  "CMakeFiles/test_array.dir/array/sync_timing_test.cpp.o.d"
  "CMakeFiles/test_array.dir/array/uncached_test.cpp.o"
  "CMakeFiles/test_array.dir/array/uncached_test.cpp.o.d"
  "test_array"
  "test_array.pdb"
  "test_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
