file(REMOVE_RECURSE
  "CMakeFiles/test_layout.dir/layout/base_mirror_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/base_mirror_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/fine_parity_striping_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/fine_parity_striping_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/layout_property_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/layout_property_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/parity_striping_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/parity_striping_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/placement_model_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/placement_model_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/raid10_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/raid10_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/striped_parity_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/striped_parity_test.cpp.o.d"
  "test_layout"
  "test_layout.pdb"
  "test_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
