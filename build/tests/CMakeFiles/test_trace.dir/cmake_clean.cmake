file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/burstiness_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/burstiness_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/calibration_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/calibration_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/lru_stack_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/lru_stack_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/synthetic_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/synthetic_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_stats_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_stats_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
