file(REMOVE_RECURSE
  "CMakeFiles/test_disk.dir/disk/disk_test.cpp.o"
  "CMakeFiles/test_disk.dir/disk/disk_test.cpp.o.d"
  "CMakeFiles/test_disk.dir/disk/geometry_test.cpp.o"
  "CMakeFiles/test_disk.dir/disk/geometry_test.cpp.o.d"
  "CMakeFiles/test_disk.dir/disk/queueing_theory_test.cpp.o"
  "CMakeFiles/test_disk.dir/disk/queueing_theory_test.cpp.o.d"
  "CMakeFiles/test_disk.dir/disk/scheduling_test.cpp.o"
  "CMakeFiles/test_disk.dir/disk/scheduling_test.cpp.o.d"
  "CMakeFiles/test_disk.dir/disk/seek_model_test.cpp.o"
  "CMakeFiles/test_disk.dir/disk/seek_model_test.cpp.o.d"
  "test_disk"
  "test_disk.pdb"
  "test_disk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
