file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/closed_loop_test.cpp.o"
  "CMakeFiles/test_core.dir/core/closed_loop_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/conservation_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/conservation_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/reliability_test.cpp.o"
  "CMakeFiles/test_core.dir/core/reliability_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/replication_test.cpp.o"
  "CMakeFiles/test_core.dir/core/replication_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/simulator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/simulator_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
