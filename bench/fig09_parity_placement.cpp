// Figure 9: Parity Striping with parity areas on the middle vs the end
// cylinders, vs array size (uncached).
//
// Published shape: middle placement wins when the parity areas are hot
// relative to data areas (w > 1/N, so large N for the 10%-write
// Trace 1); for small N the large central parity area lengthens data
// seeks and the end placement wins. Trace 2 confirms the small-N trend.
#include "common.hpp"
#include "layout/placement_model.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Figure 9: parity placement in Parity Striping vs array size",
         "middle placement worse for small N (big central parity area); "
         "crossover near N ~ 1/w (~10 for Trace 1)",
         options);

  const std::vector<int> sizes{5, 10, 15, 20};
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto placement : {ParityPlacement::kMiddleCylinders,
                           ParityPlacement::kEndCylinders}) {
      Series s{to_string(placement), {}};
      for (int n : sizes) {
        SimulationConfig config;
        config.organization = Organization::kParityStriping;
        config.array_data_disks = n;
        config.parity_placement = placement;
        config.cached = false;
        s.values.push_back(
            run_config(config, trace, options).mean_response_ms());
      }
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (int n : sizes) xs.push_back("N=" + std::to_string(n));
    print_series_table("array size", xs, trace, series);

    // The paper's analytic rule (Section 4.2.3) next to the measurement.
    const double w = trace == "trace1" ? 0.10 : 0.28;
    std::cout << "analytic rule for w=" << w << ": middle wins for N >= "
              << placement_crossover_array_size(w) << "\n\n";
  }
  return 0;
}
