// Figure 14: response time vs striping unit for the cached RAID5
// organization (16 MB cache, N = 10).
//
// Published shape: the Trace 1 optimum moves up to ~16 blocks (the cache
// lightens the load, so seek affinity pays more than balancing); the
// Trace 2 optimum stays at 1 block because the hit ratio is low.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 14: response time vs striping unit (cached RAID5)",
         "Trace1 optimum grows to ~16 blocks under a cache; Trace2 stays "
         "at 1 block (low hit ratio keeps the load high)",
         options);

  const std::vector<int> units{1, 2, 4, 8, 16, 32, 64};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series s{"RAID5 (16MB cache)", {}};
    for (int unit : units) {
      SimulationConfig config;
      config.organization = Organization::kRaid5;
      config.striping_unit_blocks = unit;
      config.cached = true;
      s.values.push_back(
          run_config(config, trace, options).mean_response_ms());
    }
    std::vector<std::string> xs;
    for (int unit : units) xs.push_back(std::to_string(unit) + " blk");
    print_series_table("striping unit", xs, trace, {s});
  }
  return 0;
}
