#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "runner/sweep_runner.hpp"
#include "util/table.hpp"

namespace raidsim::bench {

/// Options shared by every reproduction bench.
///
///   --scale1=<f>   fraction of trace 1 to replay (default 0.2)
///   --scale2=<f>   fraction of trace 2 to replay (default 1.0)
///   --full         replay both traces in full
///   --seed=<n>     override the workload RNG seed
///   --quick        quarter the default scales (CI smoke)
///   --threads=<n>  sweep worker threads (default: hardware concurrency)
///   --shards=<n>   run every simulation on the sharded engine with n
///                  shards (0 = classic single-queue engine)
///   --shard-threads=<n>  threads per sharded run (0 = min(shards, hw))
///   --trace-out=<prefix>      trace every run; job i of a sweep writes
///                             `<prefix>_<i>.trace.json`
///   --sample-interval-ms=<t>  with --trace-out: also sample telemetry
///                             every t ms into `<prefix>_<i>.timeseries.csv`
///   --verbose      print per-run kernel event counts
struct BenchOptions {
  double scale1 = 0.2;
  double scale2 = 1.0;
  std::uint64_t seed = 0;
  int threads = 0;  // 0 = hardware_concurrency
  int shards = 0;         // >= 1: sharded engine for each simulation
  int shard_threads = 0;  // 0 = min(shards, hardware concurrency)
  std::string trace_out;
  double sample_interval_ms = 0.0;
  bool verbose = false;

  /// Parse argv over per-bench defaults (heavier sweeps ship smaller
  /// default scales so the whole suite stays fast).
  static BenchOptions parse(int argc, char** argv, BenchOptions defaults);
  static BenchOptions parse(int argc, char** argv);

  WorkloadOptions workload_options(const std::string& trace,
                                   double speed = 1.0) const;

  /// `config` with the engine selection (--shards/--shard-threads)
  /// applied.
  SimulationConfig engine_config(SimulationConfig config) const;
};

/// Run one configuration against one of the paper's workloads.
Metrics run_config(const SimulationConfig& config, const std::string& trace,
                   const BenchOptions& options, double speed = 1.0);

/// Deferred-execution sweep over simulation points. Figure programs queue
/// every (config, trace) point up front, then read results back in the
/// order the points were queued; the first result() call runs the whole
/// batch across options.threads workers (SweepRunner), so tables print
/// byte-identically at any thread count.
class Sweep {
 public:
  explicit Sweep(const BenchOptions& options);

  /// Queue one point; returns its index into result().
  std::size_t add(const SimulationConfig& config, const std::string& trace,
                  double speed = 1.0);

  /// Result of the i-th add(). Runs the batch on first call.
  const Metrics& result(std::size_t i);

  /// Mean response time of the i-th point, the quantity most figures plot.
  double response_ms(std::size_t i) { return result(i).mean_response_ms(); }

 private:
  BenchOptions options_;
  SweepRunner runner_;
  std::vector<SweepResult> results_;
  bool ran_ = false;
};

/// Standard bench banner: what is being reproduced and at what scale.
/// Also derives the slug used for data export (see below).
void banner(const std::string& experiment, const std::string& paper_claim,
            const BenchOptions& options);

/// Render a response-time table: one row per x value, one column pair per
/// series, for both traces.
struct Series {
  std::string name;
  std::vector<double> values;  // one per x
};
/// Prints the ASCII table; additionally, when the RAIDSIM_DATA_DIR
/// environment variable names a directory, writes the same series as
/// `<dir>/<experiment-slug>_<trace>.csv` for plotting.
void print_series_table(const std::string& x_name,
                        const std::vector<std::string>& x_values,
                        const std::string& trace_name,
                        const std::vector<Series>& series,
                        const std::string& value_name = "response (ms)");

}  // namespace raidsim::bench
