#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "util/table.hpp"

namespace raidsim::bench {

/// Options shared by every reproduction bench.
///
///   --scale1=<f>   fraction of trace 1 to replay (default 0.2)
///   --scale2=<f>   fraction of trace 2 to replay (default 1.0)
///   --full         replay both traces in full
///   --seed=<n>     override the workload RNG seed
///   --quick        quarter the default scales (CI smoke)
struct BenchOptions {
  double scale1 = 0.2;
  double scale2 = 1.0;
  std::uint64_t seed = 0;

  /// Parse argv over per-bench defaults (heavier sweeps ship smaller
  /// default scales so the whole suite stays fast).
  static BenchOptions parse(int argc, char** argv, BenchOptions defaults);
  static BenchOptions parse(int argc, char** argv);

  WorkloadOptions workload_options(const std::string& trace,
                                   double speed = 1.0) const;
};

/// Run one configuration against one of the paper's workloads.
Metrics run_config(const SimulationConfig& config, const std::string& trace,
                   const BenchOptions& options, double speed = 1.0);

/// Standard bench banner: what is being reproduced and at what scale.
/// Also derives the slug used for data export (see below).
void banner(const std::string& experiment, const std::string& paper_claim,
            const BenchOptions& options);

/// Render a response-time table: one row per x value, one column pair per
/// series, for both traces.
struct Series {
  std::string name;
  std::vector<double> values;  // one per x
};
/// Prints the ASCII table; additionally, when the RAIDSIM_DATA_DIR
/// environment variable names a directory, writes the same series as
/// `<dir>/<experiment-slug>_<trace>.csv` for plotting.
void print_series_table(const std::string& x_name,
                        const std::vector<std::string>& x_values,
                        const std::string& trace_name,
                        const std::vector<Series>& series,
                        const std::string& value_name = "response (ms)");

}  // namespace raidsim::bench
