// Ablation (Section 3.4): periodic background destage vs the basic LRU
// policy where dirty blocks are written back only when they reach the
// head of the LRU chain and a miss replaces them.
//
// Paper: "We have compared the two policies for various cache sizes and
// found that the periodic destage policy always performs better for all
// organizations."
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Ablation: periodic destage vs pure-LRU writeback",
         "periodic destage always wins (Section 3.4)",
         options);

  const std::vector<std::int64_t> cache_mb{8, 16, 64};
  const std::vector<Organization> orgs{Organization::kBase,
                                       Organization::kMirror,
                                       Organization::kRaid5};
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      for (bool periodic : {true, false}) {
        Series s{to_string(org) + (periodic ? " destage" : " pure-LRU"), {}};
        for (auto mb : cache_mb) {
          SimulationConfig config;
          config.organization = org;
          config.cached = true;
          config.cache_bytes = mb << 20;
          config.periodic_destage = periodic;
          s.values.push_back(
              run_config(config, trace, options).mean_response_ms());
        }
        series.push_back(std::move(s));
      }
    }
    std::vector<std::string> xs;
    for (auto mb : cache_mb) xs.push_back(std::to_string(mb) + " MB");
    print_series_table("cache size", xs, trace, series);
  }
  return 0;
}
