// Figure 11: read and write hit ratios vs cache size, for organizations
// with parity (which retain old data in the cache) and without.
//
// Published shape: Trace 1 write hit ratio near 1 for large caches (blocks
// are read before being updated) and read hit ratio rising from ~9% at
// 8 MB to ~54% at 256 MB; Trace 2 write hit 20% -> 60%+ and read hit <1%
// at 8 MB to ~40% at 256 MB. Keeping old blocks costs at most a few
// percentage points of hit ratio, vanishing as the cache grows.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.25;  // hit-ratio curves need long traces to warm up
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 11: hit ratio vs cache size (parity vs non-parity orgs)",
         "Trace1: write hit ~1 for large caches, read hit 9%@8MB -> "
         "54%@256MB; Trace2: write 20%->60%, read <1%@8MB -> 40%@256MB; "
         "old-data retention costs a few points at small caches",
         options);

  const std::vector<std::int64_t> cache_mb{8, 16, 32, 64, 128, 256};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series base_read{"Base read", {}}, base_write{"Base write", {}};
    Series raid_read{"RAID5 read", {}}, raid_write{"RAID5 write", {}};
    for (auto mb : cache_mb) {
      SimulationConfig config;
      config.cached = true;
      config.cache_bytes = mb << 20;
      config.organization = Organization::kBase;
      const Metrics base = run_config(config, trace, options);
      base_read.values.push_back(100.0 * base.read_hit_ratio());
      base_write.values.push_back(100.0 * base.write_hit_ratio());
      config.organization = Organization::kRaid5;
      const Metrics raid = run_config(config, trace, options);
      raid_read.values.push_back(100.0 * raid.read_hit_ratio());
      raid_write.values.push_back(100.0 * raid.write_hit_ratio());
    }
    std::vector<std::string> xs;
    for (auto mb : cache_mb) xs.push_back(std::to_string(mb) + " MB");
    print_series_table("cache size", xs, trace,
                       {base_read, raid_read, base_write, raid_write},
                       "hit ratio (%)");
  }
  return 0;
}
