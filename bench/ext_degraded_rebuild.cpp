// Extension: degraded-mode and rebuild performance. The paper motivates
// redundancy by media recovery and remarks (Section 4.2.1) that "large
// arrays are less reliable and have worse performance during
// reconstruction following a disk failure". This bench quantifies that:
// response time with all disks healthy, with one failed disk (degraded
// service), and while an online rebuild sweeps the failed disk, for
// Mirror / RAID5 / Parity Striping across array sizes.
#include "array/rebuild.hpp"
#include "common.hpp"

namespace {

using namespace raidsim;
using namespace raidsim::bench;

enum class Mode { kHealthy, kDegraded, kRebuilding };

double run_mode(Organization org, int n, Mode mode, const std::string& trace,
                const BenchOptions& options) {
  SimulationConfig config;
  config.organization = org;
  config.array_data_disks = n;
  config.cached = false;
  auto stream = make_workload(trace, options.workload_options(trace));

  Simulator sim(config, stream->geometry());
  std::unique_ptr<RebuildProcess> rebuild;
  if (mode != Mode::kHealthy) {
    // Fail the first disk of array 0 (the hot array does not matter for
    // the shape; every array sees statistically similar load).
    sim.mutable_controller(0).fail_disk(0);
  }
  if (mode == Mode::kRebuilding) {
    RebuildProcess::Options ro;
    ro.blocks_per_pass = 18;          // three tracks per pass
    ro.inter_pass_gap_ms = 2.0;       // mildly throttled sweep
    rebuild = std::make_unique<RebuildProcess>(sim.event_queue(),
                                               sim.mutable_controller(0), ro);
    rebuild->start(nullptr);
  }
  const Metrics m = sim.run(*stream);
  return m.mean_response_ms();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.scale1 = 0.05;
  defaults.scale2 = 0.5;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Extension: degraded-mode and rebuild performance",
         "degraded reads fan out to all N survivors, so larger arrays pay "
         "more per reconstruction and rebuild interferes longer",
         options);
  std::cout << "seed: " << options.seed
            << " (0 = workload default; override with --seed=<n>)\n\n";

  const std::vector<int> sizes{5, 10, 20};
  const std::vector<Organization> orgs{Organization::kMirror,
                                       Organization::kRaid5,
                                       Organization::kParityStriping};
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series healthy{to_string(org) + " ok", {}};
      Series degraded{to_string(org) + " degr", {}};
      Series rebuilding{to_string(org) + " rebld", {}};
      for (int n : sizes) {
        healthy.values.push_back(
            run_mode(org, n, Mode::kHealthy, trace, options));
        degraded.values.push_back(
            run_mode(org, n, Mode::kDegraded, trace, options));
        rebuilding.values.push_back(
            run_mode(org, n, Mode::kRebuilding, trace, options));
      }
      series.push_back(std::move(healthy));
      series.push_back(std::move(degraded));
      series.push_back(std::move(rebuilding));
    }
    std::vector<std::string> xs;
    for (int n : sizes) xs.push_back("N=" + std::to_string(n));
    print_series_table("array size", xs, trace, series);
  }
  return 0;
}
