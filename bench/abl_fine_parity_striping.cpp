// Ablation (Section 5 future work): classic Parity Striping concentrates
// each hot disk's parity updates on one other disk, correlating load
// increases across the array. The fine-grained variant rotates the
// parity-update load at chunk granularity while preserving the
// sequential data placement. Compare both against RAID5.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.1;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Ablation: fine-grained parity striping (Section 5 future work)",
         "rotating the parity-update load should recover part of RAID5's "
         "advantage while keeping Parity Striping's seek affinity",
         options);

  const std::vector<int> sizes{5, 10};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series classic{"ParStrip", {}}, fine{"ParStrip fine", {}},
        raid5{"RAID5", {}};
    for (int n : sizes) {
      SimulationConfig config;
      config.array_data_disks = n;
      config.cached = false;

      config.organization = Organization::kParityStriping;
      classic.values.push_back(
          run_config(config, trace, options).mean_response_ms());

      config.parity_fine_grain_chunk_blocks = 64;
      fine.values.push_back(
          run_config(config, trace, options).mean_response_ms());

      config.parity_fine_grain_chunk_blocks = 0;
      config.organization = Organization::kRaid5;
      raid5.values.push_back(
          run_config(config, trace, options).mean_response_ms());
    }
    std::vector<std::string> xs;
    for (int n : sizes) xs.push_back("N=" + std::to_string(n));
    print_series_table("array size", xs, trace, {classic, fine, raid5});
  }
  return 0;
}
