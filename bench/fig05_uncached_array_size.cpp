// Figure 5: response time vs array size N for the four organizations,
// uncached, both traces.
//
// Published shape: Trace 1 -- Mirror < Base < RAID5 < ParStrip (RAID5
// ~32% worse than Base at N=10; Mirror ~12% better; ParStrip deteriorates
// at small N). Trace 2 -- Mirror best (~25% better than Base), RAID5
// better than Base thanks to load balancing under heavy disk skew,
// ParStrip worst.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Figure 5: response time vs array size (uncached)",
         "Trace1: Mirror < Base < RAID5 (+32% at N=10) < ParStrip; "
         "Trace2: RAID5 beats Base via load balancing",
         options);

  const std::vector<int> sizes{5, 10, 15, 20};
  const std::vector<Organization> orgs{
      Organization::kBase, Organization::kMirror, Organization::kRaid5,
      Organization::kParityStriping};

  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series s{to_string(org), {}};
      for (int n : sizes) {
        SimulationConfig config;
        config.organization = org;
        config.array_data_disks = n;
        config.cached = false;
        const Metrics m = run_config(config, trace, options);
        s.values.push_back(m.mean_response_ms());
      }
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (int n : sizes) xs.push_back("N=" + std::to_string(n));
    print_series_table("array size", xs, trace, series);
  }
  return 0;
}
