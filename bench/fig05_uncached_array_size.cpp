// Figure 5: response time vs array size N for the four organizations,
// uncached, both traces.
//
// Published shape: Trace 1 -- Mirror < Base < RAID5 < ParStrip (RAID5
// ~32% worse than Base at N=10; Mirror ~12% better; ParStrip deteriorates
// at small N). Trace 2 -- Mirror best (~25% better than Base), RAID5
// better than Base thanks to load balancing under heavy disk skew,
// ParStrip worst.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Figure 5: response time vs array size (uncached)",
         "Trace1: Mirror < Base < RAID5 (+32% at N=10) < ParStrip; "
         "Trace2: RAID5 beats Base via load balancing",
         options);

  const std::vector<int> sizes{5, 10, 15, 20};
  const std::vector<Organization> orgs{
      Organization::kBase, Organization::kMirror, Organization::kRaid5,
      Organization::kParityStriping};

  // Queue every (trace, org, N) point, run them in parallel, then print
  // in queue order.
  Sweep sweep(options);
  for (const std::string trace : {"trace1", "trace2"}) {
    for (auto org : orgs) {
      for (int n : sizes) {
        SimulationConfig config;
        config.organization = org;
        config.array_data_disks = n;
        config.cached = false;
        sweep.add(config, trace);
      }
    }
  }

  std::size_t point = 0;
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series s{to_string(org), {}};
      for (std::size_t i = 0; i < sizes.size(); ++i)
        s.values.push_back(sweep.response_ms(point++));
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (int n : sizes) xs.push_back("N=" + std::to_string(n));
    print_series_table("array size", xs, trace, series);
  }
  return 0;
}
