// Figure 17: response time vs array size for RAID5 vs RAID4 with parity
// caching at equal total cache (N=5 -> 8 MB, N=10 -> 16 MB, N=20 -> 32 MB).
//
// Published shape: RAID5 wins at N=5 (RAID4 sacrifices one of six arms);
// from N=10 upward RAID4 wins and the gap widens with N because a larger
// fraction of its disks serve reads while the parity disk keeps up.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 17: array size at equal total cache (RAID5 vs RAID4)",
         "RAID5 ahead at N=5; RAID4 ahead from N=10, widening with N",
         options);

  struct Point {
    int n;
    std::int64_t cache_mb;
  };
  const std::vector<Point> points{{5, 8}, {10, 16}, {20, 32}};

  Sweep sweep(options);
  for (const std::string trace : {"trace1", "trace2"}) {
    for (const auto& point : points) {
      SimulationConfig config;
      config.cached = true;
      config.array_data_disks = point.n;
      config.cache_bytes = point.cache_mb << 20;
      config.organization = Organization::kRaid5;
      sweep.add(config, trace);
      config.organization = Organization::kRaid4;
      config.parity_caching = true;
      sweep.add(config, trace);
    }
  }

  std::size_t job = 0;
  for (const std::string trace : {"trace1", "trace2"}) {
    Series r5{"RAID5", {}}, r4{"RAID4+parity", {}};
    for (std::size_t i = 0; i < points.size(); ++i) {
      r5.values.push_back(sweep.response_ms(job++));
      r4.values.push_back(sweep.response_ms(job++));
    }
    std::vector<std::string> xs;
    for (const auto& point : points)
      xs.push_back("N=" + std::to_string(point.n) + "/" +
                   std::to_string(point.cache_mb) + "MB");
    print_series_table("array size / cache", xs, trace, {r5, r4});
  }
  return 0;
}
