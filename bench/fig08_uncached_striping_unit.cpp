// Figure 8: response time vs RAID5 striping unit (uncached, N = 10).
//
// Published shape: Trace 1 optimum around 8 blocks with little
// difference from 1 to 16; Trace 2 optimum at 1 block (load balancing
// dominates); 32+ blocks degrade markedly and very large units approach
// Parity Striping.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Figure 8: response time vs striping unit (uncached RAID5, N=10)",
         "Trace1 optimum ~8 blocks (flat 1..16); Trace2 optimum 1 block; "
         ">=32 blocks degrades toward Parity Striping",
         options);

  const std::vector<int> units{1, 2, 4, 8, 16, 32, 64};

  Sweep sweep(options);
  for (const std::string trace : {"trace1", "trace2"}) {
    for (int unit : units) {
      SimulationConfig config;
      config.organization = Organization::kRaid5;
      config.striping_unit_blocks = unit;
      config.cached = false;
      sweep.add(config, trace);
    }
    // Parity Striping reference line (the "infinite unit" limit).
    SimulationConfig ps;
    ps.organization = Organization::kParityStriping;
    sweep.add(ps, trace);
  }

  std::size_t point = 0;
  for (const std::string trace : {"trace1", "trace2"}) {
    Series raid5{"RAID5", {}};
    for (std::size_t i = 0; i < units.size(); ++i)
      raid5.values.push_back(sweep.response_ms(point++));
    const double ps_value = sweep.response_ms(point++);
    Series reference{"ParStrip (ref)", std::vector<double>(units.size(), ps_value)};

    std::vector<std::string> xs;
    for (int unit : units) xs.push_back(std::to_string(unit) + " blk");
    print_series_table("striping unit", xs, trace, {raid5, reference});
  }
  return 0;
}
