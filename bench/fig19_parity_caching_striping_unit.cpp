// Figure 19: response time vs striping unit, RAID5 vs RAID4 with parity
// caching (cached, 16 MB, N = 10).
//
// Published shape: response falls at first as seek affinity improves,
// then rises as large units unbalance the load; the optimum is smaller
// for the higher-utilization Trace 2.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 19: striping unit (RAID5 vs RAID4+parity caching)",
         "U-shaped curves; optimum smaller for the hotter Trace 2",
         options);

  const std::vector<int> units{1, 2, 4, 8, 16, 32, 64};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series r5{"RAID5", {}}, r4{"RAID4+parity", {}};
    for (int unit : units) {
      SimulationConfig config;
      config.cached = true;
      config.striping_unit_blocks = unit;
      config.organization = Organization::kRaid5;
      r5.values.push_back(run_config(config, trace, options).mean_response_ms());
      config.organization = Organization::kRaid4;
      config.parity_caching = true;
      r4.values.push_back(run_config(config, trace, options).mean_response_ms());
    }
    std::vector<std::string> xs;
    for (int unit : units) xs.push_back(std::to_string(unit) + " blk");
    print_series_table("striping unit", xs, trace, {r5, r4});
  }
  return 0;
}
