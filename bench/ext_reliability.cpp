// Extension: the availability arithmetic motivating the paper
// (Section 1). Reproduces the footnote ("for large systems, e.g., with
// over 150 disks, the MTTF of the permanent storage subsystem can be
// less than 28 days" at 100,000 h per disk) and tabulates MTTDL,
// physical disk counts, and storage overhead for every organization on
// the trace 1 database (130 data disks).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/reliability.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Extension: reliability (MTTDL) of the organizations",
         "Section 1: >150 non-redundant disks -> storage MTTF under 28 "
         "days; redundancy recovers orders of magnitude",
         options);

  {
    TablePrinter footnote({"non-redundant disks", "system MTTF (days)"});
    for (int disks : {50, 100, 130, 150, 151, 200}) {
      footnote.add_row(
          {std::to_string(disks),
           TablePrinter::num(
               system_mttdl_hours(Organization::kBase, disks, 10) / 24.0,
               1)});
    }
    footnote.print(std::cout);
    std::cout << "\n";
  }

  const ReliabilityParams params;  // 100,000 h MTTF, 24 h repair
  TablePrinter table({"organization", "N", "disks", "overhead",
                      "group MTTDL (yr)", "system MTTDL (yr)"});
  const int database = 130;  // trace 1
  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid5, Organization::kParityStriping}) {
    for (int n : {5, 10, 20}) {
      if (org == Organization::kBase && n != 10) continue;
      if (org == Organization::kMirror && n != 10) continue;
      const double hours_per_year = 24.0 * 365.0;
      table.add_row(
          {to_string(org), std::to_string(n),
           std::to_string(disks_required(org, database, n)),
           TablePrinter::num(100.0 * storage_overhead(org, n), 0) + "%",
           TablePrinter::num(group_mttdl_hours(org, n, params) /
                                 hours_per_year,
                             1),
           TablePrinter::num(
               system_mttdl_hours(org, database, n, params) / hours_per_year,
               1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nLarger parity groups trade MTTDL (and rebuild time; see "
               "ext_degraded_rebuild) for fewer parity disks.\n";
  return 0;
}
