// Ablation: disk-access skew sensitivity. Menon and Mattson (cited in
// Section 4.2) found that WITHOUT disk skew, non-cached RAID5 can be
// ~50% worse than non-striped systems, while the paper's skewed traces
// narrow or even invert that gap. We sweep the generator's skew knob to
// show the crossover that reconciles the two results.
#include "common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Ablation: RAID5-vs-Base gap as a function of disk skew",
         "no skew -> write penalty dominates (Menon-Mattson); heavy skew "
         "-> load balancing wins (Trace 2 regime)",
         options);

  const std::vector<double> sigmas{0.0, 0.5, 1.0, 1.5};
  Series base{"Base", {}}, raid5{"RAID5", {}}, ratio{"RAID5/Base", {}};
  for (double sigma : sigmas) {
    TraceProfile profile = TraceProfile::trace2();
    profile.requests = static_cast<std::uint64_t>(
        static_cast<double>(profile.requests) * options.scale2);
    profile.duration_s *= options.scale2;
    profile.disk_skew_sigma = sigma;
    if (options.seed) profile.seed = options.seed;

    SimulationConfig config;
    config.organization = Organization::kBase;
    SyntheticTrace base_trace(profile);
    const double base_ms =
        run_simulation(config, base_trace).mean_response_ms();

    config.organization = Organization::kRaid5;
    SyntheticTrace raid_trace(profile);
    const double raid_ms =
        run_simulation(config, raid_trace).mean_response_ms();

    base.values.push_back(base_ms);
    raid5.values.push_back(raid_ms);
    ratio.values.push_back(raid_ms / base_ms);
  }
  std::vector<std::string> xs;
  for (double sigma : sigmas) xs.push_back("sigma=" + TablePrinter::num(sigma, 1));
  print_series_table("disk skew", xs, "trace2-derived workload",
                     {base, raid5, ratio});
  std::cout << "RAID5/Base > 1 means the write penalty dominates;\n"
               "< 1 means load balancing wins.\n";
  return 0;
}
