// Figure 16: response time vs cache size, RAID5 (data caching) vs RAID4
// with parity caching.
//
// Published shape: RAID4 always at least slightly ahead on Trace 1
// (~2% at 8 MB, ~1% at 16 MB); on write-heavy low-locality Trace 2 the
// advantage is large at small caches (~15% at 16 MB) and narrows as the
// cache grows.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 16: response time vs cache size (RAID5 vs RAID4+parity)",
         "RAID4+parity caching ahead of RAID5: ~1-2% on Trace 1, up to "
         "~15% on Trace 2 at 16 MB, narrowing with cache size",
         options);

  const std::vector<std::int64_t> cache_mb{8, 16, 32, 64, 128, 256};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series r5{"RAID5", {}}, r4{"RAID4+parity", {}};
    for (auto mb : cache_mb) {
      SimulationConfig config;
      config.cached = true;
      config.cache_bytes = mb << 20;
      config.organization = Organization::kRaid5;
      r5.values.push_back(run_config(config, trace, options).mean_response_ms());
      config.organization = Organization::kRaid4;
      config.parity_caching = true;
      r4.values.push_back(run_config(config, trace, options).mean_response_ms());
    }
    std::vector<std::string> xs;
    for (auto mb : cache_mb) xs.push_back(std::to_string(mb) + " MB");
    print_series_table("cache size", xs, trace, {r5, r4});
  }
  return 0;
}
