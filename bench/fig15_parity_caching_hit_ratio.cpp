// Figure 15: hit ratios vs cache size for RAID5 (data caching only) vs
// RAID4 with parity caching (parity competes for the same cache).
//
// Published shape: buffering parity barely dents the hit ratio on
// Trace 1; on Trace 2 the gap is wider but only where the hit ratio is
// tiny anyway.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.25;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 15: hit ratio vs cache size (RAID5 vs RAID4+parity caching)",
         "parity slots cost little hit ratio; the visible gap sits where "
         "hit ratios are tiny anyway",
         options);

  const std::vector<std::int64_t> cache_mb{8, 16, 32, 64, 128, 256};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series r5_read{"RAID5 read", {}}, r5_write{"RAID5 write", {}};
    Series r4_read{"RAID4 read", {}}, r4_write{"RAID4 write", {}};
    for (auto mb : cache_mb) {
      SimulationConfig config;
      config.cached = true;
      config.cache_bytes = mb << 20;
      config.organization = Organization::kRaid5;
      const Metrics r5 = run_config(config, trace, options);
      r5_read.values.push_back(100.0 * r5.read_hit_ratio());
      r5_write.values.push_back(100.0 * r5.write_hit_ratio());
      config.organization = Organization::kRaid4;
      config.parity_caching = true;
      const Metrics r4 = run_config(config, trace, options);
      r4_read.values.push_back(100.0 * r4.read_hit_ratio());
      r4_write.values.push_back(100.0 * r4.write_hit_ratio());
    }
    std::vector<std::string> xs;
    for (auto mb : cache_mb) xs.push_back(std::to_string(mb) + " MB");
    print_series_table("cache size", xs, trace,
                       {r5_read, r4_read, r5_write, r4_write},
                       "hit ratio (%)");
  }
  return 0;
}
