// Micro-benchmarks (google-benchmark) for the simulator substrates:
// event queue, disk service model, NV cache (mixed ops, index probes,
// eviction churn), Fenwick-backed LRU stack, trace generation, and
// trace loading (text parse vs binary walk).
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "cache/nv_cache.hpp"
#include "disk/disk.hpp"
#include "sim/event_queue.hpp"
#include "trace/lru_stack.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace {

using namespace raidsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < n; ++i)
      eq.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    eq.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_DiskRandomReads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DiskGeometry geo;
  const SeekModel seek = SeekModel::calibrate(SeekSpec{});
  Rng rng(1);
  for (auto _ : state) {
    EventQueue eq;
    Disk disk(eq, geo, &seek, 0);
    for (int i = 0; i < n; ++i) {
      DiskRequest req;
      req.kind = DiskOpKind::kRead;
      req.start_block =
          static_cast<std::int64_t>(rng.uniform_u64(
              static_cast<std::uint64_t>(geo.total_blocks())));
      disk.submit(std::move(req));
    }
    eq.run();
    benchmark::DoNotOptimize(disk.stats().busy_ms);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DiskRandomReads)->Arg(4096);

void BM_NvCacheMixedOps(benchmark::State& state) {
  Rng rng(2);
  NvCache cache(4096, true);
  for (auto _ : state) {
    const std::int64_t block = rng.uniform_i64(0, 20000);
    if (rng.bernoulli(0.3)) {
      benchmark::DoNotOptimize(cache.write(block));
    } else if (!cache.read(block)) {
      benchmark::DoNotOptimize(cache.insert_clean(block));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvCacheMixedOps);

// Pure index probes on a full cache (every lookup hits): isolates the
// open-addressing find + LRU touch from eviction machinery.
void BM_NvCacheIndexProbe(benchmark::State& state) {
  const std::int64_t capacity = state.range(0);
  NvCache cache(static_cast<std::size_t>(capacity), false);
  for (std::int64_t b = 0; b < capacity; ++b) cache.insert_clean(b);
  Rng rng(5);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.read(rng.uniform_i64(0, capacity - 1)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvCacheIndexProbe)->Arg(1024)->Arg(65536);

// Insert into a full cache: every op evicts the LRU entry (index erase
// with backward-shift deletion + slab recycle + fresh insert).
void BM_NvCacheInsertEvict(benchmark::State& state) {
  const std::int64_t capacity = state.range(0);
  NvCache cache(static_cast<std::size_t>(capacity), false);
  std::int64_t next = 0;
  for (; next < capacity; ++next) cache.insert_clean(next);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.insert_clean(next++));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvCacheInsertEvict)->Arg(1024)->Arg(65536);

// Destage sweep over a half-dirty cache: collect_dirty walks the
// intrusive LRU list, then each block takes the begin/end flag cycle.
void BM_NvCacheDestageSweep(benchmark::State& state) {
  const std::int64_t capacity = 16384;
  NvCache cache(static_cast<std::size_t>(capacity), false);
  for (std::int64_t b = 0; b < capacity; ++b) cache.insert_clean(b);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::int64_t b = 0; b < capacity; b += 2) cache.write(b);
    state.ResumeTiming();
    const auto dirty = cache.collect_dirty();
    for (const std::int64_t b : dirty) {
      cache.begin_destage(b);
      cache.end_destage(b);
    }
    benchmark::DoNotOptimize(dirty.size());
  }
  state.SetItemsProcessed(state.iterations() * (capacity / 2));
}
BENCHMARK(BM_NvCacheDestageSweep);

const std::string& trace_text_image() {
  static const std::string image = [] {
    TraceProfile profile = TraceProfile::trace2();
    profile.requests = 20000;
    SyntheticTrace trace(profile);
    std::ostringstream out;
    TraceWriter::write(trace, out);
    return out.str();
  }();
  return image;
}

const std::string& trace_binary_image() {
  static const std::string image = [] {
    TraceProfile profile = TraceProfile::trace2();
    profile.requests = 20000;
    SyntheticTrace trace(profile);
    std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
    BinaryTraceWriter::write(trace, out);
    return out.str();
  }();
  return image;
}

void BM_TraceLoadText(benchmark::State& state) {
  const std::string& image = trace_text_image();
  for (auto _ : state) {
    TraceReader reader(std::make_unique<std::istringstream>(image));
    std::int64_t sum = 0;
    while (auto rec = reader.next()) sum += rec->block;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TraceLoadText);

void BM_TraceLoadBinary(benchmark::State& state) {
  const std::string& image = trace_binary_image();
  for (auto _ : state) {
    auto reader =
        BinaryTraceReader::from_buffer(image.data(), image.size());
    std::int64_t sum = 0;
    while (auto rec = reader->next()) sum += rec->block;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TraceLoadBinary);

void BM_FenwickAddSelect(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  FenwickTree tree(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; i += 2) tree.add(i, 1);
  for (auto _ : state) {
    const auto i = static_cast<std::size_t>(rng.uniform_u64(n));
    tree.add(i, 1);
    benchmark::DoNotOptimize(
        tree.select(1 + static_cast<std::int64_t>(
                            rng.uniform_u64(
                                static_cast<std::uint64_t>(tree.total())))));
    tree.add(i, -1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FenwickAddSelect);

void BM_LruStackTouchAtDepth(benchmark::State& state) {
  LruStack stack;
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) stack.touch(rng.uniform_i64(0, 99999));
  for (auto _ : state) {
    const auto depth =
        static_cast<std::size_t>(rng.uniform_u64(stack.size()));
    const auto block = stack.at_depth(depth);
    stack.touch(*block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStackTouchAtDepth);

void BM_SyntheticTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    TraceProfile profile = TraceProfile::trace2();
    profile.requests = 20000;
    SyntheticTrace trace(profile);
    std::uint64_t sum = 0;
    while (auto rec = trace.next()) sum += static_cast<std::uint64_t>(rec->block);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SyntheticTraceGeneration);

}  // namespace

BENCHMARK_MAIN();
