// Figures 6 and 7: distribution of accesses over the disks of Trace 1,
// for the Base organization (significant skew) and for RAID5 with a
// 1-block striping unit (skew smoothed out within each array).
//
// Printed as a per-disk access histogram plus summary statistics; the
// paper's claim is qualitative: "Most of the skew within the array is
// smoothed out in the RAID5 organization."
#include <algorithm>
#include <cstdio>

#include "common.hpp"

namespace {

void print_distribution(const std::string& name, const raidsim::Metrics& m) {
  using raidsim::TablePrinter;
  const auto& counts = m.disk_accesses;
  const auto max_count = *std::max_element(counts.begin(), counts.end());
  std::printf("%s: %zu disks, CV of per-disk accesses = %.3f\n", name.c_str(),
              counts.size(), m.disk_access_cv());
  // Compact bar chart, eight disks per line.
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int bar = max_count
                        ? static_cast<int>(40.0 * static_cast<double>(counts[i]) /
                                           static_cast<double>(max_count))
                        : 0;
    std::printf("  disk %3zu %8llu %s\n", i,
                static_cast<unsigned long long>(counts[i]),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
    if (i == 31 && counts.size() > 40) {
      std::printf("  ... (%zu more disks)\n", counts.size() - 32);
      break;
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Figures 6-7: access distribution over disks (Trace 1)",
         "Base inherits the workload's disk skew; RAID5 (1-block striping "
         "unit) smooths it out",
         options);

  Metrics base, raid5;
  {
    SimulationConfig config;
    config.organization = Organization::kBase;
    base = run_config(config, "trace1", options);
  }
  {
    SimulationConfig config;
    config.organization = Organization::kRaid5;
    config.striping_unit_blocks = 1;
    raid5 = run_config(config, "trace1", options);
  }

  print_distribution("Figure 6 -- Base organization", base);
  print_distribution("Figure 7 -- RAID5, striping unit = 1 block", raid5);

  TablePrinter summary({"organization", "access CV", "max/mean"});
  auto max_over_mean = [](const Metrics& m) {
    double mean = 0.0;
    std::uint64_t max = 0;
    for (auto c : m.disk_accesses) {
      mean += static_cast<double>(c);
      max = std::max(max, c);
    }
    mean /= static_cast<double>(m.disk_accesses.size());
    return static_cast<double>(max) / mean;
  };
  summary.add_row({"Base", TablePrinter::num(base.disk_access_cv(), 3),
                   TablePrinter::num(max_over_mean(base), 2)});
  summary.add_row({"RAID5", TablePrinter::num(raid5.disk_access_cv(), 3),
                   TablePrinter::num(max_over_mean(raid5), 2)});
  summary.print(std::cout);
  return 0;
}
