// Figure 10: response time vs trace speed (0.5x, 1x, 2x), four
// organizations, uncached.
//
// Published shape: RAID5 degrades gracefully as load doubles and ends up
// better than mirrors at 2x; Parity Striping (and to a lesser degree
// Base) degrade severely; at 0.5x on Trace 2 the Base organization beats
// RAID5 because queueing vanishes and load balancing stops mattering.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.1;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 10: response time vs trace speed (uncached)",
         "RAID5 degrades gracefully (beats Mirror at 2x); ParStrip and "
         "Base degrade severely; Base beats RAID5 at 0.5x on Trace 2",
         options);

  const std::vector<double> speeds{0.5, 1.0, 2.0};
  const std::vector<Organization> orgs{
      Organization::kBase, Organization::kMirror, Organization::kRaid5,
      Organization::kParityStriping};

  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series s{to_string(org), {}};
      for (double speed : speeds) {
        SimulationConfig config;
        config.organization = org;
        config.cached = false;
        s.values.push_back(
            run_config(config, trace, options, speed).mean_response_ms());
      }
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (double speed : speeds)
      xs.push_back(TablePrinter::num(speed, 1) + "x");
    print_series_table("trace speed", xs, trace, series);
  }
  return 0;
}
