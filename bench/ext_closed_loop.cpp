// Extension: closed-loop load scaling. Section 4.2.4 cautions that
// speeding up a trace "does not reflect the characteristics of any real
// system... transactions may have to wait for one I/O to finish before
// issuing another one". This bench scales load the realistic way -- by
// multiprogramming level -- and shows throughput/response curves per
// organization, including the RAID10 extension.
#include "common.hpp"
#include "core/closed_loop.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Extension: closed-loop load scaling (MPL sweep)",
         "load scaled by multiprogramming level instead of trace speedup; "
         "RAID5's balancing shows as higher sustained throughput",
         options);

  const std::vector<int> mpls{1, 4, 16, 64};
  const std::vector<Organization> orgs{
      Organization::kBase, Organization::kMirror, Organization::kRaid5,
      Organization::kRaid10, Organization::kParityStriping};

  for (const char* metric : {"response", "throughput"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series s{to_string(org), {}};
      for (int mpl : mpls) {
        SimulationConfig config;
        config.organization = org;
        ClosedLoopOptions loop;
        loop.clients = mpl;
        loop.think_time_ms = 20.0;
        loop.requests = static_cast<std::uint64_t>(8000 * options.scale2);
        if (loop.requests < 200) loop.requests = 200;
        loop.seed = options.seed;
        const auto result = run_closed_loop(config, loop);
        s.values.push_back(metric == std::string("response")
                               ? result.mean_response_ms()
                               : result.throughput_io_per_s);
      }
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (int mpl : mpls) xs.push_back("MPL=" + std::to_string(mpl));
    print_series_table("clients", xs, "trace2 profile", series,
                       metric == std::string("response") ? "response (ms)"
                                                         : "IO/s");
  }
  return 0;
}
