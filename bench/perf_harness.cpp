// Performance harness: times the event kernel (schedule/cancel/step
// throughput -- calendar and heap kernels against an embedded copy of
// the pre-fast-path kernel), a fixed end-to-end RAID5 + Mirror replay,
// a queue-discipline A/B (calendar vs heap on churn and on both
// replays, with a fatal bit-identity check between the kernels), the
// op-state allocation A/B (arena vs pool-mode OpRef vs the retired
// make_pooled scheme on an op-churn loop and on both replays, with a
// fatal bit-identity check and a fatal zero-heap steady-state gate), the
// sharded engine at several
// shard/thread counts (with a bit-identity check against one shard), the
// NV-cache storage (against an embedded copy of the pre-rewrite
// list+map storage), the latency-histogram recorder (per-op add and
// sharded merge + tail quantiles), trace loading (text vs binary), and
// sweep throughput at 1/2/4/hw threads. Emits machine-readable BENCH_perf.json
// so later PRs have a perf trajectory to regress against (see
// docs/performance.md for the schema).
//
// Usage: perf_harness [--quick] [--out=<path>] [--threads=<n>]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <list>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/nv_cache.hpp"
#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "obs/metrics_registry.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/event_queue.hpp"
#include "svc/supervisor.hpp"
#include "trace/trace_io.hpp"
#include "util/arena.hpp"
#include "util/pool_alloc.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// Global-heap traffic counter: the harness replaces the default
// operator new/delete with counting versions so the allocation section
// can report the steady-state global-heap allocation rate alongside the
// op-state arena's own counter (the fatal zero-heap gate keys on the
// arena counter; this one is context).
static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using raidsim::EventId;
using raidsim::SimTime;

/// The event kernel as it stood before the indexed-heap fast path:
/// std::function callbacks (heap allocation per capture-heavy schedule),
/// a binary priority_queue, and an unordered_set lookup per pop. Kept
/// here verbatim as the baseline the kernel numbers are measured against.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  EventId schedule_at(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(cb)});
    live_.insert(id);
    return id;
  }

  EventId schedule_in(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(EventId id) { return live_.erase(id) > 0; }

  bool step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (live_.erase(e.id) == 0) continue;
      now_ = e.time;
      ++executed_;
      e.cb();
      return true;
    }
    return false;
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Steady-state churn: keep `width` events pending; each event
/// reschedules itself at a pseudo-random future time and cancels a
/// sibling every fourth execution -- the mix the simulator's disk/channel
/// machinery produces. The captured payload mimics a completion
/// continuation (a few scalars + a std::function).
template <typename Queue, typename... Args>
double churn_events_per_sec(std::uint64_t total_events, int width,
                            Args&&... args) {
  Queue queue(std::forward<Args>(args)...);
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  auto next_delay = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((lcg >> 33) & 0x3ff) * 0.25;
  };
  std::uint64_t executed = 0;
  std::vector<EventId> cancel_pool;
  std::function<void(SimTime)> sink = [](SimTime) {};

  std::function<void()> tick = [&] {
    ++executed;
    if (executed + static_cast<std::uint64_t>(width) <= total_events) {
      const EventId id = queue.schedule_in(
          next_delay(), [&tick, t = queue.now(), cont = sink] {
            (void)t;
            (void)cont;
            tick();
          });
      if ((executed & 3u) == 0) {
        cancel_pool.push_back(id);
      } else if (!cancel_pool.empty() && (executed & 15u) == 1) {
        queue.cancel(cancel_pool.back());
        cancel_pool.pop_back();
        queue.schedule_in(next_delay(), [&tick] { tick(); });
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < width; ++i) queue.schedule_in(next_delay(), tick);
  while (queue.step()) {
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(queue.executed()) / elapsed;
}

struct ReplayResult {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double mean_response_ms = 0.0;
};

ReplayResult timed_replay(const raidsim::SimulationConfig& config,
                          const std::string& trace, double scale,
                          raidsim::Metrics* out_metrics = nullptr,
                          int reps = 1) {
  // Best of `reps`: the replay is deterministic (identical metrics every
  // repetition), so the fastest wall time is the least-contended sample
  // of the same computation -- the same trick the trace-load bench uses.
  // The CI regression guard keys on these rates, so they need to be
  // samples of a tight distribution, not of scheduler luck.
  ReplayResult best;
  for (int rep = 0; rep < reps; ++rep) {
    raidsim::SweepJob job;
    job.config = config;
    job.trace = trace;
    job.workload.scale = scale;
    const auto start = std::chrono::steady_clock::now();
    const raidsim::Metrics m = raidsim::run_sweep_job(job);
    ReplayResult r;
    r.wall_ms = seconds_since(start) * 1e3;
    r.events = m.events_executed;
    r.events_per_sec = static_cast<double>(m.events_executed) /
                       (r.wall_ms / 1e3);
    r.mean_response_ms = m.mean_response_ms();
    if (rep == 0 || r.events_per_sec > best.events_per_sec) {
      best = r;
      if (out_metrics) *out_metrics = m;
    }
  }
  return best;
}

/// Op-state churn: keep a window of live ops; each step allocates one,
/// fans its handle out the way an RMW chain copies its completion into
/// barrier/gate callbacks, then retires a pseudo-random window slot.
/// Steady state exercises exactly the allocate / copy / release path the
/// controllers run per request. Sized for the 512-byte class (the
/// in-flight disk op class).
struct ChurnOp {
  std::array<char, 480> payload;
};

constexpr int kOpWindow = 256;

struct OpChurnResult {
  double ops_per_sec = 0.0;
  /// OpArena::heap_allocations() delta over the measured (post-warmup)
  /// segment -- the fatal zero-heap gate for arena mode.
  std::uint64_t op_state_heap_allocs_steady = 0;
  /// operator new delta over the same segment (whole process, context).
  std::uint64_t global_heap_allocs_steady = 0;
};

OpChurnResult op_churn(std::uint64_t total_ops, raidsim::OpAlloc mode) {
  raidsim::OpArena arena(mode);
  std::vector<raidsim::OpRef<ChurnOp>> window(kOpWindow);
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  std::uint64_t sink = 0;
  auto step = [&](std::uint64_t i) {
    auto op = raidsim::make_op<ChurnOp>(arena);
    op->payload[0] = static_cast<char>(i);
    // Four handle copies: the read barrier, the write gate, the parity
    // countdown, and the completion continuation of a typical RMW chain.
    auto a = op;
    auto b = a;
    auto c = b;
    auto d = c;
    sink += static_cast<std::uint64_t>(d->payload[0]) & 1u;
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    window[(lcg >> 33) % kOpWindow] = std::move(op);
  };
  for (std::uint64_t i = 0; i < total_ops / 10; ++i) step(i);  // warmup
  const std::uint64_t arena_before = arena.heap_allocations();
  const std::uint64_t global_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_ops; ++i) step(i);
  const double elapsed = seconds_since(start);
  if (sink == UINT64_MAX) std::abort();  // keep the loop honest
  OpChurnResult r;
  r.ops_per_sec = static_cast<double>(total_ops) / elapsed;
  r.op_state_heap_allocs_steady = arena.heap_allocations() - arena_before;
  r.global_heap_allocs_steady =
      g_heap_allocs.load(std::memory_order_relaxed) - global_before;
  return r;
}

/// The same loop against the retired make_pooled/shared_ptr scheme --
/// the yardstick the arena numbers are measured against (atomic
/// refcounts plus a thread_local free-list lookup per alloc).
OpChurnResult op_churn_make_pooled(std::uint64_t total_ops) {
  std::vector<std::shared_ptr<ChurnOp>> window(kOpWindow);
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  std::uint64_t sink = 0;
  auto step = [&](std::uint64_t i) {
    auto op = raidsim::make_pooled<ChurnOp>();
    op->payload[0] = static_cast<char>(i);
    auto a = op;
    auto b = a;
    auto c = b;
    auto d = c;
    sink += static_cast<std::uint64_t>(d->payload[0]) & 1u;
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    window[(lcg >> 33) % kOpWindow] = std::move(op);
  };
  for (std::uint64_t i = 0; i < total_ops / 10; ++i) step(i);
  const std::uint64_t global_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_ops; ++i) step(i);
  const double elapsed = seconds_since(start);
  if (sink == UINT64_MAX) std::abort();
  OpChurnResult r;
  r.ops_per_sec = static_cast<double>(total_ops) / elapsed;
  r.global_heap_allocs_steady =
      g_heap_allocs.load(std::memory_order_relaxed) - global_before;
  return r;
}

/// The NV-cache storage as it stood before the slab + open-addressing
/// rewrite: node-per-entry std::list LRU with an unordered_map from key
/// to iterator. Same policy, old data structures -- the baseline the
/// cache numbers are measured against. Only the operations the driver
/// below uses are reproduced.
class LegacyCacheStorage {
 public:
  LegacyCacheStorage(std::size_t capacity, bool retain_old)
      : capacity_(capacity), retain_old_(retain_old) {}

  bool read(std::int64_t block) {
    auto it = map_.find(block * 2);
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  bool insert_clean(std::int64_t block) {
    if (map_.count(block * 2)) return true;
    bool evicted_dirty = false;
    std::int64_t victim = -1;
    if (!make_room(true, evicted_dirty, victim)) return false;
    create(block * 2, false);
    return true;
  }

  bool write(std::int64_t block) {
    auto it = map_.find(block * 2);
    if (it != map_.end()) {
      if (!it->second->dirty) {
        if (retain_old_ && map_.count(block * 2 + 1) == 0) {
          bool evicted_dirty = false;
          std::int64_t victim = -1;
          if (make_room(false, evicted_dirty, victim, block * 2))
            create(block * 2 + 1, false);
        }
        it->second->dirty = true;
        ++dirty_count_;
      }
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    bool evicted_dirty = false;
    std::int64_t victim = -1;
    if (!make_room(true, evicted_dirty, victim)) return false;
    create(block * 2, true);
    ++dirty_count_;
    return true;
  }

  std::vector<std::int64_t> collect_dirty() const {
    std::vector<std::int64_t> out;
    out.reserve(dirty_count_);
    for (const Entry& e : lru_)
      if (e.key % 2 == 0 && e.dirty && !e.in_flight) out.push_back(e.key / 2);
    return out;
  }

  void begin_destage(std::int64_t block) {
    map_.find(block * 2)->second->in_flight = true;
  }

  void end_destage(std::int64_t block) {
    auto it = map_.find(block * 2);
    if (it == map_.end()) return;
    it->second->in_flight = false;
    it->second->dirty = false;
    --dirty_count_;
    auto old_it = map_.find(block * 2 + 1);
    if (old_it != map_.end()) erase(old_it->second);
  }

  std::size_t dirty_count() const { return dirty_count_; }

 private:
  struct Entry {
    std::int64_t key = 0;
    bool dirty = false;
    bool in_flight = false;
  };
  using Iter = std::list<Entry>::iterator;

  void create(std::int64_t key, bool dirty) {
    lru_.push_front(Entry{key, dirty, false});
    map_[key] = lru_.begin();
  }

  void erase(Iter it) {
    if (it->key % 2 == 0 && it->dirty) --dirty_count_;
    map_.erase(it->key);
    lru_.erase(it);
  }

  bool make_room(bool allow_dirty, bool& evicted_dirty, std::int64_t& victim,
                 std::int64_t protect_key = INT64_MIN) {
    evicted_dirty = false;
    victim = -1;
    if (lru_.size() < capacity_) return true;
    if (lru_.empty()) return false;
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->key != protect_key && !it->in_flight &&
          (allow_dirty || !it->dirty)) {
        if (it->dirty) {
          evicted_dirty = true;
          victim = it->key / 2;
          auto old_it = map_.find(victim * 2 + 1);
          if (old_it != map_.end()) erase(old_it->second);
        }
        erase(it);
        return true;
      }
      if (it == lru_.begin()) break;
    }
    return false;
  }

  std::size_t capacity_;
  bool retain_old_;
  std::list<Entry> lru_;
  std::unordered_map<std::int64_t, Iter> map_;
  std::size_t dirty_count_ = 0;
};

/// Adapter giving NvCache the same minimal surface as the legacy
/// storage, so one driver times both.
class CurrentCacheStorage {
 public:
  CurrentCacheStorage(std::size_t capacity, bool retain_old)
      : cache_(capacity, retain_old) {}
  bool read(std::int64_t b) { return cache_.read(b); }
  bool insert_clean(std::int64_t b) { return cache_.insert_clean(b).inserted; }
  bool write(std::int64_t b) { return cache_.write(b).accepted; }
  std::vector<std::int64_t> collect_dirty() const {
    return cache_.collect_dirty();
  }
  void begin_destage(std::int64_t b) { cache_.begin_destage(b); }
  void end_destage(std::int64_t b) { cache_.end_destage(b); }
  std::size_t dirty_count() const { return cache_.dirty_count(); }

 private:
  raidsim::NvCache cache_;
};

/// The per-request cache traffic a cached controller generates: probe,
/// install on miss, dirty on write, periodic destage sweeps once half
/// the cache is dirty. Deterministic LCG address stream over 3x the
/// cache capacity (the controller sees array-local block numbers with
/// exactly this kind of reuse).
template <typename Storage>
double cache_ops_per_sec(std::uint64_t total_ops, std::size_t capacity) {
  Storage storage(capacity, true);
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t range = static_cast<std::uint64_t>(capacity) * 3;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t op = 0; op < total_ops; ++op) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto block = static_cast<std::int64_t>((lcg >> 24) % range);
    const std::uint64_t roll = (lcg >> 16) & 15u;
    if (roll < 9) {
      if (!storage.read(block)) storage.insert_clean(block);
    } else {
      storage.write(block);
    }
    if (storage.dirty_count() * 2 > capacity) {
      for (const std::int64_t dirty : storage.collect_dirty()) {
        storage.begin_destage(dirty);
        storage.end_destage(dirty);
      }
    }
  }
  return static_cast<double>(total_ops) / seconds_since(start);
}

/// Latency-histogram hot path (fail-slow work): every disk op and every
/// host response feeds a log-bucketed LatencyRecorder, and the sharded
/// engine merges per-shard recorders at the end of a run. Measures the
/// per-sample add cost and the merge + tail-quantile pass.
struct HistogramBench {
  std::uint64_t adds = 0;
  double adds_per_sec = 0.0;
  double merge_quantile_per_sec = 0.0;  // merge 16 shards + p50..p999
};

HistogramBench histogram_bench(std::uint64_t total_adds) {
  constexpr int kShards = 16;
  std::vector<raidsim::LatencyRecorder> shards(kShards);
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_adds; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    // Log-uniform-ish latencies spanning sub-ms to tens of seconds: the
    // recorder's whole bucket range stays hot.
    const double ms =
        static_cast<double>((lcg >> 44) + 1) / 16.0;  // ~0.06..65536 ms
    shards[i & (kShards - 1)].add(ms);
  }
  HistogramBench r;
  r.adds = total_adds;
  r.adds_per_sec = static_cast<double>(total_adds) / seconds_since(start);

  const int rounds = 400;
  double sink = 0.0;
  const auto mstart = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    raidsim::LatencyRecorder merged;
    for (const auto& s : shards) merged.merge(s);
    sink += merged.p50() + merged.p95() + merged.p99() + merged.p999();
  }
  const double melapsed = seconds_since(mstart);
  if (sink < 0.0) std::abort();  // keep the loop honest
  r.merge_quantile_per_sec = static_cast<double>(rounds) / melapsed;
  return r;
}

/// Telemetry-plane cost: the same replay with the metrics registry
/// disabled and no progress hook (the engines' fast path) versus
/// enabled plus a no-op hook (batch-boundary path, registry feeds, hook
/// dispatch). Also asserts the two runs' metrics are bit-identical --
/// telemetry is passive or it is broken.
struct TelemetryBench {
  double events_per_sec_off = 0.0;
  double events_per_sec_on = 0.0;
  double overhead_pct = 0.0;
  bool identical = false;
};

TelemetryBench telemetry_bench(const raidsim::SimulationConfig& config,
                               const std::string& trace, double scale,
                               int reps) {
  auto run_once = [&](bool telemetry, raidsim::Metrics* out) {
    raidsim::SweepJob job;
    job.config = config;
    job.trace = trace;
    job.workload.scale = scale;
    if (telemetry)
      job.progress = [](const raidsim::ProgressSnapshot&) {};
    raidsim::MetricsRegistry::instance().set_enabled(telemetry);
    const auto start = std::chrono::steady_clock::now();
    const raidsim::Metrics m = raidsim::run_sweep_job(job);
    const double elapsed = seconds_since(start);
    raidsim::MetricsRegistry::instance().set_enabled(true);
    if (out) *out = m;
    return static_cast<double>(m.events_executed) / elapsed;
  };

  TelemetryBench r;
  raidsim::Metrics off_metrics, on_metrics;
  for (int rep = 0; rep < reps; ++rep) {
    r.events_per_sec_off =
        std::max(r.events_per_sec_off, run_once(false, &off_metrics));
    r.events_per_sec_on =
        std::max(r.events_per_sec_on, run_once(true, &on_metrics));
  }
  r.overhead_pct =
      r.events_per_sec_on > 0.0
          ? (r.events_per_sec_off / r.events_per_sec_on - 1.0) * 1e2
          : 0.0;
  std::ostringstream off_json, on_json;
  off_metrics.to_json(off_json);
  on_metrics.to_json(on_json);
  r.identical = off_json.str() == on_json.str();
  return r;
}

/// Service saturation in-process (the socketless core of
/// ext_service_saturation): a burst of distinct jobs against a small
/// admission queue. Goodput and shed counts come from the supervisor's
/// own terminal statuses, so these are the numbers the daemon would
/// report.
struct ServiceBench {
  int offered = 0;
  int completed_ok = 0;
  int shed = 0;
  double wall_ms = 0.0;
  double goodput_per_sec = 0.0;
  double shed_rate_per_sec = 0.0;
  double shed_pct = 0.0;
};

ServiceBench service_bench(int offered, double scale) {
  using raidsim::svc::JobRequest;
  using raidsim::svc::JobResult;
  using raidsim::svc::JobStatus;
  using raidsim::svc::Supervisor;

  ServiceBench r;
  r.offered = offered;
  std::atomic<int> ok{0}, shed{0}, done{0};
  const auto start = std::chrono::steady_clock::now();
  {
    Supervisor sup({.workers = 2, .queue_capacity = 4});
    for (int i = 0; i < offered; ++i) {
      JobRequest request;
      request.trace = "trace2";
      request.workload.scale = scale;
      request.workload.seed = static_cast<std::uint64_t>(i + 1);
      request.no_cache = true;
      request.id = "svc" + std::to_string(i);
      sup.submit(std::move(request), [&](const JobResult& result) {
        if (result.status == JobStatus::kOk) ok.fetch_add(1);
        if (result.status == JobStatus::kOverloaded) shed.fetch_add(1);
        done.fetch_add(1);
      });
    }
    while (done.load() < offered)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  r.wall_ms = seconds_since(start) * 1e3;
  r.completed_ok = ok.load();
  r.shed = shed.load();
  const double wall_s = r.wall_ms / 1e3;
  r.goodput_per_sec = wall_s > 0.0 ? r.completed_ok / wall_s : 0.0;
  r.shed_rate_per_sec = wall_s > 0.0 ? r.shed / wall_s : 0.0;
  r.shed_pct = offered > 0 ? 1e2 * r.shed / offered : 0.0;
  return r;
}

struct TraceLoadResult {
  std::uint64_t records = 0;
  double records_per_sec = 0.0;
};

TraceLoadResult timed_trace_load(raidsim::TraceStream& stream) {
  const auto start = std::chrono::steady_clock::now();
  TraceLoadResult r;
  std::int64_t sum = 0;
  while (auto rec = stream.next()) {
    sum += rec->block;
    ++r.records;
  }
  const double elapsed = seconds_since(start);
  // Keep the loop honest: fold the checksum into the denominator noise.
  if (sum == INT64_MIN) std::abort();
  r.records_per_sec = static_cast<double>(r.records) / elapsed;
  return r;
}

struct SweepPoint {
  int threads = 0;
  double wall_ms = 0.0;
  double runs_per_sec = 0.0;
};

SweepPoint timed_sweep(int threads, int runs,
                       const raidsim::SimulationConfig& config,
                       double scale) {
  raidsim::SweepRunner runner(threads);
  for (int i = 0; i < runs; ++i) {
    raidsim::SweepJob job;
    job.config = config;
    job.trace = i % 2 ? "trace2" : "trace1";
    job.workload.scale = scale;
    job.label = "run" + std::to_string(i);
    runner.submit(std::move(job));
  }
  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run_all();
  SweepPoint p;
  p.threads = runner.threads();
  p.wall_ms = seconds_since(start) * 1e3;
  p.runs_per_sec = static_cast<double>(results.size()) / (p.wall_ms / 1e3);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;

  bool quick = false;
  std::string out_path = "BENCH_perf.json";
  int max_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      max_threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --quick --out=<path> --threads=<n>\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (max_threads <= 0) max_threads = hw ? static_cast<int>(hw) : 1;

  std::cout << "== perf_harness ==\n"
            << "kernel churn + fixed RAID5/Mirror replay + sweep scaling; "
            << (quick ? "quick" : "full") << " mode, "
            << max_threads << " max threads\n\n";

  // ------------------------------------------------------ kernel bench
  const std::uint64_t churn_events = quick ? 400'000 : 4'000'000;
  const int churn_width = 512;
  // Warm all allocators once so first-touch page faults do not skew
  // whichever queue runs first.
  churn_events_per_sec<EventQueue>(50'000, churn_width,
                                   EventKernel::kCalendar);
  churn_events_per_sec<EventQueue>(50'000, churn_width, EventKernel::kHeap);
  churn_events_per_sec<LegacyEventQueue>(50'000, churn_width);
  // Best of N samples in full mode: the CI guard keys on these rates,
  // and a single sample on a contended host measures scheduler luck.
  const int bench_reps = quick ? 1 : 3;
  auto best_of = [&](auto measure) {
    double best = 0.0;
    for (int rep = 0; rep < bench_reps; ++rep)
      best = std::max(best, measure());
    return best;
  };
  const double kernel_new = best_of([&] {
    return churn_events_per_sec<EventQueue>(churn_events, churn_width,
                                            EventKernel::kCalendar);
  });
  const double kernel_heap = best_of([&] {
    return churn_events_per_sec<EventQueue>(churn_events, churn_width,
                                            EventKernel::kHeap);
  });
  const double kernel_legacy = best_of([&] {
    return churn_events_per_sec<LegacyEventQueue>(churn_events, churn_width);
  });
  const double kernel_speedup = kernel_new / kernel_legacy;
  const double kernel_vs_heap = kernel_new / kernel_heap;

  TablePrinter kernel_table({"kernel", "events/sec"});
  kernel_table.add_row({"calendar queue (current)",
                        TablePrinter::num(kernel_new / 1e6, 2) + " M"});
  kernel_table.add_row({"indexed 4-ary heap (yardstick)",
                        TablePrinter::num(kernel_heap / 1e6, 2) + " M"});
  kernel_table.add_row({"legacy priority_queue+hash set",
                        TablePrinter::num(kernel_legacy / 1e6, 2) + " M"});
  kernel_table.add_row(
      {"speedup vs legacy", TablePrinter::num(kernel_speedup, 2) + "x"});
  kernel_table.add_row(
      {"calendar vs heap", TablePrinter::num(kernel_vs_heap, 2) + "x"});
  kernel_table.print(std::cout);
  std::cout << "\n";

  // -------------------------------------------------- end-to-end bench
  const double scale1 = quick ? 0.02 : 0.1;
  const double scale2 = quick ? 0.1 : 0.5;

  SimulationConfig raid5;
  raid5.organization = Organization::kRaid5;
  raid5.cached = true;
  const int replay_reps = bench_reps;
  Metrics raid5_metrics;
  const ReplayResult raid5_run =
      timed_replay(raid5, "trace1", scale1, &raid5_metrics, replay_reps);

  SimulationConfig mirror;
  mirror.organization = Organization::kMirror;
  mirror.cached = false;
  Metrics mirror_metrics;
  const ReplayResult mirror_run =
      timed_replay(mirror, "trace2", scale2, &mirror_metrics, replay_reps);


  TablePrinter replay_table(
      {"replay", "wall ms", "events", "events/sec"});
  replay_table.add_row({"RAID5 cached / trace1",
                        TablePrinter::num(raid5_run.wall_ms),
                        std::to_string(raid5_run.events),
                        TablePrinter::num(raid5_run.events_per_sec / 1e6, 2) +
                            " M"});
  replay_table.add_row({"Mirror uncached / trace2",
                        TablePrinter::num(mirror_run.wall_ms),
                        std::to_string(mirror_run.events),
                        TablePrinter::num(mirror_run.events_per_sec / 1e6, 2) +
                            " M"});
  replay_table.print(std::cout);
  std::cout << "\n";

  // ------------------------------------- queue-discipline A/B (kernels)
  // The same two replays driven by the heap kernel. Both kernels promise
  // the identical (time, seq) event order, so any metric divergence here
  // is a correctness bug in one of them, not a perf artifact -- the
  // harness fails hard rather than publishing numbers from a broken
  // kernel.
  auto same_metrics = [](const Metrics& a, const Metrics& b) {
    return a.requests == b.requests &&
           a.response_all.count() == b.response_all.count() &&
           a.response_all.mean() == b.response_all.mean() &&
           a.response_all.p95() == b.response_all.p95() &&
           a.events_executed == b.events_executed &&
           a.disk_accesses == b.disk_accesses;
  };
  SimulationConfig raid5_heap = raid5;
  raid5_heap.event_kernel = EventKernel::kHeap;
  Metrics raid5_heap_metrics;
  const ReplayResult raid5_heap_run = timed_replay(
      raid5_heap, "trace1", scale1, &raid5_heap_metrics, replay_reps);
  SimulationConfig mirror_heap = mirror;
  mirror_heap.event_kernel = EventKernel::kHeap;
  Metrics mirror_heap_metrics;
  const ReplayResult mirror_heap_run = timed_replay(
      mirror_heap, "trace2", scale2, &mirror_heap_metrics, replay_reps);
  const bool raid5_kernels_identical =
      same_metrics(raid5_metrics, raid5_heap_metrics);
  const bool mirror_kernels_identical =
      same_metrics(mirror_metrics, mirror_heap_metrics);

  TablePrinter ab_table({"discipline", "churn ev/sec", "RAID5 ev/sec",
                         "Mirror ev/sec"});
  ab_table.add_row({"calendar", TablePrinter::num(kernel_new / 1e6, 2) + " M",
                    TablePrinter::num(raid5_run.events_per_sec / 1e6, 2) +
                        " M",
                    TablePrinter::num(mirror_run.events_per_sec / 1e6, 2) +
                        " M"});
  ab_table.add_row(
      {"4-ary heap", TablePrinter::num(kernel_heap / 1e6, 2) + " M",
       TablePrinter::num(raid5_heap_run.events_per_sec / 1e6, 2) + " M",
       TablePrinter::num(mirror_heap_run.events_per_sec / 1e6, 2) + " M"});
  ab_table.add_row(
      {"calendar/heap", TablePrinter::num(kernel_vs_heap, 2) + "x",
       TablePrinter::num(
           raid5_run.events_per_sec / raid5_heap_run.events_per_sec, 2) +
           "x",
       TablePrinter::num(
           mirror_run.events_per_sec / mirror_heap_run.events_per_sec, 2) +
           "x"});
  ab_table.add_row({"identical", "-", raid5_kernels_identical ? "yes" : "NO",
                    mirror_kernels_identical ? "yes" : "NO"});
  ab_table.print(std::cout);
  std::cout << "\n";
  if (!raid5_kernels_identical || !mirror_kernels_identical) {
    std::cerr << "FATAL: calendar and heap kernels produced different "
                 "metrics on the same replay\n";
    return 1;
  }

  // ------------------------------------------- op-state allocation A/B
  // Arena-mode OpRef (current) against pool-mode OpRef (the retired cost
  // profile kept in-tree) and the make_pooled/shared_ptr scheme itself,
  // on a pure op-churn loop and on both end-to-end replays. Both
  // allocators promise bit-identical simulations (nothing orders by
  // pointer value), so metric divergence is fatal; so is any steady-state
  // global-heap allocation on the arena's op-state path.
  const std::uint64_t op_churn_ops = quick ? 1'000'000 : 10'000'000;
  op_churn(100'000, OpAlloc::kArena);  // warm slabs + page faults
  op_churn(100'000, OpAlloc::kPool);
  op_churn_make_pooled(100'000);
  OpChurnResult arena_churn, pool_churn, pooled_churn;
  for (int rep = 0; rep < bench_reps; ++rep) {
    const OpChurnResult a = op_churn(op_churn_ops, OpAlloc::kArena);
    if (rep == 0 || a.ops_per_sec > arena_churn.ops_per_sec) arena_churn = a;
    const OpChurnResult p = op_churn(op_churn_ops, OpAlloc::kPool);
    if (rep == 0 || p.ops_per_sec > pool_churn.ops_per_sec) pool_churn = p;
    const OpChurnResult m = op_churn_make_pooled(op_churn_ops);
    if (rep == 0 || m.ops_per_sec > pooled_churn.ops_per_sec)
      pooled_churn = m;
  }
  const double arena_vs_pool =
      arena_churn.ops_per_sec / pool_churn.ops_per_sec;
  const double arena_vs_pooled =
      arena_churn.ops_per_sec / pooled_churn.ops_per_sec;

  SimulationConfig raid5_pool = raid5;
  raid5_pool.op_alloc = OpAlloc::kPool;
  Metrics raid5_pool_metrics;
  const ReplayResult raid5_pool_run = timed_replay(
      raid5_pool, "trace1", scale1, &raid5_pool_metrics, replay_reps);
  SimulationConfig mirror_pool = mirror;
  mirror_pool.op_alloc = OpAlloc::kPool;
  Metrics mirror_pool_metrics;
  const ReplayResult mirror_pool_run = timed_replay(
      mirror_pool, "trace2", scale2, &mirror_pool_metrics, replay_reps);
  const bool raid5_allocs_identical =
      same_metrics(raid5_metrics, raid5_pool_metrics);
  const bool mirror_allocs_identical =
      same_metrics(mirror_metrics, mirror_pool_metrics);

  TablePrinter alloc_table({"op allocator", "churn ops/sec", "RAID5 ev/sec",
                            "Mirror ev/sec"});
  alloc_table.add_row(
      {"arena (current)",
       TablePrinter::num(arena_churn.ops_per_sec / 1e6, 2) + " M",
       TablePrinter::num(raid5_run.events_per_sec / 1e6, 2) + " M",
       TablePrinter::num(mirror_run.events_per_sec / 1e6, 2) + " M"});
  alloc_table.add_row(
      {"pool (OpRef yardstick)",
       TablePrinter::num(pool_churn.ops_per_sec / 1e6, 2) + " M",
       TablePrinter::num(raid5_pool_run.events_per_sec / 1e6, 2) + " M",
       TablePrinter::num(mirror_pool_run.events_per_sec / 1e6, 2) + " M"});
  alloc_table.add_row(
      {"make_pooled (retired)",
       TablePrinter::num(pooled_churn.ops_per_sec / 1e6, 2) + " M", "-",
       "-"});
  alloc_table.add_row({"arena/pool", TablePrinter::num(arena_vs_pool, 2) + "x",
                       TablePrinter::num(raid5_run.events_per_sec /
                                             raid5_pool_run.events_per_sec,
                                         2) +
                           "x",
                       TablePrinter::num(mirror_run.events_per_sec /
                                             mirror_pool_run.events_per_sec,
                                         2) +
                           "x"});
  alloc_table.add_row(
      {"steady-state heap allocs",
       std::to_string(arena_churn.op_state_heap_allocs_steady) +
           " (op-state), " +
           std::to_string(arena_churn.global_heap_allocs_steady) + " (global)",
       "-", "-"});
  alloc_table.add_row({"identical", "-",
                       raid5_allocs_identical ? "yes" : "NO",
                       mirror_allocs_identical ? "yes" : "NO"});
  alloc_table.print(std::cout);
  std::cout << "\n";
  if (!raid5_allocs_identical || !mirror_allocs_identical) {
    std::cerr << "FATAL: arena and pool op allocators produced different "
                 "metrics on the same replay\n";
    return 1;
  }
  if (arena_churn.op_state_heap_allocs_steady != 0) {
    std::cerr << "FATAL: arena op-state path made "
              << arena_churn.op_state_heap_allocs_steady
              << " global-heap allocations in steady state (expected 0)\n";
    return 1;
  }

  // ---------------------------------------------- sharded replay bench
  // The same RAID5/trace1 replay on the sharded engine at several
  // shard/thread counts. Every point's merged metrics must be
  // bit-identical to the one-shard run (the engine's determinism
  // contract); single-threaded multi-shard points isolate the
  // algorithmic win (smaller per-shard event heaps) from thread
  // parallelism, which needs actual cores to show up.
  struct ShardPoint {
    int shards = 0;
    int threads = 0;
    ReplayResult run;
    bool identical = false;
  };
  Metrics one_shard_metrics;
  SimulationConfig sharded_base = raid5;
  sharded_base.shards = 1;
  sharded_base.shard_threads = 1;
  std::vector<ShardPoint> shard_points;
  {
    ShardPoint p;
    p.shards = 1;
    p.threads = 1;
    p.run = timed_replay(sharded_base, "trace1", scale1, &one_shard_metrics);
    p.identical = true;
    shard_points.push_back(p);
  }
  const int hw_threads = max_threads;
  for (const auto [shards, threads] :
       std::vector<std::pair<int, int>>{{2, 1},
                                        {2, 2},
                                        {4, 1},
                                        {4, std::min(4, hw_threads)},
                                        {13, 1},
                                        {13, hw_threads}}) {
    SimulationConfig config = raid5;
    config.shards = shards;
    config.shard_threads = threads;
    ShardPoint p;
    p.shards = shards;
    p.threads = threads;
    Metrics m;
    p.run = timed_replay(config, "trace1", scale1, &m);
    p.identical = m.requests == one_shard_metrics.requests &&
                  m.response_all.count() ==
                      one_shard_metrics.response_all.count() &&
                  m.response_all.mean() ==
                      one_shard_metrics.response_all.mean() &&
                  m.response_all.p95() ==
                      one_shard_metrics.response_all.p95() &&
                  m.events_executed == one_shard_metrics.events_executed &&
                  m.disk_accesses == one_shard_metrics.disk_accesses;
    shard_points.push_back(p);
  }

  TablePrinter shard_table(
      {"shards", "threads", "wall ms", "events/sec", "vs 1 shard",
       "identical"});
  const double one_shard_eps = shard_points.front().run.events_per_sec;
  bool all_identical = true;
  for (const auto& p : shard_points) {
    all_identical = all_identical && p.identical;
    shard_table.add_row(
        {std::to_string(p.shards), std::to_string(p.threads),
         TablePrinter::num(p.run.wall_ms),
         TablePrinter::num(p.run.events_per_sec / 1e6, 2) + " M",
         TablePrinter::num(p.run.events_per_sec / one_shard_eps, 2) + "x",
         p.identical ? "yes" : "NO"});
  }
  shard_table.print(std::cout);
  if (!all_identical) {
    std::cerr << "FATAL: sharded metrics diverged from the one-shard run\n";
    return 1;
  }
  std::cout << "(hardware threads available: " << (hw ? hw : 1u) << ")\n\n";

  // -------------------------------------------------- tracing overhead
  // Same RAID5 replay with the request-lifecycle tracer recording into
  // its ring buffer (no file export). The "off" run re-measures rather
  // than reusing raid5_run so both sides see the same cache state.
  const ReplayResult traced_off = timed_replay(raid5, "trace1", scale1);
  SimulationConfig raid5_traced = raid5;
  raid5_traced.obs.tracing = true;
  const ReplayResult traced_on = timed_replay(raid5_traced, "trace1", scale1);
  const double tracing_overhead_pct =
      traced_on.events_per_sec > 0.0
          ? (traced_off.events_per_sec / traced_on.events_per_sec - 1.0) * 1e2
          : 0.0;

  TablePrinter tracing_table({"tracer", "wall ms", "events/sec"});
  tracing_table.add_row(
      {"off (runtime)", TablePrinter::num(traced_off.wall_ms),
       TablePrinter::num(traced_off.events_per_sec / 1e6, 2) + " M"});
  tracing_table.add_row(
      {"on (ring buffer)", TablePrinter::num(traced_on.wall_ms),
       TablePrinter::num(traced_on.events_per_sec / 1e6, 2) + " M"});
  tracing_table.add_row(
      {"overhead", "-", TablePrinter::num(tracing_overhead_pct, 2) + " %"});
  tracing_table.print(std::cout);
  std::cout << "\n";

  // ------------------------------------------------ telemetry overhead
  // Registry + progress hook against the bare fast path, with a fatal
  // bit-identity check: the live telemetry plane must read as free (a
  // couple of relaxed atomics per 4096-event batch) and must never
  // perturb results.
  const TelemetryBench telemetry =
      telemetry_bench(raid5, "trace1", scale1, bench_reps);
  TablePrinter telemetry_table({"telemetry plane", "events/sec"});
  telemetry_table.add_row(
      {"off (fast path)",
       TablePrinter::num(telemetry.events_per_sec_off / 1e6, 2) + " M"});
  telemetry_table.add_row(
      {"on (registry + hook)",
       TablePrinter::num(telemetry.events_per_sec_on / 1e6, 2) + " M"});
  telemetry_table.add_row(
      {"overhead", TablePrinter::num(telemetry.overhead_pct, 2) + " %"});
  telemetry_table.add_row(
      {"bit-identical", telemetry.identical ? "yes" : "NO"});
  telemetry_table.print(std::cout);
  std::cout << "\n";
  if (!telemetry.identical) {
    std::cerr << "FATAL: telemetry-on and telemetry-off runs produced "
                 "different metrics\n";
    return 1;
  }

  // ---------------------------------------------- service saturation
  // The overload regime ext_service_saturation studies, reduced to the
  // two numbers worth guarding: goodput under a shedding burst and the
  // shed rate itself.
  const int svc_offered = quick ? 24 : 48;
  const double svc_scale = quick ? 0.02 : 0.05;
  const ServiceBench svc = service_bench(svc_offered, svc_scale);
  TablePrinter svc_table({"service saturation", "value"});
  svc_table.add_row({"offered jobs", std::to_string(svc.offered)});
  svc_table.add_row({"completed ok", std::to_string(svc.completed_ok)});
  svc_table.add_row({"shed (overloaded)", std::to_string(svc.shed)});
  svc_table.add_row(
      {"goodput", TablePrinter::num(svc.goodput_per_sec, 2) + " jobs/sec"});
  svc_table.add_row(
      {"shed rate", TablePrinter::num(svc.shed_rate_per_sec, 2) + " /sec"});
  svc_table.add_row({"shed", TablePrinter::num(svc.shed_pct, 1) + " %"});
  svc_table.print(std::cout);
  std::cout << "\n";

  // ------------------------------------------------- cache-index bench
  const std::uint64_t cache_ops = quick ? 2'000'000 : 10'000'000;
  const std::size_t cache_capacity = 16384;
  // Warm both once (first-touch page faults), then measure.
  cache_ops_per_sec<CurrentCacheStorage>(100'000, cache_capacity);
  cache_ops_per_sec<LegacyCacheStorage>(100'000, cache_capacity);
  const double cache_new =
      cache_ops_per_sec<CurrentCacheStorage>(cache_ops, cache_capacity);
  const double cache_legacy =
      cache_ops_per_sec<LegacyCacheStorage>(cache_ops, cache_capacity);
  const double cache_speedup = cache_new / cache_legacy;

  TablePrinter cache_table({"cache storage", "ops/sec"});
  cache_table.add_row({"slab + open addressing (current)",
                       TablePrinter::num(cache_new / 1e6, 2) + " M"});
  cache_table.add_row({"legacy list + unordered_map",
                       TablePrinter::num(cache_legacy / 1e6, 2) + " M"});
  cache_table.add_row({"speedup", TablePrinter::num(cache_speedup, 2) + "x"});
  cache_table.print(std::cout);
  std::cout << "\n";

  // --------------------------------------------- latency-histogram bench
  const std::uint64_t hist_adds = quick ? 5'000'000 : 20'000'000;
  histogram_bench(200'000);  // warm-up
  const HistogramBench hist = histogram_bench(hist_adds);
  TablePrinter hist_table({"latency histogram", "rate"});
  hist_table.add_row(
      {"add (per-op record)", TablePrinter::num(hist.adds_per_sec / 1e6, 2) +
                                  " M/sec"});
  hist_table.add_row({"merge 16 shards + p50..p999",
                      TablePrinter::num(hist.merge_quantile_per_sec / 1e3, 1) +
                          " k/sec"});
  hist_table.print(std::cout);
  std::cout << "\n";

  // -------------------------------------------------- trace-load bench
  // Serialize one synthetic trace both ways, then time re-reading each
  // (the repeated-replay workflow trace_convert exists for).
  const double trace_load_scale = quick ? 0.05 : 0.2;
  std::string text_trace;
  std::string binary_trace;
  {
    WorkloadOptions wo;
    wo.scale = trace_load_scale;
    auto stream = make_workload("trace1", wo);
    std::ostringstream text_out;
    TraceWriter::write(*stream, text_out);
    text_trace = text_out.str();
    auto stream2 = make_workload("trace1", wo);
    std::stringstream bin_out(std::ios::in | std::ios::out |
                              std::ios::binary);
    BinaryTraceWriter::write(*stream2, bin_out);
    binary_trace = bin_out.str();
  }
  TraceLoadResult text_load;
  TraceLoadResult binary_load;
  for (int rep = 0; rep < 3; ++rep) {  // best of 3: parse cost dominates
    TraceReader text_reader(
        std::make_unique<std::istringstream>(text_trace));
    const TraceLoadResult t = timed_trace_load(text_reader);
    if (t.records_per_sec > text_load.records_per_sec) text_load = t;
    auto binary_reader = BinaryTraceReader::from_buffer(
        binary_trace.data(), binary_trace.size());
    const TraceLoadResult b = timed_trace_load(*binary_reader);
    if (b.records_per_sec > binary_load.records_per_sec) binary_load = b;
  }
  const double trace_load_speedup =
      binary_load.records_per_sec / text_load.records_per_sec;

  TablePrinter trace_table({"trace load", "records", "records/sec"});
  trace_table.add_row({"text (parse)", std::to_string(text_load.records),
                       TablePrinter::num(text_load.records_per_sec / 1e6, 2) +
                           " M"});
  trace_table.add_row(
      {"binary (RSTB)", std::to_string(binary_load.records),
       TablePrinter::num(binary_load.records_per_sec / 1e6, 2) + " M"});
  trace_table.add_row(
      {"speedup", "-", TablePrinter::num(trace_load_speedup, 2) + "x"});
  trace_table.print(std::cout);
  std::cout << "\n";

  // ------------------------------------------------ sweep-scaling bench
  const int sweep_runs = quick ? 8 : 16;
  const double sweep_scale = quick ? 0.02 : 0.05;
  const unsigned hw_avail = hw ? hw : 1u;
  std::vector<int> thread_points{1, 2, 4};
  if (max_threads > 4) thread_points.push_back(max_threads);
  // On a single-core host, every multi-thread point is pure scheduler
  // overhead on top of the 1-thread number; quick mode skips them.
  if (quick && hw_avail == 1) thread_points = {1};

  SimulationConfig sweep_config;
  sweep_config.organization = Organization::kRaid5;
  sweep_config.cached = true;

  std::vector<SweepPoint> sweep_points;
  TablePrinter sweep_table(
      {"threads", "wall ms", "runs/sec", "scaling", "saturated"});
  double base_rps = 0.0;
  for (int t : thread_points) {
    const SweepPoint p = timed_sweep(t, sweep_runs, sweep_config, sweep_scale);
    sweep_points.push_back(p);
    if (t == 1) base_rps = p.runs_per_sec;
    // A point is saturated once it asks for at least every hardware
    // thread: scaling beyond it measures oversubscription, not cores.
    sweep_table.add_row(
        {std::to_string(t), TablePrinter::num(p.wall_ms),
         TablePrinter::num(p.runs_per_sec, 3),
         base_rps > 0.0 ? TablePrinter::num(p.runs_per_sec / base_rps, 2) + "x"
                        : "-",
         static_cast<unsigned>(p.threads) >= hw_avail ? "yes" : "no"});
  }
  sweep_table.print(std::cout);
  std::cout << "(hardware threads available: " << hw_avail << ")\n\n";

  // ------------------------------------------------------- JSON export
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"schema\": 6,\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"hardware_threads\": " << hw_avail << ",\n"
      << "  \"kernel\": {\n"
      << "    \"churn_events\": " << churn_events << ",\n"
      << "    \"events_per_sec\": " << kernel_new << ",\n"
      << "    \"heap_events_per_sec\": " << kernel_heap << ",\n"
      << "    \"speedup_vs_heap\": " << kernel_vs_heap << ",\n"
      << "    \"legacy_events_per_sec\": " << kernel_legacy << ",\n"
      << "    \"speedup_vs_legacy\": " << kernel_speedup << "\n"
      << "  },\n"
      << "  \"end_to_end\": {\n"
      << "    \"raid5_cached_trace1\": {\"wall_ms\": " << raid5_run.wall_ms
      << ", \"events\": " << raid5_run.events
      << ", \"events_per_sec\": " << raid5_run.events_per_sec
      << ", \"mean_response_ms\": " << raid5_run.mean_response_ms << "},\n"
      << "    \"mirror_uncached_trace2\": {\"wall_ms\": " << mirror_run.wall_ms
      << ", \"events\": " << mirror_run.events
      << ", \"events_per_sec\": " << mirror_run.events_per_sec
      << ", \"mean_response_ms\": " << mirror_run.mean_response_ms << "}\n"
      << "  },\n"
      << "  \"queue_disciplines\": {\n"
      << "    \"churn\": {\"calendar_events_per_sec\": " << kernel_new
      << ", \"heap_events_per_sec\": " << kernel_heap
      << ", \"calendar_vs_heap\": " << kernel_vs_heap << "},\n"
      << "    \"replays\": [\n"
      << "      {\"name\": \"raid5_cached_trace1\", "
      << "\"calendar_events_per_sec\": " << raid5_run.events_per_sec
      << ", \"heap_events_per_sec\": " << raid5_heap_run.events_per_sec
      << ", \"identical\": " << (raid5_kernels_identical ? "true" : "false")
      << "},\n"
      << "      {\"name\": \"mirror_uncached_trace2\", "
      << "\"calendar_events_per_sec\": " << mirror_run.events_per_sec
      << ", \"heap_events_per_sec\": " << mirror_heap_run.events_per_sec
      << ", \"identical\": " << (mirror_kernels_identical ? "true" : "false")
      << "}\n"
      << "    ],\n"
      << "    \"all_identical\": "
      << (raid5_kernels_identical && mirror_kernels_identical ? "true"
                                                              : "false")
      << "\n"
      << "  },\n"
      << "  \"allocation\": {\n"
      << "    \"churn\": {\n"
      << "      \"ops\": " << op_churn_ops << ",\n"
      << "      \"arena_ops_per_sec\": " << arena_churn.ops_per_sec << ",\n"
      << "      \"pool_ops_per_sec\": " << pool_churn.ops_per_sec << ",\n"
      << "      \"make_pooled_ops_per_sec\": " << pooled_churn.ops_per_sec
      << ",\n"
      << "      \"arena_vs_pool\": " << arena_vs_pool << ",\n"
      << "      \"arena_vs_make_pooled\": " << arena_vs_pooled << ",\n"
      << "      \"op_state_heap_allocs_steady\": "
      << arena_churn.op_state_heap_allocs_steady << ",\n"
      << "      \"global_heap_allocs_steady\": "
      << arena_churn.global_heap_allocs_steady << "\n"
      << "    },\n"
      << "    \"replays\": [\n"
      << "      {\"name\": \"raid5_cached_trace1\", "
      << "\"arena_events_per_sec\": " << raid5_run.events_per_sec
      << ", \"pool_events_per_sec\": " << raid5_pool_run.events_per_sec
      << ", \"identical\": " << (raid5_allocs_identical ? "true" : "false")
      << "},\n"
      << "      {\"name\": \"mirror_uncached_trace2\", "
      << "\"arena_events_per_sec\": " << mirror_run.events_per_sec
      << ", \"pool_events_per_sec\": " << mirror_pool_run.events_per_sec
      << ", \"identical\": " << (mirror_allocs_identical ? "true" : "false")
      << "}\n"
      << "    ],\n"
      << "    \"all_identical\": "
      << (raid5_allocs_identical && mirror_allocs_identical ? "true"
                                                            : "false")
      << "\n"
      << "  },\n"
      << "  \"sharded\": {\n"
      << "    \"trace\": \"trace1\",\n"
      << "    \"scale\": " << scale1 << ",\n"
      << "    \"all_identical\": " << (all_identical ? "true" : "false")
      << ",\n"
      << "    \"points\": [";
  for (std::size_t i = 0; i < shard_points.size(); ++i) {
    const auto& p = shard_points[i];
    out << (i ? ", " : "") << "{\"shards\": " << p.shards
        << ", \"threads\": " << p.threads
        << ", \"wall_ms\": " << p.run.wall_ms
        << ", \"events_per_sec\": " << p.run.events_per_sec
        << ", \"identical\": " << (p.identical ? "true" : "false") << "}";
  }
  out << "]\n"
      << "  },\n"
      << "  \"cache_index\": {\n"
      << "    \"ops\": " << cache_ops << ",\n"
      << "    \"capacity_blocks\": " << cache_capacity << ",\n"
      << "    \"ops_per_sec\": " << cache_new << ",\n"
      << "    \"legacy_ops_per_sec\": " << cache_legacy << ",\n"
      << "    \"speedup_vs_legacy\": " << cache_speedup << "\n"
      << "  },\n"
      << "  \"histogram\": {\n"
      << "    \"adds\": " << hist.adds << ",\n"
      << "    \"adds_per_sec\": " << hist.adds_per_sec << ",\n"
      << "    \"merge_quantile_per_sec\": " << hist.merge_quantile_per_sec
      << "\n"
      << "  },\n"
      << "  \"trace_load\": {\n"
      << "    \"records\": " << text_load.records << ",\n"
      << "    \"text_records_per_sec\": " << text_load.records_per_sec
      << ",\n"
      << "    \"binary_records_per_sec\": " << binary_load.records_per_sec
      << ",\n"
      << "    \"speedup_binary_vs_text\": " << trace_load_speedup << "\n"
      << "  },\n"
      << "  \"tracing\": {\n"
      << "    \"events_per_sec_off\": " << traced_off.events_per_sec << ",\n"
      << "    \"events_per_sec_on\": " << traced_on.events_per_sec << ",\n"
      << "    \"overhead_pct\": " << tracing_overhead_pct << "\n"
      << "  },\n"
      << "  \"telemetry\": {\n"
      << "    \"events_per_sec_off\": " << telemetry.events_per_sec_off
      << ",\n"
      << "    \"events_per_sec_on\": " << telemetry.events_per_sec_on << ",\n"
      << "    \"overhead_pct\": " << telemetry.overhead_pct << ",\n"
      << "    \"identical\": " << (telemetry.identical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"service\": {\n"
      << "    \"offered_jobs\": " << svc.offered << ",\n"
      << "    \"completed_ok\": " << svc.completed_ok << ",\n"
      << "    \"shed\": " << svc.shed << ",\n"
      << "    \"wall_ms\": " << svc.wall_ms << ",\n"
      << "    \"goodput_jobs_per_sec\": " << svc.goodput_per_sec << ",\n"
      << "    \"shed_rate_per_sec\": " << svc.shed_rate_per_sec << ",\n"
      << "    \"shed_pct\": " << svc.shed_pct << "\n"
      << "  },\n"
      << "  \"sweep\": {\n"
      << "    \"runs\": " << sweep_runs << ",\n"
      << "    \"hardware_threads\": " << hw_avail << ",\n"
      << "    \"points\": [";
  for (std::size_t i = 0; i < sweep_points.size(); ++i) {
    const auto& p = sweep_points[i];
    out << (i ? ", " : "") << "{\"threads\": " << p.threads
        << ", \"wall_ms\": " << p.wall_ms
        << ", \"runs_per_sec\": " << p.runs_per_sec << ", \"saturated\": "
        << (static_cast<unsigned>(p.threads) >= hw_avail ? "true" : "false")
        << "}";
  }
  out << "]\n"
      << "  }\n"
      << "}\n";
  out.close();

  std::cout << "[perf data written to " << out_path << "]\n";
  return 0;
}
