// Performance harness: times the event kernel (schedule/cancel/step
// throughput, against an embedded copy of the pre-fast-path kernel) and
// a fixed end-to-end RAID5 + Mirror replay, then measures sweep
// throughput at 1/2/4/hw threads. Emits machine-readable BENCH_perf.json
// so later PRs have a perf trajectory to regress against (see
// docs/performance.md for the schema).
//
// Usage: perf_harness [--quick] [--out=<path>] [--threads=<n>]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/event_queue.hpp"
#include "util/table.hpp"

namespace {

using raidsim::EventId;
using raidsim::SimTime;

/// The event kernel as it stood before the indexed-heap fast path:
/// std::function callbacks (heap allocation per capture-heavy schedule),
/// a binary priority_queue, and an unordered_set lookup per pop. Kept
/// here verbatim as the baseline the kernel numbers are measured against.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  EventId schedule_at(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(cb)});
    live_.insert(id);
    return id;
  }

  EventId schedule_in(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(EventId id) { return live_.erase(id) > 0; }

  bool step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (live_.erase(e.id) == 0) continue;
      now_ = e.time;
      ++executed_;
      e.cb();
      return true;
    }
    return false;
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Steady-state churn: keep `width` events pending; each event
/// reschedules itself at a pseudo-random future time and cancels a
/// sibling every fourth execution -- the mix the simulator's disk/channel
/// machinery produces. The captured payload mimics a completion
/// continuation (a few scalars + a std::function).
template <typename Queue>
double churn_events_per_sec(std::uint64_t total_events, int width) {
  Queue queue;
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  auto next_delay = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((lcg >> 33) & 0x3ff) * 0.25;
  };
  std::uint64_t executed = 0;
  std::vector<EventId> cancel_pool;
  std::function<void(SimTime)> sink = [](SimTime) {};

  std::function<void()> tick = [&] {
    ++executed;
    if (executed + static_cast<std::uint64_t>(width) <= total_events) {
      const EventId id = queue.schedule_in(
          next_delay(), [&tick, t = queue.now(), cont = sink] {
            (void)t;
            (void)cont;
            tick();
          });
      if ((executed & 3u) == 0) {
        cancel_pool.push_back(id);
      } else if (!cancel_pool.empty() && (executed & 15u) == 1) {
        queue.cancel(cancel_pool.back());
        cancel_pool.pop_back();
        queue.schedule_in(next_delay(), [&tick] { tick(); });
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < width; ++i) queue.schedule_in(next_delay(), tick);
  while (queue.step()) {
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(queue.executed()) / elapsed;
}

struct ReplayResult {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double mean_response_ms = 0.0;
};

ReplayResult timed_replay(const raidsim::SimulationConfig& config,
                          const std::string& trace, double scale) {
  raidsim::SweepJob job;
  job.config = config;
  job.trace = trace;
  job.workload.scale = scale;
  const auto start = std::chrono::steady_clock::now();
  const raidsim::Metrics m = raidsim::run_sweep_job(job);
  ReplayResult r;
  r.wall_ms = seconds_since(start) * 1e3;
  r.events = m.events_executed;
  r.events_per_sec = static_cast<double>(m.events_executed) /
                     (r.wall_ms / 1e3);
  r.mean_response_ms = m.mean_response_ms();
  return r;
}

struct SweepPoint {
  int threads = 0;
  double wall_ms = 0.0;
  double runs_per_sec = 0.0;
};

SweepPoint timed_sweep(int threads, int runs,
                       const raidsim::SimulationConfig& config,
                       double scale) {
  raidsim::SweepRunner runner(threads);
  for (int i = 0; i < runs; ++i) {
    raidsim::SweepJob job;
    job.config = config;
    job.trace = i % 2 ? "trace2" : "trace1";
    job.workload.scale = scale;
    job.label = "run" + std::to_string(i);
    runner.submit(std::move(job));
  }
  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run_all();
  SweepPoint p;
  p.threads = runner.threads();
  p.wall_ms = seconds_since(start) * 1e3;
  p.runs_per_sec = static_cast<double>(results.size()) / (p.wall_ms / 1e3);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;

  bool quick = false;
  std::string out_path = "BENCH_perf.json";
  int max_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      max_threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --quick --out=<path> --threads=<n>\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (max_threads <= 0) max_threads = hw ? static_cast<int>(hw) : 1;

  std::cout << "== perf_harness ==\n"
            << "kernel churn + fixed RAID5/Mirror replay + sweep scaling; "
            << (quick ? "quick" : "full") << " mode, "
            << max_threads << " max threads\n\n";

  // ------------------------------------------------------ kernel bench
  const std::uint64_t churn_events = quick ? 400'000 : 4'000'000;
  const int churn_width = 512;
  // Warm both allocators once so first-touch page faults do not skew
  // whichever queue runs first.
  churn_events_per_sec<EventQueue>(50'000, churn_width);
  churn_events_per_sec<LegacyEventQueue>(50'000, churn_width);
  const double kernel_new =
      churn_events_per_sec<EventQueue>(churn_events, churn_width);
  const double kernel_legacy =
      churn_events_per_sec<LegacyEventQueue>(churn_events, churn_width);
  const double kernel_speedup = kernel_new / kernel_legacy;

  TablePrinter kernel_table({"kernel", "events/sec"});
  kernel_table.add_row({"indexed 4-ary heap (current)",
                        TablePrinter::num(kernel_new / 1e6, 2) + " M"});
  kernel_table.add_row({"legacy priority_queue+hash set",
                        TablePrinter::num(kernel_legacy / 1e6, 2) + " M"});
  kernel_table.add_row({"speedup", TablePrinter::num(kernel_speedup, 2) + "x"});
  kernel_table.print(std::cout);
  std::cout << "\n";

  // -------------------------------------------------- end-to-end bench
  const double scale1 = quick ? 0.02 : 0.1;
  const double scale2 = quick ? 0.1 : 0.5;

  SimulationConfig raid5;
  raid5.organization = Organization::kRaid5;
  raid5.cached = true;
  const ReplayResult raid5_run = timed_replay(raid5, "trace1", scale1);

  SimulationConfig mirror;
  mirror.organization = Organization::kMirror;
  mirror.cached = false;
  const ReplayResult mirror_run = timed_replay(mirror, "trace2", scale2);

  TablePrinter replay_table(
      {"replay", "wall ms", "events", "events/sec"});
  replay_table.add_row({"RAID5 cached / trace1",
                        TablePrinter::num(raid5_run.wall_ms),
                        std::to_string(raid5_run.events),
                        TablePrinter::num(raid5_run.events_per_sec / 1e6, 2) +
                            " M"});
  replay_table.add_row({"Mirror uncached / trace2",
                        TablePrinter::num(mirror_run.wall_ms),
                        std::to_string(mirror_run.events),
                        TablePrinter::num(mirror_run.events_per_sec / 1e6, 2) +
                            " M"});
  replay_table.print(std::cout);
  std::cout << "\n";

  // -------------------------------------------------- tracing overhead
  // Same RAID5 replay with the request-lifecycle tracer recording into
  // its ring buffer (no file export). The "off" run re-measures rather
  // than reusing raid5_run so both sides see the same cache state.
  const ReplayResult traced_off = timed_replay(raid5, "trace1", scale1);
  SimulationConfig raid5_traced = raid5;
  raid5_traced.obs.tracing = true;
  const ReplayResult traced_on = timed_replay(raid5_traced, "trace1", scale1);
  const double tracing_overhead_pct =
      traced_on.events_per_sec > 0.0
          ? (traced_off.events_per_sec / traced_on.events_per_sec - 1.0) * 1e2
          : 0.0;

  TablePrinter tracing_table({"tracer", "wall ms", "events/sec"});
  tracing_table.add_row(
      {"off (runtime)", TablePrinter::num(traced_off.wall_ms),
       TablePrinter::num(traced_off.events_per_sec / 1e6, 2) + " M"});
  tracing_table.add_row(
      {"on (ring buffer)", TablePrinter::num(traced_on.wall_ms),
       TablePrinter::num(traced_on.events_per_sec / 1e6, 2) + " M"});
  tracing_table.add_row(
      {"overhead", "-", TablePrinter::num(tracing_overhead_pct, 2) + " %"});
  tracing_table.print(std::cout);
  std::cout << "\n";

  // ------------------------------------------------ sweep-scaling bench
  const int sweep_runs = quick ? 8 : 16;
  const double sweep_scale = quick ? 0.02 : 0.05;
  std::vector<int> thread_points{1, 2, 4};
  if (max_threads > 4) thread_points.push_back(max_threads);

  SimulationConfig sweep_config;
  sweep_config.organization = Organization::kRaid5;
  sweep_config.cached = true;

  std::vector<SweepPoint> sweep_points;
  TablePrinter sweep_table({"threads", "wall ms", "runs/sec", "scaling"});
  double base_rps = 0.0;
  for (int t : thread_points) {
    const SweepPoint p = timed_sweep(t, sweep_runs, sweep_config, sweep_scale);
    sweep_points.push_back(p);
    if (t == 1) base_rps = p.runs_per_sec;
    sweep_table.add_row(
        {std::to_string(t), TablePrinter::num(p.wall_ms),
         TablePrinter::num(p.runs_per_sec, 3),
         base_rps > 0.0 ? TablePrinter::num(p.runs_per_sec / base_rps, 2) + "x"
                        : "-"});
  }
  sweep_table.print(std::cout);
  std::cout << "\n";

  // ------------------------------------------------------- JSON export
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"schema\": 1,\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"hardware_threads\": " << (hw ? hw : 1u) << ",\n"
      << "  \"kernel\": {\n"
      << "    \"churn_events\": " << churn_events << ",\n"
      << "    \"events_per_sec\": " << kernel_new << ",\n"
      << "    \"legacy_events_per_sec\": " << kernel_legacy << ",\n"
      << "    \"speedup_vs_legacy\": " << kernel_speedup << "\n"
      << "  },\n"
      << "  \"end_to_end\": {\n"
      << "    \"raid5_cached_trace1\": {\"wall_ms\": " << raid5_run.wall_ms
      << ", \"events\": " << raid5_run.events
      << ", \"events_per_sec\": " << raid5_run.events_per_sec
      << ", \"mean_response_ms\": " << raid5_run.mean_response_ms << "},\n"
      << "    \"mirror_uncached_trace2\": {\"wall_ms\": " << mirror_run.wall_ms
      << ", \"events\": " << mirror_run.events
      << ", \"events_per_sec\": " << mirror_run.events_per_sec
      << ", \"mean_response_ms\": " << mirror_run.mean_response_ms << "}\n"
      << "  },\n"
      << "  \"tracing\": {\n"
      << "    \"events_per_sec_off\": " << traced_off.events_per_sec << ",\n"
      << "    \"events_per_sec_on\": " << traced_on.events_per_sec << ",\n"
      << "    \"overhead_pct\": " << tracing_overhead_pct << "\n"
      << "  },\n"
      << "  \"sweep\": {\n"
      << "    \"runs\": " << sweep_runs << ",\n"
      << "    \"points\": [";
  for (std::size_t i = 0; i < sweep_points.size(); ++i) {
    const auto& p = sweep_points[i];
    out << (i ? ", " : "") << "{\"threads\": " << p.threads
        << ", \"wall_ms\": " << p.wall_ms
        << ", \"runs_per_sec\": " << p.runs_per_sec << "}";
  }
  out << "]\n"
      << "  }\n"
      << "}\n";
  out.close();

  std::cout << "[perf data written to " << out_path << "]\n";
  return 0;
}
