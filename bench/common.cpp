#include "common.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace raidsim::bench {

namespace {
// Slug of the current experiment, set by banner(), used to name data
// exports.
std::string g_experiment_slug;  // NOLINT(runtime/string)

std::string slugify(const std::string& text) {
  std::string slug;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 48) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? std::string("experiment") : slug;
}
}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  return parse(argc, argv, BenchOptions{});
}

BenchOptions BenchOptions::parse(int argc, char** argv,
                                 BenchOptions defaults) {
  BenchOptions options = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--full") {
      options.scale1 = 1.0;
      options.scale2 = 1.0;
    } else if (arg == "--quick") {
      options.scale1 = 0.05;
      options.scale2 = 0.25;
    } else if (const char* v = value_of("--scale1=")) {
      options.scale1 = std::atof(v);
    } else if (const char* v = value_of("--scale2=")) {
      options.scale2 = std::atof(v);
    } else if (const char* v = value_of("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--threads=")) {
      options.threads = std::atoi(v);
    } else if (const char* v = value_of("--shards=")) {
      options.shards = std::atoi(v);
    } else if (const char* v = value_of("--shard-threads=")) {
      options.shard_threads = std::atoi(v);
    } else if (const char* v = value_of("--trace-out=")) {
      options.trace_out = v;
    } else if (const char* v = value_of("--sample-interval-ms=")) {
      options.sample_interval_ms = std::atof(v);
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --full --quick --scale1=<f> --scale2=<f> "
                   "--seed=<n> --threads=<n> --shards=<n> "
                   "--shard-threads=<n> --trace-out=<prefix> "
                   "--sample-interval-ms=<t> --verbose\n";
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown option: " + arg);
    }
  }
  return options;
}

WorkloadOptions BenchOptions::workload_options(const std::string& trace,
                                               double speed) const {
  WorkloadOptions wo;
  wo.scale = trace == "trace1" ? scale1 : scale2;
  wo.speed = speed;
  wo.seed = seed;
  return wo;
}

SimulationConfig BenchOptions::engine_config(SimulationConfig config) const {
  if (shards > 0) {
    config.shards = shards;
    config.shard_threads = shard_threads;
  }
  return config;
}

Metrics run_config(const SimulationConfig& config, const std::string& trace,
                   const BenchOptions& options, double speed) {
  Metrics metrics;
  if (options.trace_out.empty() && options.shards <= 0) {
    auto stream = make_workload(trace, options.workload_options(trace, speed));
    metrics = run_simulation(config, *stream);
  } else {
    // Each traced run of this process gets its own artifact prefix.
    static int run_seq = 0;
    SweepJob job;
    job.config = options.engine_config(config);
    job.trace = trace;
    job.workload = options.workload_options(trace, speed);
    job.label = config.describe() + " " + trace;
    if (!options.trace_out.empty()) {
      job.trace_out = options.trace_out + "_run" + std::to_string(run_seq++);
      job.sample_interval_ms = options.sample_interval_ms;
    }
    metrics = run_sweep_job(job);
  }
  if (options.verbose)
    std::cout << "[" << config.describe() << " " << trace
              << ": events_executed=" << metrics.events_executed
              << " requests=" << metrics.requests << "]\n";
  return metrics;
}

Sweep::Sweep(const BenchOptions& options)
    : options_(options), runner_(options.threads) {}

std::size_t Sweep::add(const SimulationConfig& config,
                       const std::string& trace, double speed) {
  if (ran_)
    throw std::logic_error("Sweep: add() after results were consumed");
  SweepJob job;
  job.config = options_.engine_config(config);
  job.trace = trace;
  job.workload = options_.workload_options(trace, speed);
  job.label = config.describe() + " " + trace;
  if (!options_.trace_out.empty()) {
    // One artifact prefix per sweep point, so parallel workers never
    // share a file.
    job.trace_out =
        options_.trace_out + "_" + std::to_string(runner_.queued());
    job.sample_interval_ms = options_.sample_interval_ms;
  }
  return runner_.submit(std::move(job));
}

const Metrics& Sweep::result(std::size_t i) {
  if (!ran_) {
    results_ = runner_.run_all();
    ran_ = true;
    if (options_.verbose)
      for (std::size_t j = 0; j < results_.size(); ++j)
        std::cout << "[" << j << ": " << results_[j].label
                  << ": events_executed="
                  << results_[j].metrics.events_executed
                  << " requests=" << results_[j].metrics.requests << "]\n";
  }
  return results_.at(i).metrics;
}

void banner(const std::string& experiment, const std::string& paper_claim,
            const BenchOptions& options) {
  g_experiment_slug = slugify(experiment);
  std::cout << "== " << experiment << " ==\n";
  std::cout << "paper: " << paper_claim << "\n";
  std::cout << "workload scale: trace1=" << options.scale1
            << " trace2=" << options.scale2
            << " (synthetic stand-ins; see DESIGN.md)\n\n";
}

void print_series_table(const std::string& x_name,
                        const std::vector<std::string>& x_values,
                        const std::string& trace_name,
                        const std::vector<Series>& series,
                        const std::string& value_name) {
  std::vector<std::string> header{x_name};
  for (const auto& s : series) header.push_back(s.name);
  std::cout << trace_name << " -- " << value_name << "\n";
  TablePrinter table(header);
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    std::vector<std::string> row{x_values[i]};
    for (const auto& s : series)
      row.push_back(i < s.values.size() ? TablePrinter::num(s.values[i])
                                        : std::string("-"));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n";

  if (const char* dir = std::getenv("RAIDSIM_DATA_DIR")) {
    const std::string path = std::string(dir) + "/" + g_experiment_slug +
                             "_" + slugify(trace_name) + ".csv";
    std::ofstream out(path);
    if (out) {
      CsvWriter csv(out);
      std::vector<std::string> head{x_name.empty() ? value_name : x_name};
      for (const auto& s : series) head.push_back(s.name);
      csv.write_row(head);
      for (std::size_t i = 0; i < x_values.size(); ++i) {
        std::vector<std::string> row{x_values[i]};
        for (const auto& s : series)
          row.push_back(i < s.values.size()
                            ? std::to_string(s.values[i])
                            : std::string());
        csv.write_row(row);
      }
      std::cout << "[data written to " << path << "]\n\n";
    }
  }
}

}  // namespace raidsim::bench
