// Figure 4: response time for the five parity/data synchronization
// policies (SI, RF, RF/PR, DF, DF/PR) vs array size, for RAID5 and
// Parity Striping on both traces, uncached.
//
// Published shape: SI significantly worse than everything else; DF beats
// RF; the /PR variants improve both; DF/PR best overall; the gaps narrow
// for larger arrays.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.05;  // 2 orgs x 5 policies x 4 sizes x 2 traces
  defaults.scale2 = 0.5;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 4: synchronization policies vs array size (uncached)",
         "SI clearly worst; DF < RF; /PR variants better; DF/PR best; "
         "gaps narrow with larger arrays",
         options);

  const std::vector<int> sizes{5, 10, 15, 20};
  const std::vector<SyncPolicy> policies{
      SyncPolicy::kSimultaneousIssue, SyncPolicy::kReadFirst,
      SyncPolicy::kReadFirstPriority, SyncPolicy::kDiskFirst,
      SyncPolicy::kDiskFirstPriority};

  for (auto org : {Organization::kRaid5, Organization::kParityStriping}) {
    for (const std::string trace : {"trace1", "trace2"}) {
      std::vector<Series> series;
      for (auto policy : policies) {
        Series s{to_string(policy), {}};
        for (int n : sizes) {
          SimulationConfig config;
          config.organization = org;
          config.array_data_disks = n;
          config.sync = policy;
          config.cached = false;
          s.values.push_back(
              run_config(config, trace, options).mean_response_ms());
        }
        series.push_back(std::move(s));
      }
      std::vector<std::string> xs;
      for (int n : sizes) xs.push_back("N=" + std::to_string(n));
      print_series_table("array size", xs,
                         to_string(org) + " / " + trace, series);
    }
  }
  return 0;
}
