// Ablation: disk queue scheduling. The paper's simulator services
// requests in arrival order within a priority class; SSTF and SCAN
// shorten seeks under queueing. This quantifies how much of the
// organizations' relative standing is robust to the dispatch policy.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.1;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Ablation: disk queue scheduling (FIFO vs SSTF vs SCAN)",
         "seek-optimising schedulers help most where queues are long "
         "(Base/ParStrip hot disks); orderings should be robust",
         options);

  const std::vector<DiskScheduling> policies{
      DiskScheduling::kFifo, DiskScheduling::kSstf, DiskScheduling::kScan};
  const std::vector<Organization> orgs{Organization::kBase,
                                       Organization::kRaid5,
                                       Organization::kParityStriping};
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      for (auto policy : policies) {
        SimulationConfig config;
        config.organization = org;
        config.cached = false;
        config.disk_scheduling = policy;
        Series s{to_string(org) + " " + to_string(policy),
                 {run_config(config, trace, options).mean_response_ms()}};
        series.push_back(std::move(s));
      }
    }
    print_series_table("", {"response"}, trace, series);
  }
  return 0;
}
