// ext_service_saturation: goodput and shed rate of the what-if daemon
// as offered load crosses saturation.
//
// Extension beyond the paper's evaluation: the paper reports per-array
// response times; this bench characterizes the *service wrapper* around
// the simulator -- an in-process daemon with a bounded admission queue
// -- as closed-loop client concurrency doubles past its capacity.
// Expected shape: goodput plateaus at the worker count while the
// overload-shed rate climbs; response latency of accepted jobs stays
// bounded by (queue depth / workers) x job time rather than growing
// with offered load, which is the whole point of admission control.
//
//   --clients-max=<n>   top concurrency level (default 16)
//   --requests=<n>      requests per client per level (default 4)
//   --scale=<f>         trace2 replay fraction per job (default 0.05)
//   --workers=<n>       daemon worker threads (default 2)
//   --queue=<n>         admission queue capacity (default 3)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "svc/client.hpp"
#include "svc/job_codec.hpp"
#include "svc/server.hpp"

int main(int argc, char** argv) {
  int clients_max = 16;
  int requests = 4;
  double scale = 0.05;
  int workers = 2;
  int queue = 3;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--clients-max=", 14) == 0) clients_max = std::atoi(a + 14);
    else if (std::strncmp(a, "--requests=", 11) == 0) requests = std::atoi(a + 11);
    else if (std::strncmp(a, "--scale=", 8) == 0) scale = std::atof(a + 8);
    else if (std::strncmp(a, "--workers=", 10) == 0) workers = std::atoi(a + 10);
    else if (std::strncmp(a, "--queue=", 8) == 0) queue = std::atoi(a + 8);
  }

  std::printf("service saturation: trace2 scale %.3f, %d workers, queue %d, "
              "%d requests/client\n\n",
              scale, workers, queue, requests);
  std::printf("%8s %8s %8s %8s %12s %14s\n", "clients", "sent", "ok",
              "shed", "goodput/s", "ok latency ms");

  for (int clients = 1; clients <= clients_max; clients *= 2) {
    const std::string socket_path = "/tmp/raidsim_svc_bench." +
                                    std::to_string(::getpid()) + "." +
                                    std::to_string(clients) + ".sock";
    raidsim::svc::Server::Options opts;
    opts.socket_path = socket_path;
    opts.supervisor.workers = workers;
    opts.supervisor.queue_capacity = static_cast<std::size_t>(queue);
    opts.log_final_stats = false;
    raidsim::svc::Server server(opts);
    std::thread server_thread([&server] { server.run(); });

    std::atomic<int> ok{0}, shed{0}, sent{0};
    std::atomic<double> ok_latency_ms{0.0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        try {
          raidsim::svc::Client client(socket_path, 600000.0);
          for (int r = 0; r < requests; ++r) {
            raidsim::svc::JobRequest job;
            job.trace = "trace2";
            job.workload.scale = scale;
            job.workload.seed = 1000 + static_cast<std::uint64_t>(c) * 100 +
                                static_cast<std::uint64_t>(r);
            job.no_cache = true;  // measure simulation work, not the cache
            sent.fetch_add(1);
            const auto s0 = std::chrono::steady_clock::now();
            const raidsim::svc::JsonValue response =
                client.request(encode_job_request(job));
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - s0)
                                  .count();
            const raidsim::svc::JsonValue* status = response.find("status");
            const std::string st =
                status != nullptr && status->is_string() ? status->as_string()
                                                         : "?";
            if (st == "ok") {
              ok.fetch_add(1);
              // Atomic accumulate (pre-C++20 fetch_add(double) shim).
              double cur = ok_latency_ms.load();
              while (!ok_latency_ms.compare_exchange_weak(cur, cur + ms)) {
              }
            } else if (st == "overloaded") {
              shed.fetch_add(1);
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "client %d: %s\n", c, e.what());
        }
      });
    }
    for (auto& t : pool) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    server.stop();
    server_thread.join();

    std::printf("%8d %8d %8d %8d %12.2f %14.2f\n", clients, sent.load(),
                ok.load(), shed.load(),
                wall_s > 0 ? ok.load() / wall_s : 0.0,
                ok.load() ? ok_latency_ms.load() / ok.load() : 0.0);
  }
  return 0;
}
