// Extension: fail-slow disks and tail-tolerance policies. The paper's
// failure model is fail-stop, but real arrays mostly degrade through
// disks that keep answering -- slowly. This bench places one sticky-slow
// disk in array 0 (service times multiplied by the severity factor) and
// compares host-visible tail latency (p50/p95/p99/p999) for Mirror /
// RAID5 / Parity Striping with the tail-tolerance policies off vs on:
//   Mirror          redirect-on-slow + hedged reads to the twin
//   RAID5/ParStrip  reconstruct-read around the straggler (hedged)
// The mean barely moves -- the straggler serves a 1/total_disks slice of
// the load -- which is exactly why the tail percentiles are the only
// lens that shows fail-slow damage.
#include <iostream>

#include "common.hpp"
#include "fault/slowdown_injector.hpp"

namespace {

using namespace raidsim;
using namespace raidsim::bench;

struct TailResult {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

TailResult run_point(Organization org, double sticky_factor, bool policies,
                     const std::string& trace, const BenchOptions& options) {
  SimulationConfig config;
  config.organization = org;
  config.array_data_disks = 10;
  config.cached = false;
  if (policies) {
    config.tail.enabled = true;
    config.tail.read_deadline_ms = 120.0;
    config.tail.hedge_ewma_factor = 3.0;
    config.tail.redirect_on_slow = true;
    config.tail.reconstruct_on_slow = true;
  }

  auto stream = make_workload(trace, options.workload_options(trace));
  Simulator sim(config, stream->geometry());

  std::vector<ArrayController*> arrays;
  for (int a = 0; a < sim.arrays(); ++a)
    arrays.push_back(&sim.mutable_controller(a));

  SlowdownConfig slow;
  slow.manual_sticky = true;  // hooks installed, straggler placed by hand
  slow.sticky_factor = sticky_factor;
  SlowdownInjector injector(sim.event_queue(), arrays, slow);
  if (sticky_factor > 1.0) {
    injector.arm();
    injector.force_sticky(/*array=*/0, /*disk=*/1);
  }

  const Metrics m = sim.run(*stream);
  return TailResult{m.response_all.p50(), m.response_all.p95(),
                    m.response_all.p99(), m.response_all.p999()};
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.scale1 = 0.05;
  defaults.scale2 = 0.5;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Extension: fail-slow disks and tail-tolerance policies",
         "mirrors can redirect reads to the faster copy and RAID5 can "
         "reconstruct around a straggler, so redundancy buys tail latency, "
         "not just availability",
         options);
  std::cout << "seed: " << options.seed
            << " (0 = workload default; override with --seed=<n>)\n\n";

  const std::vector<Organization> orgs{Organization::kMirror,
                                       Organization::kRaid5,
                                       Organization::kParityStriping};
  const std::vector<double> severities{1.0, 3.0, 6.0, 10.0};

  for (const std::string trace : {"trace1", "trace2"}) {
    for (auto org : orgs) {
      TablePrinter table({"slowdown", "p50 off", "p50 on", "p95 off",
                          "p95 on", "p99 off", "p99 on", "p999 off",
                          "p999 on"});
      for (double severity : severities) {
        const TailResult off =
            run_point(org, severity, /*policies=*/false, trace, options);
        const TailResult on =
            run_point(org, severity, /*policies=*/true, trace, options);
        const std::string label =
            severity == 1.0 ? "none"
                            : TablePrinter::num(severity, 0) + "x sticky";
        table.add_row({label, TablePrinter::num(off.p50),
                       TablePrinter::num(on.p50), TablePrinter::num(off.p95),
                       TablePrinter::num(on.p95), TablePrinter::num(off.p99),
                       TablePrinter::num(on.p99), TablePrinter::num(off.p999),
                       TablePrinter::num(on.p999)});
      }
      std::cout << trace << " -- " << to_string(org)
                << " (response ms, policies off vs on)\n";
      table.print(std::cout);
      std::cout << "\n";
    }
  }
  std::cout
      << "One disk of array 0 is sticky-slow at the stated factor; the "
         "policies are deadline=120ms + hedge at 3x the primary's EWMA, "
         "with mirror redirect-on-slow and parity reconstruct-on-slow.\n";
  return 0;
}
