// Figure 12: response time vs cache size, four organizations, cached
// controllers.
//
// Published shape: all organizations improve with cache size; Mirror
// ~22% better than Base at 16 MB; a 16 MB cache practically eliminates
// the RAID5 write penalty on Trace 1 (~1% worse than Base, down from
// +32% uncached); on Trace 2, RAID5 beats Base outright and approaches
// or beats Mirror below 64 MB; RAID5 stays ahead of Parity Striping.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 12: response time vs cache size (cached organizations)",
         "a 16 MB cache nearly eliminates RAID5's write penalty on "
         "Trace 1; on Trace 2 RAID5 beats Base via load balancing",
         options);

  const std::vector<std::int64_t> cache_mb{8, 16, 32, 64, 128, 256};
  const std::vector<Organization> orgs{
      Organization::kBase, Organization::kMirror, Organization::kRaid5,
      Organization::kParityStriping};

  Sweep sweep(options);
  for (const std::string trace : {"trace1", "trace2"}) {
    for (auto org : orgs) {
      for (auto mb : cache_mb) {
        SimulationConfig config;
        config.organization = org;
        config.cached = true;
        config.cache_bytes = mb << 20;
        sweep.add(config, trace);
      }
    }
  }

  std::size_t point = 0;
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series s{to_string(org), {}};
      for (std::size_t i = 0; i < cache_mb.size(); ++i)
        s.values.push_back(sweep.response_ms(point++));
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (auto mb : cache_mb) xs.push_back(std::to_string(mb) + " MB");
    print_series_table("cache size", xs, trace, series);
  }
  return 0;
}
