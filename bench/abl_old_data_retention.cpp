// Ablation (Section 3.4): keeping the old content of dirtied blocks in
// the cache (saving the destage's old-data read on the data disk) vs
// rereading old data from disk at destage time.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Ablation: old-data retention in the cache (parity organizations)",
         "retention converts destage data RMWs into plain writes at the "
         "cost of cache slots",
         options);

  const std::vector<std::int64_t> cache_mb{8, 16, 64};
  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : {Organization::kRaid5, Organization::kParityStriping}) {
      for (bool retain : {true, false}) {
        Series s{to_string(org) + (retain ? " +old" : " -old"), {}};
        for (auto mb : cache_mb) {
          SimulationConfig config;
          config.organization = org;
          config.cached = true;
          config.cache_bytes = mb << 20;
          config.retain_old_data = retain;
          s.values.push_back(
              run_config(config, trace, options).mean_response_ms());
        }
        series.push_back(std::move(s));
      }
    }
    std::vector<std::string> xs;
    for (auto mb : cache_mb) xs.push_back(std::to_string(mb) + " MB");
    print_series_table("cache size", xs, trace, series);
  }
  return 0;
}
