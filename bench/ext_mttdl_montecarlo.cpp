// Extension: Monte-Carlo validation of the analytic MTTDL model
// (Section 1 and the Section 4.2.1 reliability/rebuild trade-off).
// Simulates thousands of whole failure/repair lifetimes per
// organization at the paper's parameters (100,000 h disk MTTF, 24 h
// repair) and compares the simulated mean time to data loss against
// the closed-form approximations of core/reliability.hpp. Agreement
// within the 95% confidence interval -- and always within 2x on a log
// scale -- validates both the formulas and the fault subsystem's loss
// semantics (HealthMonitor::causes_data_loss shares them).
#include <iostream>
#include <string>

#include "common.hpp"
#include "fault/mttdl_sim.hpp"

namespace {

using namespace raidsim;

constexpr double kHoursPerYear = 24.0 * 365.0;

void add_row(TablePrinter& table, const std::string& label,
             const MttdlConfig& config, int lifetimes) {
  const MttdlEstimate est = simulate_mttdl(config, lifetimes);
  table.add_row(
      {label, std::to_string(config.total_data_disks),
       std::to_string(config.array_data_disks),
       TablePrinter::num(est.analytic_hours / kHoursPerYear, 2),
       TablePrinter::num(est.mean_hours / kHoursPerYear, 2),
       TablePrinter::num(est.ci_low_hours / kHoursPerYear, 2) + ".." +
           TablePrinter::num(est.ci_high_hours / kHoursPerYear, 2),
       TablePrinter::num(est.ratio(), 3),
       est.agrees_within(2.0) ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim::bench;
  const auto options = BenchOptions::parse(argc, argv);
  banner("Extension: Monte-Carlo MTTDL vs the analytic model",
         "Section 1: redundant organizations only lose data when a second "
         "failure strikes a group inside the first's repair window",
         options);

  const int lifetimes = 1000;
  MttdlConfig base;  // paper parameters: 100,000 h MTTF, 24 h MTTR
  if (options.seed) base.seed = options.seed;
  std::cout << "seed: " << base.seed << " (override with --seed=<n>)\n\n";

  TablePrinter table({"organization", "D", "N", "analytic (yr)",
                      "simulated (yr)", "95% CI (yr)", "sim/analytic",
                      "within 2x"});

  // Base: no redundancy, MTTDL = MTTF / D. Doubling the database
  // halves the expected lifetime.
  for (int d : {50, 100, 200}) {
    auto cfg = base;
    cfg.organization = Organization::kBase;
    cfg.total_data_disks = d;
    cfg.array_data_disks = 10;
    add_row(table, "Base", cfg, lifetimes);
  }

  // Mirror and RAID5 at two array sizes each (the acceptance bar).
  for (int n : {4, 10}) {
    auto cfg = base;
    cfg.organization = Organization::kMirror;
    cfg.total_data_disks = n;
    cfg.array_data_disks = n;
    add_row(table, "Mirrored", cfg, lifetimes);
  }
  for (int n : {4, 10, 20}) {
    auto cfg = base;
    cfg.organization = Organization::kRaid5;
    cfg.total_data_disks = n;
    cfg.array_data_disks = n;
    add_row(table, "RAID5", cfg, lifetimes);
  }
  {
    auto cfg = base;
    cfg.organization = Organization::kParityStriping;
    cfg.total_data_disks = 10;
    cfg.array_data_disks = 10;
    add_row(table, "Parity Striping", cfg, lifetimes);
  }

  table.print(std::cout);
  std::cout
      << "\nEach row is " << lifetimes
      << " independent simulated lifetimes (exponential failures and "
         "repairs, only the failure/repair epochs are drawn).\n"
         "Base scales as MTTF/D; the redundant organizations sit orders "
         "of magnitude higher and shrink as group size grows, matching "
         "Section 4.2.1's large-array reliability caveat.\n";
  return 0;
}
