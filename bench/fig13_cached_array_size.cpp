// Figure 13: response time vs array size for cached organizations at
// equal TOTAL cache (N=5 -> 8 MB/array, N=10 -> 16 MB, N=15 -> 24 MB).
//
// Published shape: for Base/Mirror on Trace 1 the larger shared cache
// slightly wins despite channel contention; for RAID5 and Parity
// Striping the arm count and load balancing dominate the cache-partition
// effect.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.15;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 13: array size at equal total cache (cached)",
         "shared-vs-partitioned cache is a second-order effect next to "
         "arm count and load balancing",
         options);

  struct Point {
    int n;
    std::int64_t cache_mb;
  };
  const std::vector<Point> points{{5, 8}, {10, 16}, {15, 24}};
  const std::vector<Organization> orgs{
      Organization::kBase, Organization::kMirror, Organization::kRaid5,
      Organization::kParityStriping};

  for (const std::string trace : {"trace1", "trace2"}) {
    std::vector<Series> series;
    for (auto org : orgs) {
      Series s{to_string(org), {}};
      for (const auto& point : points) {
        SimulationConfig config;
        config.organization = org;
        config.array_data_disks = point.n;
        config.cached = true;
        config.cache_bytes = point.cache_mb << 20;
        s.values.push_back(
            run_config(config, trace, options).mean_response_ms());
      }
      series.push_back(std::move(s));
    }
    std::vector<std::string> xs;
    for (const auto& point : points)
      xs.push_back("N=" + std::to_string(point.n) + "/" +
                   std::to_string(point.cache_mb) + "MB");
    print_series_table("array size / cache", xs, trace, series);
  }
  return 0;
}
