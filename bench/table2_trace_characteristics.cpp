// Tables 1 and 2: disk/channel parameters and the characteristics of the
// two (synthetic stand-in) traces, in the paper's format.
//
// Published values (Table 2):
//                         Trace 1     Trace 2
//   Duration              3hr 3min    1hr 40min
//   # of disks            130         10
//   # of I/O accesses     3,362,505   69,539
//   # of blocks           4,467,719   143,105
//   single block reads    2,977,914   48,339
//   single block writes   312,961     17,557
//   multiblock reads      47,324      2,029
//   multiblock writes     24,306      2,098
#include <iostream>

#include "common.hpp"
#include "disk/geometry.hpp"
#include "disk/seek_model.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 1.0;  // statistics collection is cheap; run in full
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Tables 1-2: disk parameters and trace characteristics",
         "synthetic stand-ins must reproduce the published Table 2 counts "
         "(scaled by --scale)",
         options);

  {
    DiskGeometry geo;
    const SeekModel seek = SeekModel::calibrate(SeekSpec{});
    TablePrinter t({"Table 1 parameter", "value"});
    t.add_row({"Rotation speed", TablePrinter::num(geo.rpm, 0) + " rpm"});
    t.add_row({"Average seek",
               TablePrinter::num(seek.average_over_uniform(), 1) + " ms"});
    t.add_row({"Maximal seek",
               TablePrinter::num(seek.seek_time(geo.cylinders - 1), 1) + " ms"});
    t.add_row({"Tracks per platter", std::to_string(geo.cylinders)});
    t.add_row({"Sectors per track", std::to_string(geo.sectors_per_track)});
    t.add_row({"Bytes per sector", std::to_string(geo.bytes_per_sector)});
    t.add_row({"Number of platters",
               std::to_string(geo.tracks_per_cylinder / 2)});
    t.add_row({"Channel transfer rate", "10 MB/s"});
    t.add_row({"Capacity",
               TablePrinter::num(
                   static_cast<double>(geo.capacity_bytes()) / 1e9, 2) +
                   " GB"});
    t.print(std::cout);
    std::cout << "\n";
  }

  auto t1 = make_workload("trace1", options.workload_options("trace1"));
  const TraceStats s1 = TraceStats::collect(*t1);
  auto t2 = make_workload("trace2", options.workload_options("trace2"));
  const TraceStats s2 = TraceStats::collect(*t2);
  std::cout << "Table 2 (synthetic stand-ins; trace1 scaled by "
            << options.scale1 << ", trace2 by " << options.scale2 << ")\n";
  std::cout << TraceStats::table({&s1, &s2}, {"Trace 1", "Trace 2"});
  return 0;
}
