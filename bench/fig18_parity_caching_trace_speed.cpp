// Figure 18: response time vs trace speed, RAID5 vs RAID4 with parity
// caching (cached, 16 MB).
//
// Published shape: the gap widens as load increases; on Trace 2, RAID5
// degrades significantly at 2x while parity caching keeps the RAID4
// parity disk from becoming a bottleneck.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;
  using namespace raidsim::bench;
  BenchOptions defaults;
  defaults.scale1 = 0.1;
  const auto options = BenchOptions::parse(argc, argv, defaults);
  banner("Figure 18: response time vs trace speed (RAID5 vs RAID4+parity)",
         "RAID4's advantage grows with load; the spooled parity disk "
         "keeps up even at 2x",
         options);

  const std::vector<double> speeds{0.5, 1.0, 2.0};
  for (const std::string trace : {"trace1", "trace2"}) {
    Series r5{"RAID5", {}}, r4{"RAID4+parity", {}};
    std::vector<std::string> peaks;
    for (double speed : speeds) {
      SimulationConfig config;
      config.cached = true;
      config.organization = Organization::kRaid5;
      r5.values.push_back(
          run_config(config, trace, options, speed).mean_response_ms());
      config.organization = Organization::kRaid4;
      config.parity_caching = true;
      const Metrics r4m = run_config(config, trace, options, speed);
      r4.values.push_back(r4m.mean_response_ms());
      peaks.push_back(std::to_string(r4m.controller.parity_queue_peak));
    }
    std::vector<std::string> xs;
    for (double speed : speeds)
      xs.push_back(TablePrinter::num(speed, 1) + "x");
    print_series_table("trace speed", xs, trace, {r5, r4});
    std::cout << "RAID4 peak buffered parity blocks per speed:";
    for (const auto& p : peaks) std::cout << ' ' << p;
    std::cout << "\n\n";
  }
  return 0;
}
