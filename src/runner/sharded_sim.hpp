#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "sim/cancellation.hpp"
#include "sim/progress.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace raidsim {

/// Intra-run sharded execution engine: ONE simulation, partitioned by
/// array into independent event kernels run on a thread pool.
///
/// Arrays in this simulator share no state -- each owns its disks,
/// channel, buffer pool, and NV cache, and the host merely routes each
/// request to one array -- so the run can be split by array without
/// approximation. Shard s owns arrays {a : a % shards == s} (round-robin,
/// which balances load when the trace skews toward low-numbered arrays),
/// and each shard gets its own EventQueue, Tracer, TimeSeriesSampler, and
/// Rng stream.
///
/// Determinism contract: merged metrics are bit-identical at ANY shard
/// count >= 1 and ANY thread count (asserted by
/// tests/runner/sharded_sim_test.cpp, the same discipline SweepRunner
/// holds across sweeps). The ingredients:
///
///  * The coordinator materializes the whole trace up front on one
///    thread, accumulating arrival times in global record order, so
///    floating-point arrival sums never depend on the partition.
///  * Per-array response recorders: each array's latencies are
///    accumulated in that array's completion order and merged into the
///    run totals in global array order, so summation order is fixed.
///  * Per-array shutdown: an array's background machinery (destage timer)
///    stops when ITS OWN last response completes, never when some other
///    array finishes -- so an array's full event trajectory is a function
///    of its own request stream only. (The classic engine stops every
///    array at global quiescence, which couples arrays through the
///    shutdown time; sharded results are therefore self-consistent but
///    not bit-identical to the classic engine. docs/performance.md
///    discusses the difference.)
///  * elapsed_ms is the max over shard clocks, and utilizations are
///    computed against that global elapsed time during the merge.
///
/// events_executed is the sum over shards, invariant to the partition
/// when the telemetry sampler is off (per-shard sampler timers tick
/// independently, so sampled runs trade that one invariance for
/// per-shard timeseries).
class ShardedSimulator {
 public:
  /// `seed` derives the per-shard Rng streams (split deterministically in
  /// shard order). The replay path itself consumes no randomness; the
  /// streams give stochastic co-processes (fault injection, background
  /// scrubs) a shard-stable generator to draw from.
  ShardedSimulator(const SimulationConfig& config,
                   const TraceGeometry& geometry, std::uint64_t seed = 0);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Replay the whole trace across the shard pool and return merged
  /// metrics. May be called once per instance.
  Metrics run(TraceStream& trace);

  /// Attach a cooperative cancellation token shared by every shard
  /// kernel. Each shard polls it at event-batch boundaries
  /// (Simulator::kCancelCheckBatch events); when it fires the whole run
  /// unwinds with CancelledError after all shard workers have stopped.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Non-empty: after run(), export each shard's artifacts under
  /// `<prefix>_shard<k>` (requires config.obs.tracing for trace JSON;
  /// sample_interval_ms > 0 adds per-shard timeseries). At a fixed shard
  /// count the files are byte-identical at any thread count.
  void set_artifact_prefix(std::string prefix);

  /// Attach a progress observer. Each shard publishes its event count,
  /// clock, and completed-record tally at its cancel-poll boundary; the
  /// shard that crosses a boundary aggregates them (sum of events/done,
  /// max of clocks) and fires the hook -- serialized by a try-lock so a
  /// congested hook is skipped, never queued. Snapshots are monotone.
  /// Passive: hooked runs stay bit-identical to unhooked ones.
  void set_progress_hook(ProgressFn hook) { progress_ = std::move(hook); }

  /// Flight-recorder dump: write each shard's tracing ring to
  /// `<prefix>_shard<k>.trace.json` right now (best effort, I/O errors
  /// swallowed). Used by run_sweep_job when a recorded job unwinds, so
  /// the artifact exists even though run() threw.
  void dump_flight(const std::string& prefix) const;

  int shards() const { return shard_count_; }
  /// Worker threads the pool will use (resolved from config).
  int threads() const { return thread_count_; }
  int arrays() const { return array_count_; }

  /// The shard's deterministic random stream (derived from the seed).
  Rng& shard_rng(int shard);

  /// Map a database block to (array index, array-local logical block).
  std::pair<int, std::int64_t> route(std::int64_t db_block) const;

 private:
  struct Shard;
  struct ArrayState;
  struct ShardRecord;

  void load_records(TraceStream& trace);
  void pump(Shard& shard);
  void dispatch(Shard& shard, const ShardRecord& record);
  void schedule_sample_tick(Shard& shard);
  void take_sample(Shard& shard);
  void run_shard(Shard& shard);
  void maybe_emit_progress(bool final_frame);
  Metrics merge();

  SimulationConfig config_;
  TraceGeometry geometry_;
  std::int64_t blocks_per_array_ = 1;
  std::int64_t total_blocks_ = 0;
  int array_count_ = 0;
  int shard_count_ = 1;
  int thread_count_ = 1;
  const CancelToken* cancel_ = nullptr;
  ProgressFn progress_;
  std::mutex progress_mu_;
  std::uint64_t total_records_ = 0;
  std::string artifact_prefix_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool ran_ = false;
};

/// Convenience: build a sharded simulator for `config` (config.shards
/// clamped to at least 1) and replay `trace`. A non-null `cancel` makes
/// the run cooperatively cancellable (CancelledError).
Metrics run_sharded_simulation(const SimulationConfig& config,
                               TraceStream& trace, std::uint64_t seed = 0,
                               const std::string& artifact_prefix = "",
                               const CancelToken* cancel = nullptr);

}  // namespace raidsim
