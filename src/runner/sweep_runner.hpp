#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/workloads.hpp"
#include "sim/cancellation.hpp"
#include "sim/progress.hpp"

namespace raidsim {

/// One point of a parameter sweep: a fully independent simulation,
/// described by value so a worker thread can build its own workload
/// stream (own RNG state) and its own Simulator (own event queue).
struct SweepJob {
  SimulationConfig config;
  std::string trace;          // workload name: "trace1" or "trace2"
  WorkloadOptions workload;   // scale / speed / seed for this point
  std::string label;          // carried through to the result
  /// Non-empty: trace this job and export `<trace_out>.trace.json` (and,
  /// with sample_interval_ms > 0, `<trace_out>.timeseries.csv`) when it
  /// finishes. Parallel sweep jobs each own their tracer and write to
  /// their own prefix, so no cross-thread state exists.
  std::string trace_out;
  double sample_interval_ms = 0.0;
  /// Non-null: the run polls this token at event-batch boundaries and
  /// unwinds with CancelledError when it fires (service deadlines,
  /// watchdogs, drains). Must outlive the run.
  const CancelToken* cancel = nullptr;
  /// Non-null: progress snapshots fired at the same batch boundaries
  /// (streamed job progress, CLI heartbeats). Must be thread-safe for
  /// sharded configs; passive -- results stay bit-identical.
  ProgressFn progress;
  /// Non-empty: flight recorder. The run traces into a small ring
  /// (`flight_events` capacity) and, if it unwinds -- cancellation,
  /// deadline, TransientError -- the ring is dumped to
  /// `<flight_out>.trace.json` (sharded: `<flight_out>_shard<k>...`)
  /// before the exception propagates, so postmortems need no
  /// pre-arranged trace_out. No-op when tracing is compiled out.
  std::string flight_out;
  std::size_t flight_events = 4096;
};

struct SweepResult {
  std::string label;
  Metrics metrics;
  /// run_all_isolated() only: non-empty when this job threw instead of
  /// producing metrics. run_all() never returns errored results (it
  /// rethrows), so `ok()` is trivially true there.
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Shards independent simulation jobs across a worker pool and hands the
/// results back in submission order, so sweep output is byte-identical
/// regardless of thread count. Jobs share nothing: each worker
/// instantiates its own TraceStream and Simulator, and the pool hands
/// out work through a lock-guarded queue.
///
/// Usage:
///   SweepRunner runner(threads);           // 0 = hardware_concurrency
///   runner.submit({config, "trace1", wo, "N=10"});
///   auto results = runner.run_all();       // results[i] <-> i-th submit
class SweepRunner {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(int threads = 0);

  /// Queue one simulation point. Returns its index into run_all()'s
  /// result vector.
  std::size_t submit(SweepJob job);

  /// Escape hatch for work that is not a plain trace replay (closed-loop
  /// drivers, custom drains). `fn` runs on a worker thread and must not
  /// touch shared mutable state.
  std::size_t submit(std::string label, std::function<Metrics()> fn);

  /// Run every queued job and return the results in submission order.
  /// Clears the queue; the runner can be reused for another batch. If a
  /// job throws, the first exception (by submission order) is rethrown
  /// after all workers have stopped.
  std::vector<SweepResult> run_all();

  /// Like run_all(), but a throwing job never aborts the sweep: its
  /// result carries the exception text in `error` (metrics default) and
  /// every other job still runs and lands at its submission index. A
  /// poisoned config in a thousand-point sweep costs one point, not the
  /// sweep.
  std::vector<SweepResult> run_all_isolated();

  int threads() const { return threads_; }
  std::size_t queued() const { return jobs_.size(); }

 private:
  struct QueuedJob {
    std::string label;
    std::function<Metrics()> fn;
  };

  std::vector<SweepResult> run_impl(bool isolate_failures);

  int threads_;
  std::vector<QueuedJob> jobs_;
};

/// Run one sweep job to completion on the calling thread.
Metrics run_sweep_job(const SweepJob& job);

}  // namespace raidsim
