#include "runner/sweep_runner.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/simulator.hpp"
#include "obs/export.hpp"
#include "runner/sharded_sim.hpp"

namespace raidsim {

Metrics run_sweep_job(const SweepJob& job) {
  auto stream = make_workload(job.trace, job.workload);
  const bool want_trace = !job.trace_out.empty();
  const bool want_flight = !job.flight_out.empty();

  SimulationConfig config = job.config;
  if (want_trace) {
    config.obs.tracing = true;
    if (job.sample_interval_ms > 0.0)
      config.obs.sample_interval_ms = job.sample_interval_ms;
  } else if (want_flight) {
    // Flight recorder: trace into a small ring; only dumped if the run
    // unwinds. Tracing is passive, so metrics stay bit-identical.
    config.obs.tracing = true;
    config.obs.max_trace_events = std::max<std::size_t>(64, job.flight_events);
  }

  // config.shards >= 1 selects the sharded engine for this single run
  // (0 = classic single-queue engine).
  if (job.config.shards >= 1) {
    ShardedSimulator simulator(config, stream->geometry(), job.workload.seed);
    if (want_trace) simulator.set_artifact_prefix(job.trace_out);
    if (job.cancel) simulator.set_cancel_token(job.cancel);
    if (job.progress) simulator.set_progress_hook(job.progress);
    try {
      return simulator.run(*stream);
    } catch (...) {
      if (want_flight) simulator.dump_flight(job.flight_out);
      throw;
    }
  }
  if (!want_trace && !want_flight && job.cancel == nullptr && !job.progress)
    return run_simulation(job.config, *stream);

  Simulator simulator(config, stream->geometry());
  if (job.cancel) simulator.set_cancel_token(job.cancel);
  if (job.progress) simulator.set_progress_hook(job.progress);
  try {
    Metrics metrics = simulator.run(*stream);
    if (want_trace && simulator.tracer())
      export_run_artifacts(job.trace_out, *simulator.tracer(),
                           simulator.sampler());
    return metrics;
  } catch (...) {
    if (want_flight && simulator.tracer()) {
      try {
        export_run_artifacts(job.flight_out, *simulator.tracer(), nullptr);
      } catch (...) {
        // Best effort: a failed dump must not mask the original error.
      }
    }
    throw;
  }
}

SweepRunner::SweepRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw ? static_cast<int>(hw) : 1;
  }
}

std::size_t SweepRunner::submit(SweepJob job) {
  std::string label = job.label;
  return submit(std::move(label),
                [job = std::move(job)] { return run_sweep_job(job); });
}

std::size_t SweepRunner::submit(std::string label,
                                std::function<Metrics()> fn) {
  jobs_.push_back(QueuedJob{std::move(label), std::move(fn)});
  return jobs_.size() - 1;
}

std::vector<SweepResult> SweepRunner::run_all() { return run_impl(false); }

std::vector<SweepResult> SweepRunner::run_all_isolated() {
  return run_impl(true);
}

std::vector<SweepResult> SweepRunner::run_impl(bool isolate_failures) {
  std::vector<QueuedJob> jobs = std::move(jobs_);
  jobs_.clear();

  std::vector<SweepResult> results(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    results[i].label = jobs[i].label;

  // Indexed results make merge order independent of completion order.
  std::mutex queue_mutex;
  std::size_t next = 0;
  auto worker = [&] {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        if (next >= jobs.size()) return;
        index = next++;
      }
      try {
        results[index].metrics = jobs[index].fn();
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };

  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(threads_), jobs.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  if (isolate_failures) {
    // Per-job failure isolation: surviving jobs keep their submission
    // index and bit-identical metrics; a failed one reports its own
    // error without taking the sweep down.
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (!errors[i]) continue;
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::exception& e) {
        results[i].error = e.what();
      } catch (...) {
        results[i].error = "unknown exception";
      }
      if (results[i].error.empty()) results[i].error = "unknown error";
    }
    return results;
  }

  for (auto& error : errors)
    if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace raidsim
