#include "runner/sharded_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "array/cached_controller.hpp"
#include "array/uncached_controller.hpp"
#include "core/simulator.hpp"
#include "obs/export.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "sim/event_queue.hpp"

namespace raidsim {

namespace {

/// Live registry counters for the sharded engine; shard threads feed
/// event deltas at batch boundaries (the counter itself is sharded, so
/// concurrent adds stay lock-free).
struct ShardedEngineMetrics {
  Counter& runs = MetricsRegistry::instance().counter(
      "raidsim_engine_sharded_runs_total",
      "Completed sharded-engine simulation runs");
  Counter& events = MetricsRegistry::instance().counter(
      "raidsim_engine_sharded_events_total",
      "Kernel events executed by the sharded engine (all shards)");
  Gauge& sim_ms = MetricsRegistry::instance().gauge(
      "raidsim_engine_sharded_sim_ms_total",
      "Simulated milliseconds advanced by the sharded engine (accumulates)");
};

ShardedEngineMetrics& sharded_metrics() {
  static ShardedEngineMetrics metrics;
  return metrics;
}

}  // namespace

/// One trace record routed to a shard, fully resolved by the coordinator:
/// absolute arrival time (summed in global record order) and array-local
/// addressing, so the shard kernel never touches global routing state.
struct ShardedSimulator::ShardRecord {
  SimTime arrival = 0.0;
  std::int64_t local_block = 0;
  int local_array = 0;  // index into the owning shard's arrays
  int block_count = 1;
  bool is_write = false;
};

struct ShardedSimulator::ArrayState {
  std::unique_ptr<ArrayController> controller;
  int global_index = 0;
  /// Responses accumulated in this array's completion order; merged into
  /// the run totals in global array order, fixing the summation order
  /// regardless of how arrays are packed into shards.
  LatencyRecorder response_all;
  LatencyRecorder response_read;
  LatencyRecorder response_write;
  std::uint64_t requests = 0;
  /// Records routed to this array and not yet completed. Hitting zero is
  /// this array's private quiescence: its background machinery stops.
  std::uint64_t remaining = 0;
};

struct ShardedSimulator::Shard {
  Shard(EventKernel kernel, OpAlloc op_alloc) : eq(kernel, op_alloc) {}

  EventQueue eq;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<TimeSeriesSampler> sampler;
  EventId sampler_event = 0;
  Rng rng;
  std::vector<ArrayState> arrays;
  std::vector<ShardRecord> records;
  std::size_t cursor = 0;       // next record to dispatch
  std::uint64_t outstanding = 0;

  // Progress publication: written by the owning shard thread at its
  // batch boundary (relaxed), read by whichever thread aggregates a
  // snapshot. metered_events tracks what has been fed to the registry.
  std::atomic<std::uint64_t> pub_events{0};
  std::atomic<std::uint64_t> pub_done{0};
  std::atomic<double> pub_clock{0.0};
  std::uint64_t metered_events = 0;
};

ShardedSimulator::ShardedSimulator(const SimulationConfig& config,
                                   const TraceGeometry& geometry,
                                   std::uint64_t seed)
    : config_(config), geometry_(geometry) {
  config_.validate();
  blocks_per_array_ = static_cast<std::int64_t>(config_.array_data_disks) *
                      geometry_.blocks_per_disk;
  total_blocks_ = geometry_.total_blocks();
  const int n = config_.array_data_disks;
  array_count_ = (geometry_.data_disks + n - 1) / n;

  shard_count_ = std::clamp(config_.shards, 1, array_count_);
  if (config_.shard_threads > 0) {
    thread_count_ = std::min(config_.shard_threads, shard_count_);
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    thread_count_ = std::min(shard_count_, hw ? static_cast<int>(hw) : 1);
  }

  Rng root(seed);
  shards_.reserve(static_cast<std::size_t>(shard_count_));
  for (int s = 0; s < shard_count_; ++s) {
    auto shard =
        std::make_unique<Shard>(config_.event_kernel, config_.op_alloc);
    shard->rng = root.split();
    if (kTracingCompiledIn && config_.obs.tracing)
      shard->tracer = std::make_unique<Tracer>(
          Tracer::Config{config_.obs.max_trace_events});
    shards_.push_back(std::move(shard));
  }

  // Round-robin assignment: shard s owns global arrays s, s+S, s+2S, ...
  for (int a = 0; a < array_count_; ++a) {
    Shard& shard = *shards_[static_cast<std::size_t>(a % shard_count_)];
    const int data_disks = std::min(n, geometry_.data_disks - a * n);
    auto array_cfg =
        config_.array_config(data_disks, geometry_.blocks_per_disk);
    array_cfg.tracer = shard.tracer.get();
    array_cfg.array_index = a;
    ArrayState state;
    state.global_index = a;
    if (config_.cached) {
      state.controller = std::make_unique<CachedController>(
          shard.eq, array_cfg, config_.cache_config());
    } else {
      state.controller =
          std::make_unique<UncachedController>(shard.eq, array_cfg);
    }
    shard.arrays.push_back(std::move(state));
  }

  if (config_.obs.sample_interval_ms > 0.0) {
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      shard.sampler = std::make_unique<TimeSeriesSampler>(
          config_.obs.sample_interval_ms, config_.obs.sampler_capacity);
      std::vector<int> topology;
      topology.reserve(shard.arrays.size());
      for (const auto& array : shard.arrays)
        topology.push_back(array.controller->layout().total_disks());
      shard.sampler->set_topology(std::move(topology));
    }
  }
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::set_artifact_prefix(std::string prefix) {
  artifact_prefix_ = std::move(prefix);
}

Rng& ShardedSimulator::shard_rng(int shard) {
  return shards_.at(static_cast<std::size_t>(shard))->rng;
}

std::pair<int, std::int64_t> ShardedSimulator::route(
    std::int64_t db_block) const {
  const std::int64_t array = db_block / blocks_per_array_;
  return {static_cast<int>(array), db_block - array * blocks_per_array_};
}

void ShardedSimulator::load_records(TraceStream& trace) {
  // The coordinator resolves every record sequentially: arrival times are
  // a prefix sum over the GLOBAL record order, so the floating-point
  // arrival of each request is independent of the partition.
  const bool validate = !trace.prevalidated();
  if (const std::uint64_t hint = trace.size_hint()) {
    const std::size_t per_shard = static_cast<std::size_t>(
        hint / static_cast<std::uint64_t>(shard_count_) + 1);
    for (auto& shard : shards_) shard->records.reserve(per_shard);
  }
  double arrival = 0.0;
  while (auto rec = trace.next()) {
    if (validate &&
        (rec->block_count < 1 || rec->block < 0 ||
         rec->block + rec->block_count > total_blocks_))
      throw std::out_of_range("ShardedSimulator: request outside the database");
    arrival += rec->delta_ms;
    const auto [array, local_block] = route(rec->block);
    Shard& shard = *shards_[static_cast<std::size_t>(array % shard_count_)];
    ShardRecord out;
    out.arrival = arrival;
    out.local_block = local_block;
    out.local_array = array / shard_count_;
    out.block_count = rec->block_count;
    out.is_write = rec->is_write;
    shard.records.push_back(out);
    ++shard.arrays[static_cast<std::size_t>(out.local_array)].remaining;
    ++total_records_;
  }
}

void ShardedSimulator::pump(Shard& shard) {
  if (shard.cursor >= shard.records.size()) return;
  const SimTime when = shard.records[shard.cursor].arrival;
  shard.eq.schedule_at(when, [this, &shard] {
    const ShardRecord& record = shard.records[shard.cursor++];
    dispatch(shard, record);
    pump(shard);
  });
}

void ShardedSimulator::dispatch(Shard& shard, const ShardRecord& record) {
  ArrayState& array =
      shard.arrays[static_cast<std::size_t>(record.local_array)];
  ArrayRequest request;
  request.logical_block = record.local_block;
  request.block_count = record.block_count;
  request.is_write = record.is_write;

  const SimTime arrival = shard.eq.now();
  const ObsPhase host_phase =
      record.is_write ? ObsPhase::kHostWrite : ObsPhase::kHostRead;
  request.obs_id = obs_begin(shard.tracer.get(), host_phase,
                             array.global_index, -1, arrival);
  ++shard.outstanding;
  array.controller->submit(
      request, [this, &shard, &array, arrival, is_write = record.is_write,
                host_phase, obs_id = request.obs_id](SimTime t) {
        obs_end(shard.tracer.get(), obs_id, host_phase, array.global_index,
                -1, t);
        const double response = t - arrival;
        array.response_all.add(response);
        (is_write ? array.response_write : array.response_read).add(response);
        ++array.requests;
        --shard.outstanding;
        assert(array.remaining > 0);
        if (--array.remaining == 0) array.controller->shutdown();
        if (shard.outstanding == 0 && shard.cursor >= shard.records.size() &&
            shard.sampler_event != 0) {
          shard.eq.cancel(shard.sampler_event);
          shard.sampler_event = 0;
        }
      });
}

void ShardedSimulator::schedule_sample_tick(Shard& shard) {
  // Periodic telemetry, per shard (its disks and caches only); mirrors
  // Simulator::schedule_sample_tick.
  shard.sampler_event =
      shard.eq.schedule_in(shard.sampler->interval_ms(), [this, &shard] {
        shard.sampler_event = 0;
        take_sample(shard);
        schedule_sample_tick(shard);
      });
}

void ShardedSimulator::take_sample(Shard& shard) {
  TelemetrySample sample;
  sample.t = shard.eq.now();
  sample.outstanding = shard.outstanding;
  sample.events_executed = shard.eq.executed();
  std::size_t disks = 0;
  for (const auto& array : shard.arrays)
    disks += array.controller->disks().size();
  sample.queue_depth.reserve(disks);
  sample.busy_ms.reserve(disks);
  sample.cache_blocks.reserve(shard.arrays.size());
  sample.cache_dirty.reserve(shard.arrays.size());
  for (const auto& array : shard.arrays) {
    for (const auto& disk : array.controller->disks()) {
      sample.queue_depth.push_back(
          static_cast<std::uint32_t>(disk->queue_length()));
      sample.busy_ms.push_back(disk->stats().busy_ms);
    }
    const NvCache* cache = array.controller->nv_cache();
    sample.cache_blocks.push_back(cache ? cache->size() : 0);
    sample.cache_dirty.push_back(cache ? cache->dirty_count() : 0);
  }
  shard.sampler->record(std::move(sample));
}

void ShardedSimulator::run_shard(Shard& shard) {
  // Debug-mode ownership window for the shard's op arena: between bind
  // and release, only this worker thread may touch the shard's op state
  // (construction before and teardown after the run happen on the main
  // thread, after a join, and pass the check while unbound). The guard
  // releases on the CancelledError unwind path too.
  struct OwnerGuard {
    OpArena& arena;
    explicit OwnerGuard(OpArena& a) : arena(a) { arena.bind_owner(); }
    ~OwnerGuard() { arena.release_owner(); }
  } owner_guard(shard.eq.op_arena());
  if (shard.sampler) schedule_sample_tick(shard);
  pump(shard);
  // Zero-record shard (or all of its arrays idle): nothing will ever
  // cancel the sampler from a completion callback.
  if (shard.records.empty() && shard.sampler_event != 0) {
    shard.eq.cancel(shard.sampler_event);
    shard.sampler_event = 0;
  }
  const bool hooked = static_cast<bool>(progress_);
  if (cancel_ == nullptr && !hooked) {
    while (shard.eq.step()) {
    }
  } else {
    for (;;) {
      if (cancel_ != nullptr && cancel_->cancelled())
        throw CancelledError(cancel_->reason());
      const std::size_t ran = shard.eq.run(Simulator::kCancelCheckBatch);
      // Publish this shard's position and feed the live registry the
      // event delta; the aggregate snapshot is emitted by whichever
      // shard crosses a boundary while the emit lock is free.
      const std::uint64_t events = shard.eq.executed();
      sharded_metrics().events.add(events - shard.metered_events);
      shard.metered_events = events;
      shard.pub_events.store(events, std::memory_order_relaxed);
      shard.pub_done.store(
          static_cast<std::uint64_t>(shard.cursor) - shard.outstanding,
          std::memory_order_relaxed);
      shard.pub_clock.store(shard.eq.now(), std::memory_order_relaxed);
      if (hooked) maybe_emit_progress(false);
      if (ran < Simulator::kCancelCheckBatch) break;
    }
  }
  assert(shard.outstanding == 0);
}

void ShardedSimulator::maybe_emit_progress(bool final_frame) {
  if (!progress_) return;
  // try_lock keeps shard kernels from queueing behind a slow hook; the
  // final frame must not be dropped, so it takes the lock for real (no
  // shard worker is running by then).
  if (final_frame) {
    progress_mu_.lock();
  } else if (!progress_mu_.try_lock()) {
    return;
  }
  ProgressSnapshot snap;
  snap.total = total_records_;
  snap.final_frame = final_frame;
  // Monotone across emissions: the emit lock orders them, and per-shard
  // published values only grow.
  for (const auto& shard : shards_) {
    snap.events += shard->pub_events.load(std::memory_order_relaxed);
    snap.done += shard->pub_done.load(std::memory_order_relaxed);
    snap.sim_ms = std::max(snap.sim_ms,
                           shard->pub_clock.load(std::memory_order_relaxed));
  }
  progress_(snap);
  progress_mu_.unlock();
}

void ShardedSimulator::dump_flight(const std::string& prefix) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    if (!shard.tracer) continue;
    try {
      export_run_artifacts(prefix + "_shard" + std::to_string(s),
                           *shard.tracer, nullptr);
    } catch (...) {
      // Best effort: a failed dump must not mask the original error.
    }
  }
}

Metrics ShardedSimulator::run(TraceStream& trace) {
  if (ran_)
    throw std::logic_error("ShardedSimulator: run() may only be called once");
  ran_ = true;
  if (trace.geometry().data_disks != geometry_.data_disks ||
      trace.geometry().blocks_per_disk != geometry_.blocks_per_disk)
    throw std::invalid_argument("ShardedSimulator: trace geometry mismatch");

  load_records(trace);

  // Warm each shard's kernel before the drive loop: slot table sized to
  // the steady-state event population (a few in-flight events per disk),
  // so the hot path never reallocates mid-run.
  for (auto& shard : shards_) {
    std::size_t disks = 0;
    for (const auto& array : shard->arrays)
      disks += array.controller->disks().size();
    shard->eq.reserve(8 * disks + 64);
  }

  // Arrays the trace never touches quiesce immediately: their destage
  // timers would otherwise tick forever (the per-array discipline has no
  // global drain to stop them).
  for (auto& shard : shards_)
    for (auto& array : shard->arrays)
      if (array.remaining == 0) array.controller->shutdown();

  std::vector<std::exception_ptr> errors(shards_.size());
  std::mutex queue_mutex;
  std::size_t next = 0;
  auto worker = [&] {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        if (next >= shards_.size()) return;
        index = next++;
      }
      try {
        run_shard(*shards_[index]);
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };

  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(thread_count_), shards_.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  // First failure by shard order, the SweepRunner discipline.
  for (auto& error : errors)
    if (error) std::rethrow_exception(error);

  if (progress_) {
    // Terminal snapshot: every shard has stopped, so publish exact
    // finals and emit the one guaranteed frame.
    for (auto& shard : shards_) {
      shard->pub_events.store(shard->eq.executed(),
                              std::memory_order_relaxed);
      shard->pub_done.store(
          static_cast<std::uint64_t>(shard->cursor) - shard->outstanding,
          std::memory_order_relaxed);
      shard->pub_clock.store(shard->eq.now(), std::memory_order_relaxed);
    }
    maybe_emit_progress(true);
  }

  if (!artifact_prefix_.empty()) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Shard& shard = *shards_[s];
      if (!shard.tracer) continue;
      export_run_artifacts(artifact_prefix_ + "_shard" + std::to_string(s),
                           *shard.tracer, shard.sampler.get());
    }
  }
  return merge();
}

Metrics ShardedSimulator::merge() {
  Metrics metrics;
  metrics.arrays = array_count_;
  for (const auto& shard : shards_) {
    metrics.elapsed_ms = std::max(metrics.elapsed_ms, shard->eq.now());
    metrics.events_executed += shard->eq.executed();
    sharded_metrics().events.add(shard->eq.executed() -
                                 shard->metered_events);
    shard->metered_events = shard->eq.executed();
    for (const auto& array : shard->arrays)
      metrics.total_disks +=
          static_cast<int>(array.controller->disks().size());
  }
  metrics.disk_accesses.reserve(static_cast<std::size_t>(metrics.total_disks));
  metrics.disk_utilization.reserve(
      static_cast<std::size_t>(metrics.total_disks));
  metrics.channel_utilization_per_array.reserve(
      static_cast<std::size_t>(array_count_));

  // Global array order: every accumulation below runs in the same
  // sequence as the classic engine's finalize loop, whatever the
  // partition, so merged floating-point sums are partition-invariant.
  double channel_util = 0.0;
  for (int a = 0; a < array_count_; ++a) {
    const Shard& shard = *shards_[static_cast<std::size_t>(a % shard_count_)];
    const ArrayState& array =
        shard.arrays[static_cast<std::size_t>(a / shard_count_)];
    assert(array.global_index == a);
    metrics.response_all.merge(array.response_all);
    metrics.response_read.merge(array.response_read);
    metrics.response_write.merge(array.response_write);
    metrics.response_per_array.push_back(array.response_all);
    metrics.requests += array.requests;
    accumulate(metrics.controller, array.controller->stats());
    for (const auto& disk : array.controller->disks()) {
      const auto& stats = disk->stats();
      accumulate(metrics.disk_totals, stats);
      metrics.disk_accesses.push_back(stats.ops());
      metrics.disk_utilization.push_back(
          stats.utilization(metrics.elapsed_ms));
      metrics.disk_op_latency.push_back(disk->op_latency());
    }
    const double util =
        array.controller->channel().utilization(metrics.elapsed_ms);
    metrics.channel_utilization_per_array.push_back(util);
    channel_util += util;
    if (const auto* cache_stats = array.controller->cache_stats())
      accumulate(metrics.cache, *cache_stats);
  }
  metrics.channel_utilization =
      channel_util / static_cast<double>(array_count_);
  sharded_metrics().runs.add(1);
  sharded_metrics().sim_ms.add(metrics.elapsed_ms);
  return metrics;
}

Metrics run_sharded_simulation(const SimulationConfig& config,
                               TraceStream& trace, std::uint64_t seed,
                               const std::string& artifact_prefix,
                               const CancelToken* cancel) {
  ShardedSimulator simulator(config, trace.geometry(), seed);
  if (!artifact_prefix.empty()) simulator.set_artifact_prefix(artifact_prefix);
  if (cancel) simulator.set_cancel_token(cancel);
  return simulator.run(trace);
}

}  // namespace raidsim
