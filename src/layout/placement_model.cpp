#include "layout/placement_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace raidsim {

namespace {
void check(double write_fraction, int n) {
  if (write_fraction < 0.0 || write_fraction > 1.0)
    throw std::invalid_argument("placement model: write fraction not in [0,1]");
  if (n < 1) throw std::invalid_argument("placement model: N < 1");
}
}  // namespace

double data_area_access_share(int array_data_disks) {
  check(0.0, array_data_disks);
  const double n = static_cast<double>(array_data_disks);
  return 1.0 / (n * n);
}

double parity_area_access_share(double write_fraction, int array_data_disks) {
  check(write_fraction, array_data_disks);
  return write_fraction / static_cast<double>(array_data_disks);
}

bool parity_hotter_than_data(double write_fraction, int array_data_disks) {
  return parity_area_access_share(write_fraction, array_data_disks) >
         data_area_access_share(array_data_disks);
}

ParityPlacement recommended_parity_placement(double write_fraction,
                                             int array_data_disks) {
  return parity_hotter_than_data(write_fraction, array_data_disks)
             ? ParityPlacement::kMiddleCylinders
             : ParityPlacement::kEndCylinders;
}

int placement_crossover_array_size(double write_fraction) {
  check(write_fraction, 1);
  if (write_fraction <= 0.0) return std::numeric_limits<int>::max();
  // w > 1/N  <=>  N > 1/w: the smallest integer strictly above 1/w.
  return static_cast<int>(std::floor(1.0 / write_fraction)) + 1;
}

}  // namespace raidsim
