#include "layout/layout.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace raidsim {

std::string to_string(Organization org) {
  switch (org) {
    case Organization::kBase: return "Base";
    case Organization::kMirror: return "Mirror";
    case Organization::kRaid5: return "RAID5";
    case Organization::kRaid4: return "RAID4";
    case Organization::kParityStriping: return "ParStrip";
    case Organization::kRaid10: return "RAID10";
  }
  return "?";
}

std::string to_string(ParityPlacement placement) {
  switch (placement) {
    case ParityPlacement::kMiddleCylinders: return "middle";
    case ParityPlacement::kEndCylinders: return "end";
  }
  return "?";
}

Layout::Layout(int data_disks, std::int64_t data_blocks_per_disk,
               std::int64_t physical_blocks_per_disk)
    : data_disks_(data_disks),
      data_blocks_per_disk_(data_blocks_per_disk),
      physical_blocks_per_disk_(physical_blocks_per_disk),
      logical_capacity_(static_cast<std::int64_t>(data_disks) *
                        data_blocks_per_disk) {
  if (data_disks < 1) throw std::invalid_argument("Layout: data_disks < 1");
  if (data_blocks_per_disk < 1 || physical_blocks_per_disk < 1)
    throw std::invalid_argument("Layout: non-positive block counts");
}

void Layout::check_extent(std::int64_t logical_start, int count) const {
  if (logical_start < 0 || count < 1 ||
      logical_start + count > logical_capacity_)
    throw std::out_of_range("Layout: logical extent out of range");
}

namespace {

/// Append `ext` to `out`, merging with the previous extent when the two
/// are physically contiguous on the same disk.
void append_extent(ExtentList& out, PhysicalExtent ext) {
  if (!out.empty()) {
    auto& prev = out.back();
    if (prev.disk == ext.disk &&
        prev.start_block + prev.block_count == ext.start_block &&
        prev.logical_start >= 0 &&
        prev.logical_start + prev.block_count == ext.logical_start) {
      prev.block_count += ext.block_count;
      return;
    }
  }
  out.push_back(ext);
}

}  // namespace

// ---------------------------------------------------------------- Base

BaseLayout::BaseLayout(int data_disks, std::int64_t data_blocks_per_disk,
                       std::int64_t physical_blocks_per_disk)
    : Layout(data_disks, data_blocks_per_disk, physical_blocks_per_disk) {
  if (data_blocks_per_disk > physical_blocks_per_disk)
    throw std::invalid_argument("BaseLayout: database exceeds disk capacity");
}

ExtentList BaseLayout::map_read(std::int64_t logical_start,
                                                 int count) const {
  check_extent(logical_start, count);
  ExtentList out;
  std::int64_t pos = logical_start;
  int remaining = count;
  while (remaining > 0) {
    const auto disk = static_cast<int>(pos / data_blocks_per_disk_);
    const std::int64_t offset = pos % data_blocks_per_disk_;
    const int take = static_cast<int>(
        std::min<std::int64_t>(remaining, data_blocks_per_disk_ - offset));
    append_extent(out, PhysicalExtent{disk, offset, take, pos});
    pos += take;
    remaining -= take;
  }
  return out;
}

std::vector<StripeUpdate> BaseLayout::map_write(std::int64_t logical_start,
                                                int count) const {
  std::vector<StripeUpdate> out;
  for (const auto& ext : map_read(logical_start, count)) {
    StripeUpdate update;
    update.writes.push_back(ext);
    update.reconstruct = true;
    update.full_stripe = true;  // plain write, no reads
    out.push_back(std::move(update));
  }
  return out;
}

// -------------------------------------------------------------- Mirror

MirrorLayout::MirrorLayout(int data_disks, std::int64_t data_blocks_per_disk,
                           std::int64_t physical_blocks_per_disk)
    : Layout(data_disks, data_blocks_per_disk, physical_blocks_per_disk) {
  if (data_blocks_per_disk > physical_blocks_per_disk)
    throw std::invalid_argument("MirrorLayout: database exceeds disk capacity");
}

ExtentList MirrorLayout::map_read(std::int64_t logical_start,
                                                   int count) const {
  check_extent(logical_start, count);
  ExtentList out;
  std::int64_t pos = logical_start;
  int remaining = count;
  while (remaining > 0) {
    const auto ldisk = static_cast<int>(pos / data_blocks_per_disk_);
    const std::int64_t offset = pos % data_blocks_per_disk_;
    const int take = static_cast<int>(
        std::min<std::int64_t>(remaining, data_blocks_per_disk_ - offset));
    append_extent(out, PhysicalExtent{2 * ldisk, offset, take, pos});
    pos += take;
    remaining -= take;
  }
  return out;
}

std::vector<StripeUpdate> MirrorLayout::map_write(std::int64_t logical_start,
                                                  int count) const {
  std::vector<StripeUpdate> out;
  for (const auto& ext : map_read(logical_start, count)) {
    StripeUpdate update;
    update.writes.push_back(ext);
    update.writes.push_back(PhysicalExtent{mirror_of(ext.disk),
                                           ext.start_block, ext.block_count,
                                           ext.logical_start});
    update.reconstruct = true;
    update.full_stripe = true;
    out.push_back(std::move(update));
  }
  return out;
}

std::vector<Layout::DegradedGroup> MirrorLayout::degraded_group(
    const PhysicalExtent& extent) const {
  DegradedGroup group;
  group.member_reads.push_back(PhysicalExtent{mirror_of(extent.disk),
                                              extent.start_block,
                                              extent.block_count,
                                              extent.logical_start});
  return {group};
}

// -------------------------------------------------------------- RAID10

Raid10Layout::Raid10Layout(int data_disks, std::int64_t data_blocks_per_disk,
                           std::int64_t physical_blocks_per_disk,
                           int striping_unit_blocks)
    : MirrorLayout(data_disks, data_blocks_per_disk,
                   physical_blocks_per_disk),
      unit_(striping_unit_blocks) {
  if (unit_ < 1) throw std::invalid_argument("Raid10Layout: unit < 1");
  const std::int64_t rows =
      (data_blocks_per_disk_ + unit_ - 1) / unit_;
  if (rows * unit_ > physical_blocks_per_disk_)
    throw std::invalid_argument(
        "Raid10Layout: database exceeds disk capacity");
}

ExtentList Raid10Layout::map_read(std::int64_t logical_start,
                                                   int count) const {
  check_extent(logical_start, count);
  ExtentList out;
  std::int64_t pos = logical_start;
  int remaining = count;
  while (remaining > 0) {
    const std::int64_t chunk = pos / unit_;
    const int offset = static_cast<int>(pos % unit_);
    const int take = std::min(remaining, unit_ - offset);
    const auto pair = static_cast<int>(chunk % data_disks_);
    const std::int64_t row = chunk / data_disks_;
    append_extent(out, PhysicalExtent{2 * pair, row * unit_ + offset, take,
                                      pos});
    pos += take;
    remaining -= take;
  }
  return out;
}

std::vector<StripeUpdate> Raid10Layout::map_write(std::int64_t logical_start,
                                                  int count) const {
  std::vector<StripeUpdate> out;
  for (const auto& ext : map_read(logical_start, count)) {
    StripeUpdate update;
    update.writes.push_back(ext);
    update.writes.push_back(PhysicalExtent{mirror_of(ext.disk),
                                           ext.start_block, ext.block_count,
                                           ext.logical_start});
    update.reconstruct = true;
    update.full_stripe = true;
    out.push_back(std::move(update));
  }
  return out;
}

// ------------------------------------------------- RAID4 / RAID5 (striped)

StripedParityLayout::StripedParityLayout(Organization org, int data_disks,
                                         std::int64_t data_blocks_per_disk,
                                         std::int64_t physical_blocks_per_disk,
                                         int striping_unit_blocks)
    : Layout(data_disks, data_blocks_per_disk, physical_blocks_per_disk),
      org_(org),
      unit_(striping_unit_blocks) {
  if (org != Organization::kRaid4 && org != Organization::kRaid5)
    throw std::invalid_argument("StripedParityLayout: bad organization");
  if (unit_ < 1) throw std::invalid_argument("StripedParityLayout: unit < 1");
  rows_ = (data_blocks_per_disk_ + unit_ - 1) / unit_;
  if (rows_ * unit_ > physical_blocks_per_disk_)
    throw std::invalid_argument(
        "StripedParityLayout: database exceeds disk capacity");
}

int StripedParityLayout::parity_disk(std::int64_t row) const {
  if (org_ == Organization::kRaid4) return data_disks_;
  return data_disks_ - static_cast<int>(row % (data_disks_ + 1));
}

int StripedParityLayout::data_disk(std::int64_t row, int column) const {
  const int p = parity_disk(row);
  return column < p ? column : column + 1;
}

InlineVec<StripedParityLayout::Chunk, 8> StripedParityLayout::chunks(
    std::int64_t logical_start, int count) const {
  InlineVec<Chunk, 8> out;
  std::int64_t pos = logical_start;
  int remaining = count;
  while (remaining > 0) {
    const std::int64_t chunk_index = pos / unit_;
    const int offset = static_cast<int>(pos % unit_);
    const int take = std::min(remaining, unit_ - offset);
    out.push_back(Chunk{chunk_index / data_disks_,
                        static_cast<int>(chunk_index % data_disks_), offset,
                        take, pos});
    pos += take;
    remaining -= take;
  }
  return out;
}

ExtentList StripedParityLayout::map_read(
    std::int64_t logical_start, int count) const {
  check_extent(logical_start, count);
  ExtentList out;
  for (const auto& ch : chunks(logical_start, count)) {
    append_extent(out, PhysicalExtent{data_disk(ch.row, ch.column),
                                      ch.row * unit_ + ch.offset, ch.count,
                                      ch.logical_start});
  }
  return out;
}

std::vector<StripeUpdate> StripedParityLayout::map_write(
    std::int64_t logical_start, int count) const {
  check_extent(logical_start, count);
  const auto all = chunks(logical_start, count);
  std::vector<StripeUpdate> out;

  std::size_t i = 0;
  while (i < all.size()) {
    // Collect the chunks belonging to one stripe row.
    std::size_t j = i;
    while (j < all.size() && all[j].row == all[i].row) ++j;
    const std::int64_t row = all[i].row;

    StripeUpdate update;
    int modified_blocks = 0;
    int lo = unit_;
    int hi = 0;
    for (std::size_t k = i; k < j; ++k) {
      const auto& ch = all[k];
      modified_blocks += ch.count;
      lo = std::min(lo, ch.offset);
      hi = std::max(hi, ch.offset + ch.count);
      update.writes.push_back(PhysicalExtent{data_disk(row, ch.column),
                                             row * unit_ + ch.offset, ch.count,
                                             ch.logical_start});
    }
    // The chunks of one row cover consecutive columns (the logical
    // extent is contiguous, so chunk indices -- and hence columns --
    // increase by one within the row): touched columns form the range
    // [first_col, first_col + chunk count).
    const int first_col = all[i].column;
    const int last_col = all[j - 1].column;

    const int row_width = data_disks_ * unit_;
    update.full_stripe = (modified_blocks == row_width);
    // Paper, Section 3.3: read old data and parity when updating less
    // than half a stripe; otherwise reconstruct the parity from the
    // blocks not being written.
    update.reconstruct = update.full_stripe || 2 * modified_blocks >= row_width;

    update.parity = PhysicalExtent{parity_disk(row), row * unit_ + lo, hi - lo};

    if (update.reconstruct && !update.full_stripe) {
      // Read the touched offset span from every untouched column.
      // (Partially-touched columns are treated as fully modified; multi-
      // block writes are <2% of OLTP requests, so the approximation has
      // negligible effect on timing.)
      for (int col = 0; col < data_disks_; ++col) {
        if (col >= first_col && col <= last_col) continue;
        update.reconstruct_reads.push_back(PhysicalExtent{
            data_disk(row, col), row * unit_ + lo, hi - lo});
      }
    }
    out.push_back(std::move(update));
    i = j;
  }
  return out;
}

std::vector<Layout::DegradedGroup> StripedParityLayout::degraded_group(
    const PhysicalExtent& extent) const {
  // Split the extent at stripe-row boundaries; each row contributes the
  // other N-1 data chunks plus the parity chunk at the same offsets.
  std::vector<DegradedGroup> out;
  std::int64_t pbn = extent.start_block;
  int remaining = extent.block_count;
  while (remaining > 0) {
    const std::int64_t row = pbn / unit_;
    const int offset = static_cast<int>(pbn % unit_);
    const int take = std::min(remaining, unit_ - offset);
    DegradedGroup group;
    const int p = parity_disk(row);
    for (int col = 0; col < data_disks_; ++col) {
      const int disk = data_disk(row, col);
      if (disk == extent.disk) continue;
      group.member_reads.push_back(
          PhysicalExtent{disk, row * unit_ + offset, take});
    }
    if (extent.disk != p)
      group.parity = PhysicalExtent{p, row * unit_ + offset, take};
    out.push_back(std::move(group));
    pbn += take;
    remaining -= take;
  }
  return out;
}

// ------------------------------------------------------ Parity Striping

ParityStripingLayout::ParityStripingLayout(
    int data_disks, std::int64_t data_blocks_per_disk,
    std::int64_t physical_blocks_per_disk, ParityPlacement placement,
    int fine_grain_chunk_blocks)
    : Layout(data_disks, data_blocks_per_disk, physical_blocks_per_disk),
      placement_(placement),
      fine_chunk_(fine_grain_chunk_blocks) {
  if (fine_chunk_ < 0)
    throw std::invalid_argument("ParityStripingLayout: negative chunk");
  const int areas = data_disks_ + 1;
  area_ = (data_blocks_per_disk_ + areas - 1) / areas;  // ceil
  if (area_ * areas > physical_blocks_per_disk_)
    throw std::invalid_argument(
        "ParityStripingLayout: database exceeds disk capacity");
  parity_slot_ = placement == ParityPlacement::kMiddleCylinders
                     ? areas / 2
                     : areas - 1;
}

int ParityStripingLayout::physical_slot(int area_index) const {
  assert(area_index >= 0 && area_index < data_disks_);
  return area_index < parity_slot_ ? area_index : area_index + 1;
}

int ParityStripingLayout::group_of(int disk, int area_index) const {
  assert(disk >= 0 && disk <= data_disks_);
  assert(area_index >= 0 && area_index < data_disks_);
  return area_index < disk ? area_index : area_index + 1;
}

int ParityStripingLayout::group_of_at(int disk, int area_index,
                                      std::int64_t offset) const {
  if (fine_chunk_ == 0) return group_of(disk, area_index);
  // For chunk c, disk i hosts the parity of group (i - c) mod (N+1); its
  // N data areas enumerate the remaining groups.
  const int m = data_disks_ + 1;
  const auto chunk = offset / fine_chunk_;
  const int hosting =
      static_cast<int>(((disk - chunk) % m + m) % m);
  return area_index < hosting ? area_index : area_index + 1;
}

int ParityStripingLayout::parity_disk_of_group_at(int group,
                                                  std::int64_t offset) const {
  if (fine_chunk_ == 0) return group;
  const int m = data_disks_ + 1;
  const auto chunk = offset / fine_chunk_;
  return static_cast<int>(((group + chunk) % m + m) % m);
}

InlineVec<ParityStripingLayout::Piece, 8> ParityStripingLayout::pieces(
    std::int64_t logical_start, int count) const {
  InlineVec<Piece, 8> out;
  const std::int64_t per_disk = static_cast<std::int64_t>(data_disks_) * area_;
  std::int64_t pos = logical_start;
  int remaining = count;
  while (remaining > 0) {
    const auto disk = static_cast<int>(pos / per_disk);
    const std::int64_t within = pos % per_disk;
    const auto area_index = static_cast<int>(within / area_);
    const std::int64_t offset = within % area_;
    std::int64_t room = area_ - offset;
    if (fine_chunk_ > 0) {
      // Keep each piece within one parity-rotation chunk.
      room = std::min<std::int64_t>(room,
                                    fine_chunk_ - offset % fine_chunk_);
    }
    const int take =
        static_cast<int>(std::min<std::int64_t>(remaining, room));
    out.push_back(Piece{disk, area_index, offset, take, pos});
    pos += take;
    remaining -= take;
  }
  return out;
}

ExtentList ParityStripingLayout::map_read(
    std::int64_t logical_start, int count) const {
  check_extent(logical_start, count);
  ExtentList out;
  for (const auto& piece : pieces(logical_start, count)) {
    append_extent(
        out, PhysicalExtent{
                 piece.disk,
                 static_cast<std::int64_t>(physical_slot(piece.area_index)) *
                         area_ +
                     piece.offset,
                 piece.count, piece.logical_start});
  }
  return out;
}

std::vector<StripeUpdate> ParityStripingLayout::map_write(
    std::int64_t logical_start, int count) const {
  check_extent(logical_start, count);
  std::vector<StripeUpdate> out;
  for (const auto& piece : pieces(logical_start, count)) {
    StripeUpdate update;
    update.writes.push_back(PhysicalExtent{
        piece.disk,
        static_cast<std::int64_t>(physical_slot(piece.area_index)) * area_ +
            piece.offset,
        piece.count, piece.logical_start});
    const int group =
        group_of_at(piece.disk, piece.area_index, piece.offset);
    const int parity_disk = parity_disk_of_group_at(group, piece.offset);
    update.parity = PhysicalExtent{
        parity_disk,
        static_cast<std::int64_t>(parity_slot_) * area_ + piece.offset,
        piece.count};
    update.reconstruct = false;  // always small relative to the group width
    update.full_stripe = false;
    out.push_back(std::move(update));
  }
  return out;
}

std::vector<Layout::DegradedGroup> ParityStripingLayout::degraded_group(
    const PhysicalExtent& extent) const {
  // Recover (area index, offset) from the physical position, split at
  // fine-grain chunk boundaries when rotation is enabled, and emit the
  // other group members plus the group parity.
  std::vector<DegradedGroup> out;
  std::int64_t pbn = extent.start_block;
  int remaining = extent.block_count;
  while (remaining > 0) {
    const auto slot = static_cast<int>(pbn / area_);
    const std::int64_t offset = pbn % area_;
    std::int64_t room = area_ - offset;
    if (fine_chunk_ > 0)
      room = std::min<std::int64_t>(room,
                                    fine_chunk_ - offset % fine_chunk_);
    const int take =
        static_cast<int>(std::min<std::int64_t>(remaining, room));

    DegradedGroup group;
    const bool extent_is_parity = (slot == parity_slot_);
    int g;
    if (extent_is_parity) {
      // Rebuilding a lost parity area: recompute it from all N data
      // members of the group whose parity this disk hosts here.
      if (fine_chunk_ == 0) {
        g = extent.disk;
      } else {
        const int m = data_disks_ + 1;
        const auto chunk = offset / fine_chunk_;
        g = static_cast<int>(((extent.disk - chunk) % m + m) % m);
      }
    } else {
      const int area_index = slot < parity_slot_ ? slot : slot - 1;
      g = group_of_at(extent.disk, area_index, offset);
    }
    const int parity_host = parity_disk_of_group_at(g, offset);
    for (int disk = 0; disk <= data_disks_; ++disk) {
      if (disk == extent.disk || disk == parity_host) continue;
      // Member data area of group g on `disk` at this offset chunk.
      int k = -1;
      for (int candidate = 0; candidate < data_disks_; ++candidate) {
        if (group_of_at(disk, candidate, offset) == g) {
          k = candidate;
          break;
        }
      }
      if (k < 0) continue;  // disk holds no data of this group here
      group.member_reads.push_back(PhysicalExtent{
          disk,
          static_cast<std::int64_t>(physical_slot(k)) * area_ + offset,
          take});
    }
    if (!extent_is_parity)
      group.parity = PhysicalExtent{
          parity_host,
          static_cast<std::int64_t>(parity_slot_) * area_ + offset, take};
    out.push_back(std::move(group));
    pbn += take;
    remaining -= take;
  }
  return out;
}

// -------------------------------------------------------------- factory

std::unique_ptr<Layout> make_layout(const LayoutConfig& config) {
  switch (config.organization) {
    case Organization::kBase:
      return std::make_unique<BaseLayout>(config.data_disks,
                                          config.data_blocks_per_disk,
                                          config.physical_blocks_per_disk);
    case Organization::kMirror:
      return std::make_unique<MirrorLayout>(config.data_disks,
                                            config.data_blocks_per_disk,
                                            config.physical_blocks_per_disk);
    case Organization::kRaid4:
    case Organization::kRaid5:
      return std::make_unique<StripedParityLayout>(
          config.organization, config.data_disks, config.data_blocks_per_disk,
          config.physical_blocks_per_disk, config.striping_unit_blocks);
    case Organization::kParityStriping:
      return std::make_unique<ParityStripingLayout>(
          config.data_disks, config.data_blocks_per_disk,
          config.physical_blocks_per_disk, config.parity_placement,
          config.parity_fine_grain_chunk_blocks);
    case Organization::kRaid10:
      return std::make_unique<Raid10Layout>(
          config.data_disks, config.data_blocks_per_disk,
          config.physical_blocks_per_disk, config.striping_unit_blocks);
  }
  throw std::invalid_argument("make_layout: unknown organization");
}

}  // namespace raidsim
