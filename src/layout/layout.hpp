#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/inline_vec.hpp"

namespace raidsim {

/// Disk array organizations studied in the paper (Table 3).
enum class Organization {
  kBase,            // independent disks, no striping, no redundancy
  kMirror,          // mirrored pairs, shortest-seek read optimisation
  kRaid5,           // block-striped data, rotated parity
  kRaid4,           // block-striped data, dedicated parity disk
  kParityStriping,  // sequential data, striped parity areas (Gray et al.)
  kRaid10,          // extension: data striped over mirrored pairs
};

std::string to_string(Organization org);

/// Placement of the parity areas within each disk for Parity Striping
/// (Section 4.2.3).
enum class ParityPlacement {
  kMiddleCylinders,
  kEndCylinders,
};

std::string to_string(ParityPlacement placement);

/// A contiguous physical extent on one disk of the array.
struct PhysicalExtent {
  int disk = -1;                 // disk index within the array
  std::int64_t start_block = 0;  // physical block number on that disk
  int block_count = 0;
  /// First array-local logical block this extent maps (-1 for extents
  /// without a logical identity, e.g. parity or reconstruct reads).
  std::int64_t logical_start = -1;

  bool valid() const { return disk >= 0 && block_count > 0; }
};

/// Result type of Layout::map_read. Inline capacity 4 covers every
/// mapping the paper's workloads produce (a request splits at most once
/// per striping-unit/disk boundary crossed); larger sweeps (rebuild
/// worklists, audits) spill to the heap transparently.
using ExtentList = InlineVec<PhysicalExtent, 4>;

/// Disk accesses required to apply a write to one parity group (stripe
/// row for RAID4/5, parity-area group for Parity Striping). For Base and
/// Mirror there is no parity; `parity.disk` is -1 and the writes are
/// plain.
struct StripeUpdate {
  PhysicalExtent parity;           // invalid if no parity
  ExtentList writes;               // data extents to write
  ExtentList reconstruct_reads;    // unmodified data to read
  /// true: plain data writes; parity (if any) computed from new data plus
  /// `reconstruct_reads` and written without reading the old parity.
  /// false: read-modify-write on data extents and on the parity extent.
  bool reconstruct = false;
  /// Full-stripe write: reconstruct with no reads at all.
  bool full_stripe = false;
};

/// Abstract address map of one array. Logical blocks [0, logical_capacity)
/// hold the database slice assigned to this array; the map translates
/// logical extents into per-disk physical extents and, for writes, into
/// the parity-group update plans the controller must execute.
class Layout {
 public:
  virtual ~Layout() = default;

  virtual Organization organization() const = 0;

  /// Number of data-disk equivalents (N in the paper).
  int data_disks() const { return data_disks_; }

  /// Physical disks present in the array (N, 2N, or N+1).
  virtual int total_disks() const = 0;

  /// Logical blocks addressable in this array (N * data blocks/disk).
  std::int64_t logical_capacity() const { return logical_capacity_; }

  /// Physical blocks actually occupied on each disk (data + parity);
  /// the span a rebuild must reconstruct.
  virtual std::int64_t physical_blocks_used() const {
    return data_blocks_per_disk_;
  }

  /// Translate a logical extent into physical extents, in logical order.
  /// Extents are split at disk/stripe/area boundaries and merged when
  /// physically contiguous on the same disk.
  virtual ExtentList map_read(std::int64_t logical_start,
                              int count) const = 0;

  /// Plan the disk accesses for a write to a logical extent.
  virtual std::vector<StripeUpdate> map_write(std::int64_t logical_start,
                                              int count) const = 0;

  /// Mirror twin of a disk, or -1 when the organization has no mirrors.
  virtual int mirror_of(int /*disk*/) const { return -1; }

  /// Degraded-mode support: the parity group surrounding a data extent.
  /// `member_reads` are the extents of every OTHER data member of the
  /// group(s) covering the extent's offsets (never on extent.disk);
  /// `parity` is the matching parity extent (invalid when the
  /// organization has none). Used to reconstruct data on a failed disk:
  /// a degraded read reads `member_reads` plus `parity`; a degraded
  /// write reads `member_reads` and rewrites `parity`.
  struct DegradedGroup {
    std::vector<PhysicalExtent> member_reads;
    PhysicalExtent parity;
  };
  /// Default: no redundancy (Base) -- empty plan, data is lost.
  virtual std::vector<DegradedGroup> degraded_group(
      const PhysicalExtent& /*extent*/) const {
    return {};
  }

 protected:
  Layout(int data_disks, std::int64_t data_blocks_per_disk,
         std::int64_t physical_blocks_per_disk);

  void check_extent(std::int64_t logical_start, int count) const;

  int data_disks_;
  std::int64_t data_blocks_per_disk_;      // database blocks per original disk
  std::int64_t physical_blocks_per_disk_;  // capacity of each physical disk
  std::int64_t logical_capacity_;
};

/// Base organization: N independent disks, logical block L lives on disk
/// L / B at offset L % B.
class BaseLayout : public Layout {
 public:
  BaseLayout(int data_disks, std::int64_t data_blocks_per_disk,
             std::int64_t physical_blocks_per_disk);

  Organization organization() const override { return Organization::kBase; }
  int total_disks() const override { return data_disks_; }
  ExtentList map_read(std::int64_t logical_start,
                      int count) const override;
  std::vector<StripeUpdate> map_write(std::int64_t logical_start,
                                      int count) const override;
};

/// Mirrored pairs: logical disk d maps to physical disks 2d (primary) and
/// 2d+1 (copy). Reads may be served by either (the controller applies the
/// shortest-seek optimisation); writes go to both.
///
/// The derived Raid10Layout (an extension beyond the paper's Table 3)
/// additionally stripes the data over the pairs, combining RAID5-style
/// load balancing with mirrored redundancy at mirrored cost.
class MirrorLayout : public Layout {
 public:
  MirrorLayout(int data_disks, std::int64_t data_blocks_per_disk,
               std::int64_t physical_blocks_per_disk);

  Organization organization() const override { return Organization::kMirror; }
  int total_disks() const override { return 2 * data_disks_; }
  ExtentList map_read(std::int64_t logical_start,
                      int count) const override;
  std::vector<StripeUpdate> map_write(std::int64_t logical_start,
                                      int count) const override;
  int mirror_of(int disk) const override { return disk ^ 1; }
  std::vector<DegradedGroup> degraded_group(
      const PhysicalExtent& extent) const override;
};

/// Extension: striped mirroring (RAID 1+0). Chunks of `striping_unit`
/// blocks rotate over the N mirrored pairs, so hot regions spread over
/// all arms like RAID5 while every write costs only the mirror copy (no
/// parity read-modify-write).
class Raid10Layout : public MirrorLayout {
 public:
  Raid10Layout(int data_disks, std::int64_t data_blocks_per_disk,
               std::int64_t physical_blocks_per_disk,
               int striping_unit_blocks);

  Organization organization() const override { return Organization::kRaid10; }
  ExtentList map_read(std::int64_t logical_start,
                      int count) const override;
  std::vector<StripeUpdate> map_write(std::int64_t logical_start,
                                      int count) const override;

  int striping_unit() const { return unit_; }

 private:
  int unit_;
};

/// Block-striped layouts with parity: RAID5 (rotated parity) and RAID4
/// (dedicated parity disk) share the striping machinery and differ only
/// in the parity-disk function.
class StripedParityLayout : public Layout {
 public:
  StripedParityLayout(Organization org, int data_disks,
                      std::int64_t data_blocks_per_disk,
                      std::int64_t physical_blocks_per_disk,
                      int striping_unit_blocks);

  Organization organization() const override { return org_; }
  int total_disks() const override { return data_disks_ + 1; }
  ExtentList map_read(std::int64_t logical_start,
                      int count) const override;
  std::vector<StripeUpdate> map_write(std::int64_t logical_start,
                                      int count) const override;

  std::vector<DegradedGroup> degraded_group(
      const PhysicalExtent& extent) const override;
  std::int64_t physical_blocks_used() const override { return rows_ * unit_; }

  int striping_unit() const { return unit_; }
  /// Parity disk for a stripe row (rotated for RAID5, fixed for RAID4).
  int parity_disk(std::int64_t row) const;
  /// Physical disk holding data column j (0..N-1) of a stripe row.
  int data_disk(std::int64_t row, int column) const;

 private:
  struct Chunk {
    std::int64_t row;
    int column;
    int offset;  // first block within the chunk
    int count;
    std::int64_t logical_start;
  };
  InlineVec<Chunk, 8> chunks(std::int64_t logical_start, int count) const;

  Organization org_;
  int unit_;
  std::int64_t rows_;
};

/// Parity Striping of Gray, Horst and Walker as described in Section 2.2:
/// data laid out sequentially on each disk (no interleaving); each disk
/// reserves one of N+1 equal areas for parity; the N data areas of a
/// parity group live on N distinct disks and their parity on the
/// (N+1)-st.
///
/// With `fine_grain_chunk_blocks > 0` the layout implements the paper's
/// Section 5 future-work variant: group membership (and therefore the
/// disk receiving the parity update) rotates across the array every
/// `chunk` blocks of area offset, balancing the parity-update load over
/// all N+1 disks while leaving the sequential data placement -- and thus
/// seek affinity -- untouched.
class ParityStripingLayout : public Layout {
 public:
  ParityStripingLayout(int data_disks, std::int64_t data_blocks_per_disk,
                       std::int64_t physical_blocks_per_disk,
                       ParityPlacement placement,
                       int fine_grain_chunk_blocks = 0);

  Organization organization() const override {
    return Organization::kParityStriping;
  }
  int total_disks() const override { return data_disks_ + 1; }
  ExtentList map_read(std::int64_t logical_start,
                      int count) const override;
  std::vector<StripeUpdate> map_write(std::int64_t logical_start,
                                      int count) const override;

  std::vector<DegradedGroup> degraded_group(
      const PhysicalExtent& extent) const override;
  std::int64_t physical_blocks_used() const override {
    return static_cast<std::int64_t>(data_disks_ + 1) * area_;
  }

  std::int64_t area_blocks() const { return area_; }
  ParityPlacement placement() const { return placement_; }
  /// Physical area slot (0..N) occupied by the parity area on every disk.
  int parity_slot() const { return parity_slot_; }
  /// Parity group of data area index k (0..N-1) on disk i (classic mode).
  int group_of(int disk, int area_index) const;
  /// Fine-grained mode: parity group of (disk, area) for the chunk
  /// containing area offset `offset`, and the disk hosting a group's
  /// parity at that offset.
  int group_of_at(int disk, int area_index, std::int64_t offset) const;
  int parity_disk_of_group_at(int group, std::int64_t offset) const;
  /// Physical area slot of data area index k on any disk.
  int physical_slot(int area_index) const;
  int fine_grain_chunk() const { return fine_chunk_; }

 private:
  struct Piece {
    int disk;
    int area_index;  // data area index 0..N-1
    std::int64_t offset;
    int count;
    std::int64_t logical_start;
  };
  InlineVec<Piece, 8> pieces(std::int64_t logical_start, int count) const;

  std::int64_t area_;
  ParityPlacement placement_;
  int parity_slot_;
  int fine_chunk_;  // 0 = classic parity striping
};

/// Configuration needed to build a layout.
struct LayoutConfig {
  Organization organization = Organization::kRaid5;
  int data_disks = 10;  // N
  std::int64_t data_blocks_per_disk = 226000;
  std::int64_t physical_blocks_per_disk = 226800;
  int striping_unit_blocks = 1;
  ParityPlacement parity_placement = ParityPlacement::kMiddleCylinders;
  /// Parity Striping only: > 0 enables fine-grained parity rotation with
  /// the given chunk size in blocks (Section 5 future work).
  int parity_fine_grain_chunk_blocks = 0;
};

std::unique_ptr<Layout> make_layout(const LayoutConfig& config);

}  // namespace raidsim
