#pragma once

#include "layout/layout.hpp"

namespace raidsim {

/// The paper's analytic parity-placement rule (Section 4.2.3).
///
/// Assuming accesses uniform over the disks of a Parity Striping array
/// and over the data areas of each disk, each of the N data areas of a
/// disk receives 1/N^2 of the array's accesses while a parity area
/// receives w/N of them (w = write fraction). The parity area is
/// therefore the hotter region -- and worth the middle cylinders -- iff
/// w > 1/N; otherwise the data deserve the middle and the parity should
/// sit at the end.
///
/// For the paper's Trace 1 (w = 0.1) the crossover is N = 10, which
/// Figure 9 confirms ("the cutoff point occurs somewhere between N = 5
/// and N = 10, probably closer to 10"); bench/fig09_parity_placement
/// reproduces it.

/// Access rate of one data area relative to the whole array.
double data_area_access_share(int array_data_disks);

/// Access rate of one parity area relative to the whole array.
double parity_area_access_share(double write_fraction, int array_data_disks);

/// True when the parity areas are hotter than the data areas
/// (w > 1/N).
bool parity_hotter_than_data(double write_fraction, int array_data_disks);

/// The placement the model recommends for the given workload.
ParityPlacement recommended_parity_placement(double write_fraction,
                                             int array_data_disks);

/// The array size at which the recommendation flips for a given write
/// fraction (the smallest N for which the middle placement wins);
/// returns a large value when w == 0.
int placement_crossover_array_size(double write_fraction);

}  // namespace raidsim
