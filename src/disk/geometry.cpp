#include "disk/geometry.hpp"

namespace raidsim {

BlockAddress DiskGeometry::locate_block(std::int64_t block) const {
  return locate_sector(block * block_sectors);
}

BlockAddress DiskGeometry::locate_sector(std::int64_t sector) const {
  BlockAddress addr;
  const int spc = sectors_per_cylinder();
  addr.cylinder = static_cast<int>(sector / spc);
  const int within = static_cast<int>(sector % spc);
  addr.track = within / sectors_per_track;
  addr.sector = within % sectors_per_track;
  return addr;
}

bool DiskGeometry::valid() const {
  return cylinders > 0 && tracks_per_cylinder > 0 && sectors_per_track > 0 &&
         bytes_per_sector > 0 && rpm > 0.0 && block_sectors > 0 &&
         sectors_per_track % block_sectors == 0;
}

}  // namespace raidsim
