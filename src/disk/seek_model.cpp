#include "disk/seek_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace raidsim {

SeekModel::SeekModel(double a, double b, double c, int cylinders)
    : a_(a), b_(b), c_(c), cylinders_(cylinders) {
  if (cylinders < 2) throw std::invalid_argument("SeekModel: cylinders < 2");
}

double SeekModel::seek_time(int distance) const {
  assert(distance >= 0 && distance < cylinders_);
  if (distance == 0) return 0.0;
  const double x = static_cast<double>(distance - 1);
  return a_ * std::sqrt(x) + b_ * x + c_;
}

double SeekModel::average_over_uniform() const {
  const double c = static_cast<double>(cylinders_);
  double avg = 0.0;
  for (int d = 1; d < cylinders_; ++d) {
    const double p = 2.0 * (c - static_cast<double>(d)) / (c * c);
    avg += p * seek_time(d);
  }
  return avg;  // the d == 0 term contributes zero
}

SeekModel SeekModel::calibrate(const SeekSpec& spec) {
  const int cyl = spec.cylinders;
  if (cyl < 3) throw std::invalid_argument("SeekModel: need >= 3 cylinders");
  const double c = spec.single_cylinder_ms;
  const double cd = static_cast<double>(cyl);

  // Moments of the uniform random-pair seek-distance distribution over
  // d in [1, C-1]: weights p(d) = 2(C-d)/C^2.
  double s_sqrt = 0.0;  // E[sqrt(d-1)]
  double s_lin = 0.0;   // E[d-1]
  double s_mass = 0.0;  // P(d >= 1)
  for (int d = 1; d < cyl; ++d) {
    const double p = 2.0 * (cd - static_cast<double>(d)) / (cd * cd);
    s_sqrt += p * std::sqrt(static_cast<double>(d - 1));
    s_lin += p * static_cast<double>(d - 1);
    s_mass += p;
  }

  // Solve:
  //   a*s_sqrt + b*s_lin = average - c*s_mass
  //   a*sqrt(C-2) + b*(C-2) = max - c
  const double rhs1 = spec.average_ms - c * s_mass;
  const double rhs2 = spec.max_ms - c;
  const double m21 = std::sqrt(static_cast<double>(cyl - 2));
  const double m22 = static_cast<double>(cyl - 2);
  const double det = s_sqrt * m22 - s_lin * m21;
  if (std::abs(det) < 1e-12)
    throw std::runtime_error("SeekModel: singular calibration system");
  const double a = (rhs1 * m22 - rhs2 * s_lin) / det;
  const double b = (s_sqrt * rhs2 - m21 * rhs1) / det;
  if (a < 0.0 || b < 0.0)
    throw std::runtime_error(
        "SeekModel: calibration produced a non-monotonic seek curve; "
        "check spec targets");
  return SeekModel(a, b, c, cyl);
}

}  // namespace raidsim
