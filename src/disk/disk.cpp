#include "disk/disk.hpp"

#include <cassert>
#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace raidsim {

OpRef<WriteGate> WriteGate::already_open(OpArena& arena) {
  auto gate = make_op<WriteGate>(arena);
  gate->open_ = true;
  gate->ready_time_ = 0.0;
  return gate;
}

void WriteGate::open(SimTime now) {
  if (open_) return;
  open_ = true;
  ready_time_ = now;
  if (waiter_) {
    auto waiter = std::move(waiter_);
    waiter_ = nullptr;
    waiter(now);
  }
}

std::string to_string(DiskScheduling scheduling) {
  switch (scheduling) {
    case DiskScheduling::kFifo: return "FIFO";
    case DiskScheduling::kSstf: return "SSTF";
    case DiskScheduling::kScan: return "SCAN";
  }
  return "?";
}

std::string to_string(DiskError error) {
  switch (error) {
    case DiskError::kNone: return "none";
    case DiskError::kTransient: return "transient";
    case DiskError::kMedia: return "media";
  }
  return "?";
}

Disk::Disk(EventQueue& eq, const DiskGeometry& geometry, const SeekModel* seek,
           int id, DiskScheduling scheduling)
    : eq_(eq), geometry_(geometry), seek_(seek), id_(id),
      scheduling_(scheduling) {
  if (!geometry_.valid()) throw std::invalid_argument("Disk: bad geometry");
  if (seek_ == nullptr) throw std::invalid_argument("Disk: null seek model");
}

void Disk::submit(DiskRequest req) {
  assert(req.start_block >= 0 && req.block_count > 0);
  assert(req.start_block + req.block_count <= geometry_.total_blocks());
  if (powered_off_) {
    // Stray submission against a dead disk (e.g. a retry backoff that
    // fired after the crash): refused, nothing reaches the medium.
    ++stats_.power_fail_drops;
    if (req.on_power_fail) req.on_power_fail(eq_.now(), 0);
    return;
  }
  Pending p{std::move(req), eq_.now(), next_seq_++};
  if constexpr (kTracingCompiledIn) {
    if (tracer_) {
      p.obs_phase = p.req.obs_phase != ObsPhase::kAuto ? p.req.obs_phase
                    : p.req.kind == DiskOpKind::kRead  ? ObsPhase::kReadData
                    : p.req.kind == DiskOpKind::kWrite ? ObsPhase::kWriteData
                                                       : ObsPhase::kReadOldData;
      p.obs_id =
          tracer_->begin(ObsPhase::kDiskQueue, obs_array_, id_, p.enqueue_time);
    }
  }
  QueueKey key{p.seq, 0, p.req.priority};
  if (scheduling_ != DiskScheduling::kFifo)
    key.cylinder = geometry_.locate_block(p.req.start_block).cylinder;
  queue_.push_back(std::move(p));
  qkeys_.push_back(key);
  if (!busy_) start_next();
}

Disk::Pending Disk::pop_next() {
  assert(!qkeys_.empty() && qkeys_.size() == queue_.size());
  const std::size_t n = qkeys_.size();
  // Highest priority class present wins regardless of scheduling policy.
  DiskPriority best_priority = DiskPriority::kDestage;
  for (const QueueKey& k : qkeys_)
    best_priority = std::max(best_priority, k.priority);

  // Within the class, ties are broken by arrival (seq): with swap-remove
  // the vectors are no longer arrival-ordered, so the tie-break that the
  // old first-hit-wins scan got for free is explicit here.
  std::size_t chosen = n;
  switch (scheduling_) {
    case DiskScheduling::kFifo: {
      std::uint64_t best_seq = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (qkeys_[i].priority != best_priority) continue;
        if (chosen == n || qkeys_[i].seq < best_seq) {
          chosen = i;
          best_seq = qkeys_[i].seq;
        }
      }
      break;
    }
    case DiskScheduling::kSstf: {
      int best_dist = 0;
      std::uint64_t best_seq = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (qkeys_[i].priority != best_priority) continue;
        const int dist = std::abs(qkeys_[i].cylinder - head_cylinder_);
        if (chosen == n || dist < best_dist ||
            (dist == best_dist && qkeys_[i].seq < best_seq)) {
          chosen = i;
          best_dist = dist;
          best_seq = qkeys_[i].seq;
        }
      }
      break;
    }
    case DiskScheduling::kScan: {
      // Elevator: nearest request at or beyond the head in the sweep
      // direction; reverse when none remains.
      for (int attempt = 0; attempt < 2 && chosen == n; ++attempt) {
        int best_dist = 0;
        std::uint64_t best_seq = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (qkeys_[i].priority != best_priority) continue;
          const int delta = qkeys_[i].cylinder - head_cylinder_;
          if (scan_upward_ ? delta < 0 : delta > 0) continue;
          const int dist = std::abs(delta);
          if (chosen == n || dist < best_dist ||
              (dist == best_dist && qkeys_[i].seq < best_seq)) {
            chosen = i;
            best_dist = dist;
            best_seq = qkeys_[i].seq;
          }
        }
        if (chosen == n) scan_upward_ = !scan_upward_;
      }
      break;
    }
  }
  assert(chosen < n);
  Pending p = std::move(queue_[chosen]);
  queue_[chosen] = std::move(queue_.back());
  queue_.pop_back();
  qkeys_[chosen] = qkeys_.back();
  qkeys_.pop_back();
  return p;
}

double Disk::rotational_latency(SimTime t, int sector) const {
  const double rot = geometry_.rotation_ms();
  const double target = static_cast<double>(sector) * geometry_.sector_time_ms();
  double angle = std::fmod(t, rot);
  double lat = target - angle;
  if (lat < 0.0) lat += rot;
  return lat;
}

Disk::TransferPlan Disk::plan_transfer(SimTime t, int head_cyl,
                                       std::int64_t start_sector,
                                       int sector_count) const {
  TransferPlan plan;
  const int spc = geometry_.sectors_per_cylinder();
  const double sector_ms = geometry_.sector_time_ms();

  std::int64_t pos = start_sector;
  int remaining = sector_count;
  bool first = true;
  while (remaining > 0) {
    const int cyl = geometry_.cylinder_of_sector(pos);
    const int dist = std::abs(cyl - head_cyl);
    const double seek = seek_->seek_time(dist);
    t += seek;
    plan.seek_ms += seek;
    head_cyl = cyl;

    const int within = static_cast<int>(pos % spc);
    const int sector_in_track = within % geometry_.sectors_per_track;
    const double lat = rotational_latency(t, sector_in_track);
    t += lat;
    plan.latency_ms += lat;
    if (first) {
      plan.transfer_start = t;
      first = false;
    }

    const int chunk = std::min(remaining, spc - within);
    const double xfer = static_cast<double>(chunk) * sector_ms;
    t += xfer;
    plan.transfer_ms += xfer;
    pos += chunk;
    remaining -= chunk;
  }
  plan.end_time = t;
  plan.end_cylinder = head_cyl;
  return plan;
}

void Disk::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  begin_service(pop_next());
}

void Disk::begin_service(Pending p) {
  const SimTime start = eq_.now();
  stats_.queue_ms += start - p.enqueue_time;
  obs_end(tracer_, p.obs_id, ObsPhase::kDiskQueue, obs_array_, id_, start);
  obs_begin_with(tracer_, p.obs_id, p.obs_phase, obs_array_, id_, start);
  if (p.req.on_start) p.req.on_start(start);

  const std::int64_t start_sector =
      p.req.start_block * geometry_.block_sectors;
  const int sector_count = p.req.block_count * geometry_.block_sectors;
  const TransferPlan plan =
      plan_transfer(start, head_cylinder_, start_sector, sector_count);
  stats_.seek_ms += plan.seek_ms;
  stats_.latency_ms += plan.latency_ms;

  // Fail-slow injection: extra service milliseconds appended after the
  // mechanical plan (media retries re-reading a marginal sector hold the
  // spindle past the nominal transfer end). Zero when no hook installed,
  // so injection-off runs are bit-identical to a build without the hook.
  double extra_ms = 0.0;
  if (slowdown_hook_) {
    extra_ms = slowdown_hook_(p.req, start, plan.end_time - start);
    if (extra_ms > 0.0) {
      ++stats_.slow_ops;
      stats_.slowdown_ms += extra_ms;
    } else {
      extra_ms = 0.0;
    }
  }

  switch (p.req.kind) {
    case DiskOpKind::kRead:
    case DiskOpKind::kWrite: {
      stats_.transfer_ms += plan.transfer_ms;
      (p.req.kind == DiskOpKind::kRead ? stats_.reads : stats_.writes)++;
      auto shared = make_op<Pending>(eq_.op_arena(), std::move(p));
      active_ = shared;
      if (shared->req.kind == DiskOpKind::kWrite) {
        active_write_start_ = plan.transfer_start;
        active_write_end_ = plan.end_time;
      }
      const SimTime done = plan.end_time + extra_ms;
      const std::uint64_t epoch = power_epoch_;
      // Capture scalars, not the whole TransferPlan: the lambda then fits
      // InlineCallback's buffer and the schedule allocates nothing.
      const int end_cyl = plan.end_cylinder;
      eq_.schedule_at(done, [this, shared, start, done, end_cyl, epoch] {
        if (epoch != power_epoch_) return;  // killed by a power failure
        complete(*shared, start, done, end_cyl);
      });
      break;
    }
    case DiskOpKind::kReadModifyWrite: {
      // RMW extents must fit in one cylinder so the in-place rewrite lands
      // exactly k revolutions after the read began.
      const int spc = geometry_.sectors_per_cylinder();
      if (start_sector / spc != (start_sector + sector_count - 1) / spc)
        throw std::logic_error("Disk: RMW extent crosses a cylinder");
      ++stats_.rmws;
      stats_.transfer_ms += 2.0 * plan.transfer_ms;  // read + write passes

      const double rot = geometry_.rotation_ms();
      const int min_revs = std::max(
          1, static_cast<int>(std::ceil(plan.transfer_ms / rot - 1e-9)));
      auto shared = make_op<Pending>(eq_.op_arena(), std::move(p));
      active_ = shared;
      const std::uint64_t epoch = power_epoch_;
      // A slow read pass delays read_done; schedule_rmw_write then pushes
      // the in-place rewrite onto a later whole revolution, exactly as a
      // late gate would. Scalar captures keep both this lambda and the
      // gate waiter inside their inline-storage buffers.
      const SimTime xfer_start = plan.transfer_start;
      const int end_cyl = plan.end_cylinder;
      eq_.schedule_at(plan.end_time + extra_ms, [this, shared, start,
                                                 xfer_start, end_cyl,
                                                 sector_count, min_revs,
                                                 epoch] {
        if (epoch != power_epoch_) return;  // killed by a power failure
        const SimTime read_done = eq_.now();
        if (shared->obs_id) {
          // Close the read pass, open the write pass under the same span
          // id; the write span absorbs any gate hold and rotation wait.
          obs_end(tracer_, shared->obs_id, shared->obs_phase, obs_array_, id_,
                  read_done);
          shared->obs_phase = rmw_write_phase(shared->obs_phase);
          obs_begin_with(tracer_, shared->obs_id, shared->obs_phase,
                         obs_array_, id_, read_done);
        }
        if (shared->req.on_read_done) shared->req.on_read_done(read_done);
        auto& gate = shared->req.gate;
        if (gate && !gate->is_open()) {
          // Hold the disk: spin until the gate opens (SI policy behaviour).
          gate->waiter_ = [this, shared, start, xfer_start, sector_count,
                           end_cyl, min_revs, epoch](SimTime opened) {
            if (epoch != power_epoch_) return;
            schedule_rmw_write(shared, start, xfer_start, sector_count,
                               end_cyl, min_revs, opened);
          };
        } else {
          // The write may start no earlier than the (possibly slowed)
          // read pass actually ended, whatever the gate says.
          const SimTime earliest =
              gate ? std::max(gate->ready_time(), read_done) : read_done;
          schedule_rmw_write(shared, start, xfer_start, sector_count,
                             end_cyl, min_revs, earliest);
        }
      });
      break;
    }
  }
}

void Disk::schedule_rmw_write(OpRef<Pending> p, SimTime service_start,
                              SimTime transfer_start, int sector_count,
                              int end_cylinder, int min_revolutions,
                              SimTime earliest) {
  const double rot = geometry_.rotation_ms();
  int revs = min_revolutions;
  if (earliest > transfer_start + static_cast<double>(revs) * rot) {
    revs = static_cast<int>(
        std::ceil((earliest - transfer_start) / rot - 1e-9));
  }
  const std::uint64_t held =
      static_cast<std::uint64_t>(revs - min_revolutions);
  stats_.held_rotations += held;
  stats_.hold_ms += static_cast<double>(held) * rot;

  const SimTime write_start =
      transfer_start + static_cast<double>(revs) * rot;
  const SimTime write_end =
      write_start +
      static_cast<double>(sector_count) * geometry_.sector_time_ms();
  active_write_start_ = write_start;
  active_write_end_ = write_end;
  const std::uint64_t epoch = power_epoch_;
  eq_.schedule_at(write_end, [this, p, service_start, write_end,
                              end_cylinder, epoch] {
    if (epoch != power_epoch_) return;  // killed by a power failure
    complete(*p, service_start, write_end, end_cylinder);
  });
}

Disk::PowerFailReport Disk::power_fail() {
  PowerFailReport report;
  if (powered_off_) return report;
  powered_off_ = true;
  ++power_epoch_;  // invalidates every scheduled completion/waiter

  // Swap-remove leaves the queue vectors unordered; deliver the kill
  // callbacks in arrival (seq) order so crash handling stays
  // deterministic and matches what a FIFO walk of the queue produced.
  std::vector<std::size_t> order(queue_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return queue_[a].seq < queue_[b].seq;
  });
  for (std::size_t i : order) {
    Pending& p = queue_[i];
    ++report.queued_ops;
    if (p.req.kind != DiskOpKind::kRead)
      report.write_blocks_lost += static_cast<std::uint64_t>(p.req.block_count);
    if (p.req.on_power_fail) p.req.on_power_fail(eq_.now(), 0);
  }
  queue_.clear();
  qkeys_.clear();

  if (busy_ && active_) {
    ++report.inflight_ops;
    int durable = 0;
    if (active_->req.kind != DiskOpKind::kRead && active_write_start_ >= 0.0) {
      // The head lays down sectors front-to-back through the write
      // window; the prefix already under the head is on the medium.
      const double span = active_write_end_ - active_write_start_;
      const double frac =
          span > 0.0 ? (eq_.now() - active_write_start_) / span : 1.0;
      durable = std::clamp(
          static_cast<int>(std::floor(
              frac * static_cast<double>(active_->req.block_count))),
          0, active_->req.block_count);
    }
    if (active_->req.kind != DiskOpKind::kRead) {
      report.write_blocks_durable += static_cast<std::uint64_t>(durable);
      report.write_blocks_lost +=
          static_cast<std::uint64_t>(active_->req.block_count - durable);
    }
    if (active_->req.on_power_fail)
      active_->req.on_power_fail(eq_.now(), durable);
  }
  active_.reset();
  active_write_start_ = active_write_end_ = -1.0;
  busy_ = false;
  return report;
}

void Disk::power_on() {
  powered_off_ = false;
  if (!busy_) start_next();
}

void Disk::plant_media_error(std::int64_t block) {
  assert(block >= 0 && block < geometry_.total_blocks());
  bad_blocks_.insert(block);
}

bool Disk::has_media_error(std::int64_t start_block, int block_count) const {
  for (int i = 0; i < block_count; ++i)
    if (bad_blocks_.count(start_block + i)) return true;
  return false;
}

int Disk::media_errors_in(std::int64_t start_block, int block_count) const {
  int n = 0;
  for (int i = 0; i < block_count; ++i)
    if (bad_blocks_.count(start_block + i)) ++n;
  return n;
}

void Disk::clear_media_errors(std::int64_t start_block, int block_count) {
  for (int i = 0; i < block_count; ++i) bad_blocks_.erase(start_block + i);
}

void Disk::complete(const Pending& p, SimTime service_start, SimTime end_time,
                    int end_cylinder) {
  head_cylinder_ = end_cylinder;
  stats_.busy_ms += end_time - service_start;
  op_latency_.add(end_time - p.enqueue_time);
  // TCP-RTT-style smoothing (alpha = 1/8): responsive enough to see a
  // sticky slowdown within a few tens of ops, smooth enough to ignore a
  // single unlucky seek.
  constexpr double kEwmaAlpha = 0.125;
  const double op_ms = end_time - p.enqueue_time;
  ewma_latency_ms_ = op_latency_.count() <= 1
                         ? op_ms
                         : kEwmaAlpha * op_ms +
                               (1.0 - kEwmaAlpha) * ewma_latency_ms_;
  active_.reset();
  active_write_start_ = active_write_end_ = -1.0;
  obs_end(tracer_, p.obs_id, p.obs_phase, obs_array_, id_, end_time);

  // Fault disposition: only requests that installed an error handler
  // participate; the evaluator is consulted first (it may plant media
  // errors as a side effect), then reads are checked against the
  // latent-error set. The op has already consumed its mechanical
  // service time -- a timeout holds the spindle just like a success.
  DiskError error = DiskError::kNone;
  if (p.req.on_error) {
    if (fault_evaluator_) error = fault_evaluator_(p.req);
    if (error == DiskError::kNone && p.req.kind == DiskOpKind::kRead &&
        has_media_error(p.req.start_block, p.req.block_count))
      error = DiskError::kMedia;
  }
  if (error == DiskError::kNone && p.req.kind != DiskOpKind::kRead) {
    // A successful (re)write remaps any latent-error sectors it covers.
    clear_media_errors(p.req.start_block, p.req.block_count);
  }

  if (error != DiskError::kNone) {
    (error == DiskError::kTransient ? stats_.transient_faults
                                    : stats_.media_faults)++;
    p.req.on_error(end_time, error);
  } else if (p.req.on_complete) {
    p.req.on_complete(end_time);
  }
  start_next();
}

}  // namespace raidsim
