#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <memory>
#include <unordered_set>
#include <vector>

#include "disk/geometry.hpp"
#include "disk/seek_model.hpp"
#include "obs/tracer.hpp"
#include "sim/event_queue.hpp"
#include "sim/small_function.hpp"
#include "util/arena.hpp"
#include "util/stats.hpp"

namespace raidsim {

/// Queueing priority at a disk. Higher values are served first;
/// ties are FIFO. Destage (background) traffic yields to demand reads,
/// and the /PR synchronization policies promote parity accesses.
enum class DiskPriority : int {
  kDestage = 0,
  kNormal = 1,
  kParity = 2,
};

/// Order in which queued requests are dispatched within a priority
/// class. The paper's simulator services requests in arrival order
/// (FIFO, the default); SSTF and SCAN are provided for scheduling
/// ablations.
enum class DiskScheduling {
  kFifo,  // arrival order
  kSstf,  // shortest seek time first
  kScan,  // elevator: sweep up, reverse at the top
};

std::string to_string(DiskScheduling scheduling);

enum class DiskOpKind {
  kRead,
  kWrite,
  /// Read the extent, then rewrite it in place one or more full
  /// revolutions later (small-write parity update path, Section 3.3).
  kReadModifyWrite,
};

/// Failure modes an access can report (fault-injection support). Faults
/// are only delivered to requests that install an `on_error` handler;
/// legacy submitters see every access succeed.
enum class DiskError {
  kNone,
  /// Timeout/aborted command: the op consumed its mechanical service
  /// time but returned no data. Retryable.
  kTransient,
  /// Latent sector error: one or more blocks of a read are unreadable.
  /// Persistent until the extent is rewritten (sector remap).
  kMedia,
};

std::string to_string(DiskError error);

/// Synchronization gate for the write phase of a read-modify-write
/// access: the in-place write may not begin before the gate opens (e.g.
/// the new parity only exists once the old data have been read on the
/// data disks). If the gate is still closed when the disk is ready to
/// write, the disk is *held*, spinning through full revolutions until the
/// gate opens -- exactly the behaviour the paper describes for the
/// Simultaneous Issue policy.
class WriteGate {
 public:
  /// An open gate never delays the write. Allocated against the engine's
  /// op arena (always eq.op_arena() of the queue driving the disks).
  static OpRef<WriteGate> already_open(OpArena& arena);

  void open(SimTime now);
  bool is_open() const { return open_; }
  SimTime ready_time() const { return ready_time_; }

 private:
  friend class Disk;
  bool open_ = false;
  SimTime ready_time_ = 0.0;
  SmallFunction<void(SimTime)> waiter_;
};

/// One access submitted to a disk. Addresses are in logical blocks local
/// to this disk. Extents must be physically contiguous; the disk splits
/// cylinder crossings internally (read/write only -- RMW extents must fit
/// within one cylinder, which controllers guarantee by splitting).
struct DiskRequest {
  DiskOpKind kind = DiskOpKind::kRead;
  std::int64_t start_block = 0;
  int block_count = 1;
  DiskPriority priority = DiskPriority::kNormal;
  OpRef<WriteGate> gate;  // RMW only; null means always ready
  /// Tracer tag for the service span. kAuto derives the phase from the op
  /// kind (read-data / write-data / read-old-data); submitters that know
  /// better override it (parity RMW, full-stripe parity write, rebuild).
  ObsPhase obs_phase = ObsPhase::kAuto;

  /// Completion callbacks are move-only inline-storage callables (the
  /// same SmallFunction machinery as the event kernel's InlineCallback):
  /// typical controller continuations live inside the request itself, so
  /// the submit path performs no callback heap allocations. A copyable
  /// std::function still converts implicitly (it gets wrapped), so
  /// legacy submitters keep working; DiskRequest itself becomes
  /// move-only, which every submit site already respects.

  /// Invoked when the access acquires the disk (seek begins). Used by the
  /// Disk First synchronization policies.
  SmallFunction<void(SimTime)> on_start;
  /// RMW only: invoked when the old data/parity have been read.
  SmallFunction<void(SimTime)> on_read_done;
  /// Invoked when the access fully completes.
  SmallFunction<void(SimTime)> on_complete;
  /// Invoked INSTEAD of on_complete when the access faults (transient
  /// timeout or media error). Requests without a handler opt out of
  /// fault injection entirely and always complete. Wider inline storage:
  /// the controller's retry continuation carries the extent, both outer
  /// callbacks, and the backoff state.
  SmallFunction<void(SimTime, DiskError), 128> on_error;
  /// Invoked (instead of any other callback) when the disk loses power
  /// while the request is queued or in service. `durable_blocks` is the
  /// length of the leading prefix of a write extent that reached the
  /// medium before the power failed -- always 0 for reads, for queued
  /// requests, and for RMW accesses still in their read phase.
  SmallFunction<void(SimTime, int durable_blocks)> on_power_fail;
};

struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmws = 0;
  double busy_ms = 0.0;
  double seek_ms = 0.0;
  double latency_ms = 0.0;   // rotational latency
  double transfer_ms = 0.0;
  double hold_ms = 0.0;      // time spent held waiting on write gates
  double queue_ms = 0.0;     // cumulative queueing delay
  std::uint64_t held_rotations = 0;  // extra full revolutions due to gates
  std::uint64_t transient_faults = 0;  // ops failed with a transient timeout
  std::uint64_t media_faults = 0;      // reads that hit a latent sector error
  std::uint64_t power_fail_drops = 0;  // submissions refused while powered off
  std::uint64_t slow_ops = 0;          // ops stretched by the slowdown hook
  double slowdown_ms = 0.0;            // total extra service time injected

  std::uint64_t ops() const { return reads + writes + rmws; }
  double utilization(SimTime elapsed) const {
    return elapsed > 0.0 ? busy_ms / elapsed : 0.0;
  }
};

/// Event-driven model of a single rotating disk drive with a FIFO
/// priority queue, the calibrated seek curve, and continuous rotation
/// (rotational position is a function of absolute simulation time; no
/// spindle synchronization across disks, per Section 3.2).
class Disk {
 public:
  Disk(EventQueue& eq, const DiskGeometry& geometry, const SeekModel* seek,
       int id, DiskScheduling scheduling = DiskScheduling::kFifo);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  void submit(DiskRequest req);

  /// Attach the request-lifecycle tracer (null = tracing off). Every op
  /// then emits a queue span (enqueue -> service start) and one or two
  /// service-phase spans on this disk's track.
  void set_tracer(Tracer* tracer, int array_index) {
    tracer_ = tracer;
    obs_array_ = array_index;
  }

  /// Fault-injection hook, consulted once per access that carries an
  /// `on_error` handler (after the mechanical service completes). May
  /// plant media errors on this disk as a side effect. Null = no faults.
  using FaultEvaluator = std::function<DiskError(const DiskRequest&)>;
  void set_fault_evaluator(FaultEvaluator evaluator) {
    fault_evaluator_ = std::move(evaluator);
  }

  /// Fail-slow hook, consulted once per access as it begins service.
  /// Returns extra milliseconds of service time (media-retry bursts,
  /// sticky degradation, stall windows) appended to the mechanical plan.
  /// Unlike the fault evaluator this applies to EVERY access, handler or
  /// not -- a slow spindle slows rebuild sweeps too. Null = no slowdown
  /// (and no per-op overhead beyond a branch).
  using SlowdownHook =
      std::function<double(const DiskRequest&, SimTime service_start,
                           double planned_service_ms)>;
  void set_slowdown_hook(SlowdownHook hook) {
    slowdown_hook_ = std::move(hook);
  }
  bool has_slowdown_hook() const { return slowdown_hook_ != nullptr; }

  /// Latent sector errors: a planted block makes any fault-aware read
  /// covering it fail with DiskError::kMedia until the block is
  /// rewritten (any successful write or RMW clears the blocks it
  /// covers, modelling sector remapping).
  /// What a power failure destroyed: queued operations never started,
  /// the in-service operation (if any), and -- at sector granularity --
  /// how much of an in-flight write made it onto the medium first.
  struct PowerFailReport {
    std::uint64_t queued_ops = 0;            // queued, never started
    std::uint64_t inflight_ops = 0;          // 0 or 1
    std::uint64_t write_blocks_lost = 0;     // write blocks that never landed
    std::uint64_t write_blocks_durable = 0;  // leading blocks that did land
  };

  /// Cut power at the current instant: the queue is discarded, the
  /// in-service access is killed mid-transfer (its leading blocks up to
  /// the current head position are durable, the rest are lost), every
  /// scheduled completion is invalidated, and further submissions are
  /// refused until power_on(). Each killed request's `on_power_fail`
  /// handler (if any) is invoked with its durable prefix; no other
  /// callback of a killed request ever fires.
  PowerFailReport power_fail();

  /// Restore power. The queue starts empty; outstanding state from
  /// before the failure is gone (the controller re-drives recovery I/O).
  void power_on();
  bool powered_off() const { return powered_off_; }

  void plant_media_error(std::int64_t block);
  bool has_media_error(std::int64_t start_block, int block_count) const;
  int media_errors_in(std::int64_t start_block, int block_count) const;
  void clear_media_errors(std::int64_t start_block, int block_count);
  std::size_t media_error_count() const { return bad_blocks_.size(); }

  int id() const { return id_; }
  const DiskGeometry& geometry() const { return geometry_; }
  bool busy() const { return busy_; }
  /// Head position as of the most recent service completion/start.
  int current_cylinder() const { return head_cylinder_; }
  std::size_t queue_length() const { return queue_.size(); }
  const DiskStats& stats() const { return stats_; }

  /// Per-op latency (enqueue -> completion) of every access served by
  /// this disk: streaming moments plus a log-bucketed histogram, the
  /// per-disk half of the tail-latency accounting.
  const LatencyRecorder& op_latency() const { return op_latency_; }
  /// Exponentially-weighted moving average of per-op latency (alpha =
  /// 1/8, TCP-RTT style); the signal the slow-disk detector samples.
  double ewma_latency_ms() const { return ewma_latency_ms_; }

 private:
  struct Pending {
    DiskRequest req;
    SimTime enqueue_time;
    std::uint64_t seq;
    std::uint64_t obs_id = 0;               // span id, 0 when untraced
    ObsPhase obs_phase = ObsPhase::kAuto;   // resolved service phase
  };

  /// Hot half of the queue: everything the scheduling scan needs, 16
  /// bytes per entry, parallel to the cold Pending vector. The cylinder
  /// is precomputed at submit (only under SSTF/SCAN — FIFO never reads
  /// it), so pop_next touches neither the requests nor the geometry.
  struct QueueKey {
    std::uint64_t seq;
    int cylinder;
    DiskPriority priority;
  };

  /// Select (and remove, by swap-with-back) the next request to service:
  /// the highest priority class present, ordered within the class by the
  /// scheduling policy with (time-of-arrival) seq breaking ties.
  Pending pop_next();

  /// Timing of one contiguous transfer starting with the head at
  /// `head_cyl` at time `t`.
  struct TransferPlan {
    SimTime transfer_start = 0.0;  // first data sector under the head
    SimTime end_time = 0.0;
    int end_cylinder = 0;
    double seek_ms = 0.0;
    double latency_ms = 0.0;
    double transfer_ms = 0.0;
  };
  TransferPlan plan_transfer(SimTime t, int head_cyl, std::int64_t start_sector,
                             int sector_count) const;

  /// Rotational delay from time t until the start of `sector` (within a
  /// track) passes under the head.
  double rotational_latency(SimTime t, int sector) const;

  void start_next();
  void begin_service(Pending p);
  void schedule_rmw_write(OpRef<Pending> p, SimTime service_start,
                          SimTime transfer_start, int sector_count,
                          int end_cylinder, int min_revolutions,
                          SimTime earliest);
  void complete(const Pending& p, SimTime service_start, SimTime end_time,
                int end_cylinder);

  EventQueue& eq_;
  DiskGeometry geometry_;
  const SeekModel* seek_;
  int id_;
  Tracer* tracer_ = nullptr;
  int obs_array_ = -1;
  bool busy_ = false;
  int head_cylinder_ = 0;
  std::uint64_t next_seq_ = 0;
  DiskScheduling scheduling_;
  bool scan_upward_ = true;  // SCAN sweep direction
  std::vector<Pending> queue_;    // cold: requests + bookkeeping
  std::vector<QueueKey> qkeys_;   // hot: parallel scheduling keys
  DiskStats stats_;
  FaultEvaluator fault_evaluator_;
  SlowdownHook slowdown_hook_;
  LatencyRecorder op_latency_;
  double ewma_latency_ms_ = 0.0;
  std::unordered_set<std::int64_t> bad_blocks_;

  // Power-loss support: the epoch invalidates completions scheduled
  // before a power_fail(); the active-op bookkeeping locates the head
  // within an in-flight write when the lights go out.
  std::uint64_t power_epoch_ = 0;
  bool powered_off_ = false;
  OpRef<Pending> active_;
  SimTime active_write_start_ = -1.0;  // < 0: no write phase under way
  SimTime active_write_end_ = -1.0;
};

}  // namespace raidsim
