#pragma once

#include <cstdint>

namespace raidsim {

/// Physical location of a block on a disk surface.
struct BlockAddress {
  int cylinder = 0;
  int track = 0;        // track (surface) within the cylinder
  int sector = 0;       // first sector within the track
};

/// Disk drive geometry. Defaults reproduce Table 1 of the paper:
/// 5400 rpm, 1260 cylinders, 48 sectors/track, 512 B sectors, 15 platters
/// (30 recording surfaces), giving roughly 0.9 GB per drive.
struct DiskGeometry {
  int cylinders = 1260;
  int tracks_per_cylinder = 30;  // 15 platters x 2 surfaces
  int sectors_per_track = 48;
  int bytes_per_sector = 512;
  double rpm = 5400.0;
  int block_sectors = 8;  // 4 KB logical blocks

  /// One full revolution, in ms (11.11 ms at 5400 rpm).
  double rotation_ms() const { return 60000.0 / rpm; }

  /// Time for one sector to pass under the head, in ms.
  double sector_time_ms() const {
    return rotation_ms() / static_cast<double>(sectors_per_track);
  }

  int sectors_per_cylinder() const {
    return tracks_per_cylinder * sectors_per_track;
  }

  int blocks_per_track() const { return sectors_per_track / block_sectors; }

  int blocks_per_cylinder() const {
    return tracks_per_cylinder * blocks_per_track();
  }

  std::int64_t total_blocks() const {
    return static_cast<std::int64_t>(cylinders) * blocks_per_cylinder();
  }

  std::int64_t total_sectors() const {
    return static_cast<std::int64_t>(cylinders) * sectors_per_cylinder();
  }

  std::int64_t capacity_bytes() const {
    return total_sectors() * bytes_per_sector;
  }

  /// Bytes in one logical block.
  int block_bytes() const { return block_sectors * bytes_per_sector; }

  /// Map a block number to its physical address. Blocks are laid out
  /// sector-contiguously: track-by-track within a cylinder, then cylinder
  /// by cylinder (no track or cylinder skew is modelled).
  BlockAddress locate_block(std::int64_t block) const;

  /// Map an absolute sector number to its physical address.
  BlockAddress locate_sector(std::int64_t sector) const;

  /// Cylinder containing the given absolute sector.
  int cylinder_of_sector(std::int64_t sector) const {
    return static_cast<int>(sector / sectors_per_cylinder());
  }

  bool valid() const;
};

}  // namespace raidsim
