#pragma once

namespace raidsim {

/// Calibration targets for the seek-time curve.
struct SeekSpec {
  double average_ms = 11.2;         // Table 1: average seek
  double max_ms = 28.0;             // Table 1: maximal seek
  double single_cylinder_ms = 2.0;  // assumed settle time for a 1-cyl seek
  int cylinders = 1260;
};

/// Seek-time model from Section 3.2 of the paper:
///   t(0) = 0,   t(x) = a*sqrt(x-1) + b*(x-1) + c   for x >= 1.
/// `calibrate` solves a and b exactly (2x2 linear system) so that the
/// expected seek time under the uniform random-pair seek-distance
/// distribution equals `average_ms` and t(cylinders-1) == max_ms, with
/// c fixed to the single-cylinder seek time.
class SeekModel {
 public:
  SeekModel(double a, double b, double c, int cylinders);

  static SeekModel calibrate(const SeekSpec& spec);

  /// Seek time in ms for a move of `distance` cylinders (>= 0).
  double seek_time(int distance) const;

  /// Expected seek time under the uniform random-pair distribution
  /// P(d=0) = 1/C, P(d=k) = 2(C-k)/C^2; used by calibration and tests.
  double average_over_uniform() const;

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }
  int cylinders() const { return cylinders_; }

 private:
  double a_;
  double b_;
  double c_;
  int cylinders_;
};

}  // namespace raidsim
