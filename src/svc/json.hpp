#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace raidsim::svc {

/// Parse error with the byte offset of the failure, so hostile or
/// truncated protocol lines produce a pointed diagnostic, never a
/// partial parse.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Minimal JSON document model for the service protocol: null, bool,
/// double, string, array, object (string-keyed, sorted). Small on
/// purpose -- the protocol needs exactly this much, and the repo policy
/// is no third-party dependencies.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object lookup; null when missing or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Serialize (stable key order; doubles in %.17g, integral values
  /// without a fraction).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one complete JSON document. Trailing non-whitespace bytes are an
/// error (a truncated or concatenated protocol line must not half-parse).
/// Nesting depth is capped so hostile input cannot blow the stack.
JsonValue json_parse(const std::string& text);

/// Escape a string for embedding in a JSON document (quotes included).
std::string json_quote(const std::string& s);

}  // namespace raidsim::svc
