#pragma once

#include <string>

#include "svc/json.hpp"

namespace raidsim::svc {

/// Blocking NDJSON client for the what-if daemon: one connection, one
/// request line out, one response line back. Throws std::runtime_error
/// on connect/transport failure or response timeout -- protocol-level
/// rejections (overloaded, invalid, ...) are NOT exceptions; they come
/// back as parsed responses for the caller to inspect.
class Client {
 public:
  /// Connects immediately.
  explicit Client(const std::string& socket_path,
                  double recv_timeout_ms = 60000.0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (newline appended if missing) and wait for
  /// the next response line.
  std::string request_raw(const std::string& line);

  /// request_raw + strict parse.
  JsonValue request(const std::string& line);

 private:
  std::string read_line();

  int fd_ = -1;
  double recv_timeout_ms_;
  std::string buffer_;  // bytes past the last returned line
};

}  // namespace raidsim::svc
