#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>

#include "obs/metrics_registry.hpp"
#include "svc/job_codec.hpp"

namespace raidsim::svc {

namespace {

Counter& progress_drop_counter() {
  static Counter& drops = MetricsRegistry::instance().counter(
      "raidsim_svc_progress_drops_total",
      "Progress frames dropped because a subscriber's buffer was full");
  return drops;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};
  /// Set once when this connection subscribes; job responses are then
  /// routed through the subscriber's ordered queue (deliver_response)
  /// so frames and the terminal response keep their wire order.
  std::mutex sub_mu;
  std::weak_ptr<Subscriber> sub;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Serialized, full write of one response line. Returns false when the
  /// peer is gone (the connection is then marked closed; completions for
  /// in-flight jobs become no-ops rather than errors).
  bool write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (!open.load(std::memory_order_acquire)) return false;
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        open.store(false, std::memory_order_release);
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void close_now() {
    open.store(false, std::memory_order_release);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
};

/// One progress subscriber: a bounded queue between the engine threads
/// (producers, via broadcast_progress) and a dedicated drain thread
/// (the only place this subscriber's socket is written once frames can
/// flow). Producers never block on subscriber I/O: when the queue holds
/// kMaxBufferedFrames progress frames the oldest frame is dropped --
/// the newest frame is always the most useful one -- so a SIGSTOPped or
/// slow reader costs itself frames, never simulation throughput. Job
/// responses on a subscribed connection ride the same queue (marked
/// non-droppable) so a job's final frame reaches the wire before its
/// terminal response.
struct Server::Subscriber {
  static constexpr std::size_t kMaxBufferedFrames = 256;

  struct Item {
    std::string line;
    bool droppable = false;  // true for progress frames only
  };

  std::shared_ptr<Connection> conn;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  std::size_t buffered_frames = 0;  // droppable items currently queued
  std::uint64_t dropped = 0;
  bool closed = false;
  /// Drain thread exited; the entry can be reaped (join is immediate).
  std::atomic<bool> done{false};
  std::thread thread;

  /// Enqueue under mu; returns false when the drain thread is gone (the
  /// caller should fall back to a direct write or drop the frame).
  bool enqueue(std::string line, bool droppable) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return false;
    if (droppable && buffered_frames >= kMaxBufferedFrames) {
      const auto victim =
          std::find_if(queue.begin(), queue.end(),
                       [](const Item& item) { return item.droppable; });
      queue.erase(victim);  // buffered_frames > 0 => a frame exists
      --buffered_frames;
      ++dropped;
      progress_drop_counter().add(1);
    }
    if (droppable) ++buffered_frames;
    queue.push_back(Item{std::move(line), droppable});
    cv.notify_one();
    return true;
  }
};

Server::Server(Options options) : opts_(std::move(options)) {
  if (opts_.socket_path.empty())
    throw std::invalid_argument("server: socket_path is required");
  if (opts_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::invalid_argument("server: socket_path too long");

  if (::pipe(wake_pipe_) != 0)
    throw std::runtime_error("server: pipe() failed");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("server: socket() failed");

  ::unlink(opts_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw std::runtime_error("server: bind(" + opts_.socket_path +
                             ") failed: " + std::strerror(errno));
  if (::listen(listen_fd_, 64) != 0)
    throw std::runtime_error("server: listen() failed");

  supervisor_ = std::make_unique<Supervisor>(opts_.supervisor);
  progress_drop_counter();  // register eagerly so scrapes always show it
}

Server::~Server() {
  stop();
  shutdown_everything();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  ::unlink(opts_.socket_path.c_str());
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  const char byte = 'q';
  // Best effort; async-signal-safe.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::run() {
  accept_loop();
  shutdown_everything();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
      conn_threads_.emplace_back(
          [this, conn] { serve_connection(conn); });
    }
  }
}

void Server::serve_connection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  while (conn->open.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > opts_.max_line_bytes) {
      conn->write_line(encode_error_response(
          "", JobStatus::kInvalid, "request line too long"));
      break;
    }
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(conn, line);
    }
    buffer.erase(0, start);
  }
  conn->close_now();
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  JsonValue request;
  std::string id;
  try {
    request = json_parse(line);
    if (const JsonValue* idv = request.find("id");
        idv != nullptr && idv->is_string())
      id = idv->as_string();
    const JsonValue* opv = request.find("op");
    const std::string op =
        (opv != nullptr && opv->is_string()) ? opv->as_string() : "";

    if (op == "ping") {
      conn->write_line("{\"id\":" + json_quote(id) +
                       ",\"status\":\"ok\",\"op\":\"ping\"}\n");
      return;
    }
    if (op == "stats") {
      conn->write_line("{\"id\":" + json_quote(id) +
                       ",\"status\":\"ok\",\"stats\":" +
                       supervisor_->stats_json() + "}\n");
      return;
    }
    if (op == "metrics") {
      conn->write_line("{\"id\":" + json_quote(id) +
                       ",\"status\":\"ok\",\"metrics_text\":" +
                       json_quote(MetricsRegistry::instance().scrape()) +
                       "}\n");
      return;
    }
    if (op == "subscribe") {
      auto sub = std::make_shared<Subscriber>();
      sub->conn = conn;
      sub->thread = std::thread([this, sub] { drain_subscriber(sub); });
      {
        std::lock_guard<std::mutex> lock(conn->sub_mu);
        conn->sub = sub;
      }
      {
        std::lock_guard<std::mutex> lock(subs_mu_);
        subs_.push_back(sub);
      }
      conn->write_line("{\"id\":" + json_quote(id) +
                       ",\"status\":\"ok\",\"op\":\"subscribe\"}\n");
      return;
    }
    if (op == "drain") {
      conn->write_line("{\"id\":" + json_quote(id) +
                       ",\"status\":\"ok\",\"op\":\"drain\"}\n");
      stop();
      return;
    }
    if (op != "run")
      throw std::invalid_argument("unknown op '" + op + "'");

    JobRequest job = decode_job_request(request);
    if (job.id.empty()) job.id = id;
    const std::string job_id = job.id;
    supervisor_->submit(
        std::move(job),
        [this, conn, job_id](const JobResult& result) {
          deliver_response(conn, encode_job_response(result, job_id));
        },
        [this](const JobProgress& progress) { broadcast_progress(progress); });
  } catch (const std::exception& e) {
    conn->write_line(encode_error_response(id, JobStatus::kInvalid, e.what()));
  }
}

void Server::broadcast_progress(const JobProgress& progress) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  // Reap subscribers whose drain thread already exited (peer gone).
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [](const std::shared_ptr<Subscriber>& sub) {
                               if (!sub->done.load(std::memory_order_acquire))
                                 return false;
                               if (sub->thread.joinable()) sub->thread.join();
                               return true;
                             }),
              subs_.end());
  if (subs_.empty()) return;
  const std::string line = encode_progress_frame(progress);
  for (auto& sub : subs_) sub->enqueue(line, /*droppable=*/true);
}

void Server::deliver_response(const std::shared_ptr<Connection>& conn,
                              std::string line) {
  // A subscribed connection's job responses go through its subscriber
  // queue: the job's final progress frame was enqueued before this
  // completion fired, so queue order is wire order. Everyone else gets
  // the direct (serialized, blocking) write as before.
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard<std::mutex> lock(conn->sub_mu);
    sub = conn->sub.lock();
  }
  if (sub != nullptr && sub->enqueue(line, /*droppable=*/false)) return;
  conn->write_line(line);
}

void Server::drain_subscriber(const std::shared_ptr<Subscriber>& sub) {
  for (;;) {
    Subscriber::Item item;
    {
      std::unique_lock<std::mutex> lock(sub->mu);
      // Timed wait so a subscriber whose peer vanished while idle (no
      // frames flowing) is noticed and reaped instead of pinning the
      // connection until shutdown.
      while (!sub->closed && sub->queue.empty() &&
             sub->conn->open.load(std::memory_order_acquire))
        sub->cv.wait_for(lock, std::chrono::milliseconds(100));
      if (sub->queue.empty()) break;  // closed/dead and fully flushed
      item = std::move(sub->queue.front());
      sub->queue.pop_front();
      if (item.droppable) --sub->buffered_frames;
    }
    // Blocking is fine here: this thread serves exactly one subscriber,
    // and close_now()'s shutdown(2) unwedges a send stuck on a full
    // socket buffer.
    if (!sub->conn->write_line(item.line)) break;
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->closed = true;
    sub->queue.clear();
    sub->buffered_frames = 0;
  }
  sub->done.store(true, std::memory_order_release);
}

void Server::shutdown_everything() {
  // Order matters: drain first so every in-flight completion writes its
  // response while connections are still open, THEN close connections.
  if (supervisor_) {
    supervisor_->drain();
    if (opts_.log_final_stats && !final_stats_logged_.exchange(true))
      std::fprintf(stderr, "raidsim_serve: final stats %s\n",
                   supervisor_->stats_json().c_str());
  }
  // Subscriber queues may still hold responses enqueued by the drain
  // above. Close the queues (drain threads flush what is buffered, then
  // exit) and give them a bounded grace period BEFORE closing sockets,
  // so a healthy subscriber receives every terminal response while a
  // wedged one cannot hang shutdown.
  auto close_subscribers = [](std::vector<std::shared_ptr<Subscriber>>& subs) {
    for (auto& sub : subs) {
      {
        std::lock_guard<std::mutex> lock(sub->mu);
        sub->closed = true;
      }
      sub->cv.notify_all();
    }
  };
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs.swap(subs_);
  }
  close_subscribers(subs);
  const auto flush_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (auto& sub : subs)
    while (!sub->done.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < flush_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    threads.swap(conn_threads_);
  }
  // close_now() unwedges any drain thread still stuck in send().
  for (auto& conn : conns) conn->close_now();
  for (auto& t : threads) t.join();

  // Connection threads are joined, so no further subscriber can appear;
  // sweep any that subscribed after the first swap, then join them all.
  std::vector<std::shared_ptr<Subscriber>> stragglers;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    stragglers.swap(subs_);
  }
  close_subscribers(stragglers);
  subs.insert(subs.end(), stragglers.begin(), stragglers.end());
  for (auto& sub : subs)
    if (sub->thread.joinable()) sub->thread.join();
}

}  // namespace raidsim::svc
