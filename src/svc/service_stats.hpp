#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace raidsim::svc {

/// Lock-free service counters, exported by the `/stats` protocol op and
/// flushed to the log on drain. Every admission decision and terminal
/// job state increments exactly one counter, so
///   submitted == completed + rejected_overload + rejected_draining +
///                rejected_invalid
/// holds whenever the service is idle -- the overload drill asserts it.
struct ServiceStats {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed_ok{0};
  std::atomic<std::uint64_t> completed_cached{0};  // subset of completed_ok
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> rejected_draining{0};
  std::atomic<std::uint64_t> rejected_invalid{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> watchdog_kills{0};
  std::atomic<std::uint64_t> peak_queue_depth{0};

  void note_queue_depth(std::uint64_t depth) {
    std::uint64_t prev = peak_queue_depth.load(std::memory_order_relaxed);
    while (prev < depth && !peak_queue_depth.compare_exchange_weak(
                               prev, depth, std::memory_order_relaxed)) {
    }
  }

  /// Terminal completions of admitted jobs (every admitted job reaches
  /// exactly one of these).
  std::uint64_t terminal() const {
    return completed_ok.load() + failed.load() + cancelled.load() +
           deadline_expired.load();
  }

  std::string to_json(std::size_t queue_depth, std::size_t running,
                      std::size_t cache_size, std::uint64_t cache_hits,
                      std::uint64_t cache_misses,
                      std::uint64_t cache_evictions) const;
};

}  // namespace raidsim::svc
