#pragma once

#include <string>

#include "svc/job.hpp"
#include "svc/json.hpp"

namespace raidsim::svc {

/// Decode a parsed `{"op":"run", ...}` request into a JobRequest.
/// Strict: unknown keys, wrong types, and out-of-range values throw
/// std::invalid_argument with a message naming the key -- hostile input
/// gets a typed `invalid` response, never a partially-applied config.
/// The embedded SimulationConfig is additionally passed through
/// SimulationConfig::validate().
JobRequest decode_job_request(const JsonValue& request);

/// Encode the full JobRequest (including the workload) back to the
/// config JSON the protocol accepts -- used by clients and tests to
/// round-trip requests.
std::string encode_job_request(const JobRequest& request);

/// One NDJSON response line (newline included). `metrics_json` is
/// embedded verbatim for kOk results, so cache hits are byte-identical
/// to fresh runs at the protocol level too.
std::string encode_job_response(const JobResult& result,
                                const std::string& id);

/// Typed error line for requests that never became jobs (protocol
/// errors, unknown ops).
std::string encode_error_response(const std::string& id, JobStatus status,
                                  const std::string& error);

/// One streamed progress line (newline included):
///   {"type":"progress","id":...,"attempt":1,"events":N,"sim_ms":T,
///    "done":D,"total":R,"percent":P,"eta_ms":E,"final":false}
/// `percent`/`eta_ms` are omitted when unknown. Response lines never
/// carry "type", so clients can split frames from terminal responses on
/// that key alone.
std::string encode_progress_frame(const JobProgress& progress);

}  // namespace raidsim::svc
