#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "core/workloads.hpp"

namespace raidsim::svc {

/// Failure taxonomy of the what-if service. Every job submitted to the
/// daemon terminates in exactly one of these states and the client is
/// always told which -- there is no silent drop and no unbounded wait.
enum class JobStatus : std::uint8_t {
  kOk = 0,      // metrics produced (fresh run or cache hit)
  kInvalid,     // config/request rejected by validation, never queued
  kOverloaded,  // admission control shed the job (queue full)
  kDraining,    // server is draining; not admitting new work
  kFailed,      // ran but threw (after exhausting transient retries)
  kCancelled,   // cancelled by shutdown drain or the stuck-job watchdog
  kDeadline,    // per-job deadline expired (queued or mid-run)
};

const char* to_string(JobStatus status);

/// Transient job failure: the supervisor retries these with capped
/// exponential backoff before reporting kFailed. Anything else a job
/// throws is treated as deterministic and fails immediately.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One what-if query: a full simulation point plus service policy knobs.
struct JobRequest {
  SimulationConfig config;
  std::string trace = "trace2";  // "trace1" or "trace2"
  WorkloadOptions workload;

  /// Wall-clock deadline measured from admission; 0 = none. An expired
  /// job is cancelled cooperatively mid-run (or skipped if still
  /// queued) and reported as kDeadline.
  double deadline_ms = 0.0;
  /// Transient-failure retries allowed (capped by the supervisor).
  int max_retries = 0;
  /// Bypass the result-cache lookup (the fresh result is still stored).
  /// The overload drill uses this to assert hit/fresh byte-identity.
  bool no_cache = false;
  /// Test hook: make the first `fail_first` attempts throw
  /// TransientError, to exercise the retry/backoff path end to end.
  int fail_first = 0;
  /// Client correlation id, echoed verbatim in the response.
  std::string id;
};

/// Terminal outcome of one job.
struct JobResult {
  JobStatus status = JobStatus::kFailed;
  std::string error;            // non-ok: human-readable cause
  std::string metrics_json;     // kOk only: Metrics::to_json bytes
  bool cached = false;          // kOk only: served from the result cache
  int attempts = 0;             // simulation attempts actually made
  std::uint64_t fingerprint = 0;  // job_fingerprint of the request
  double queue_ms = 0.0;        // admission -> worker pickup
  double run_ms = 0.0;          // worker pickup -> terminal state
  /// Abnormal terminations with the flight recorder on: path of the
  /// Chrome-trace artifact the recorder dumped (empty otherwise).
  std::string flight_out;
};

/// One streamed progress observation for a running job, derived from the
/// engines' batch-boundary snapshots (sim/progress.hpp) plus wall-clock
/// bookkeeping. Successive frames for one attempt are monotone in
/// `events` and `sim_ms`; the supervisor throttles emission to its
/// progress_interval_ms.
struct JobProgress {
  std::string id;               // client correlation id
  std::uint64_t fingerprint = 0;
  int attempt = 1;
  std::uint64_t events = 0;     // kernel events executed so far
  double sim_ms = 0.0;          // simulated time reached
  std::uint64_t done = 0;       // trace records completed
  std::uint64_t total = 0;      // trace records in the job (0 = unknown)
  double percent = -1.0;        // 0..100, -1 when total is unknown
  double eta_ms = -1.0;         // wall-clock estimate, -1 when unknown
  bool final_frame = false;     // engine finished (terminal result follows)
};

inline const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kInvalid: return "invalid";
    case JobStatus::kOverloaded: return "overloaded";
    case JobStatus::kDraining: return "draining";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadline: return "deadline";
  }
  return "unknown";
}

}  // namespace raidsim::svc
