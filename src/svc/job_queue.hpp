#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace raidsim::svc {

/// Bounded MPMC queue -- the admission-control chokepoint of the
/// daemon. Producers never block: try_push either accepts the item or
/// returns false immediately (a typed `overloaded` rejection upstream).
/// Consumers block in pop() until an item arrives or the queue is
/// closed. Closing wakes every consumer; a closed queue rejects pushes
/// and drains remaining items before pop() starts returning nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission: false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop -- used by drain to fail queued jobs immediately.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop admitting; consumers drain the backlog then see nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::size_t capacity_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace raidsim::svc
