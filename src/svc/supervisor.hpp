#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/tracer.hpp"
#include "sim/cancellation.hpp"
#include "sim/progress.hpp"
#include "svc/job.hpp"
#include "svc/job_queue.hpp"
#include "svc/result_cache.hpp"
#include "svc/service_stats.hpp"

namespace raidsim::svc {

/// Job supervisor: the robustness core of the what-if service.
///
///  - Admission control: a bounded queue; a full queue is a synchronous
///    typed kOverloaded rejection, never a blocked producer.
///  - Deadlines: the watchdog cancels over-deadline running jobs through
///    their CancelToken (polled by the engines at event-batch
///    boundaries); queued jobs are rechecked at pickup.
///  - Retries: TransientError is retried with capped exponential backoff
///    (interruptible by cancellation); everything else fails fast.
///  - Result cache: canonical-key LRU serving byte-identical metrics.
///  - Watchdog: jobs running past `stuck_job_ms` are cancelled and
///    reported -- a wedged simulation cannot pin a worker forever.
///  - Drain: stop admitting, let in-flight work finish inside the drain
///    budget, then cancel the rest. Every admitted job still completes
///    with a typed terminal status.
///
/// The completion callback is invoked exactly once per submit() -- on
/// the caller's thread for synchronous outcomes (invalid, overloaded,
/// draining, cache hit) and on a worker thread otherwise. Callbacks
/// must be thread-safe and must not call back into the Supervisor.
class Supervisor {
 public:
  struct Options {
    int workers = 2;
    std::size_t queue_capacity = 8;
    std::size_t cache_capacity = 128;
    /// Hard cap on any job's max_retries request.
    int retry_cap = 5;
    /// Exponential backoff: base * 2^(attempt-1), capped.
    double backoff_base_ms = 5.0;
    double backoff_cap_ms = 250.0;
    /// Watchdog scan period.
    double watchdog_period_ms = 20.0;
    /// > 0: cancel jobs running longer than this (the stuck-job guard).
    double stuck_job_ms = 0.0;
    /// Drain: how long to let in-flight + queued work finish before
    /// cancelling what is left.
    double drain_budget_ms = 5000.0;
    /// Record service-level spans (job-queue / job-run) and instants.
    bool tracing = false;
    /// Minimum wall-clock spacing between progress frames per job (the
    /// engines observe every 4096 events; the wire does not need to).
    double progress_interval_ms = 50.0;
    /// Non-empty: flight recorder. Every job traces into a small ring
    /// (`flight_events` capacity) and abnormal terminations (deadline,
    /// watchdog, shutdown cancel, exhausted retries) dump it as a
    /// Chrome-trace artifact under this directory; the result's
    /// `flight_out` carries the path.
    std::string flight_dir{};
    std::size_t flight_events = 4096;
  };

  using Completion = std::function<void(const JobResult&)>;
  using Progress = std::function<void(const JobProgress&)>;

  explicit Supervisor(Options options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Submit one job. The completion always fires exactly once. A
  /// non-null `progress` receives throttled JobProgress frames while the
  /// simulation runs (from the worker or shard threads -- must be
  /// thread-safe); all frames precede the completion.
  void submit(JobRequest request, Completion done, Progress progress);
  void submit(JobRequest request, Completion done) {
    submit(std::move(request), std::move(done), nullptr);
  }

  /// Stop admitting, finish or cancel everything, join the workers.
  /// Idempotent; also run by the destructor.
  void drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Queue depth + running count + cache counters as one JSON object.
  std::string stats_json() const;

  const ServiceStats& stats() const { return stats_; }
  ResultCache& cache() { return cache_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t running() const;

  /// Service-level tracer (null unless Options::tracing). Single
  /// consumer only once the service is drained.
  const Tracer* tracer() const { return tracer_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    JobRequest request;
    Completion done;
    Progress progress;        // null = no frames
    std::string key;          // canonical cache key
    std::uint64_t fingerprint = 0;
    /// Process-unique admission number; keeps flight artifacts of
    /// concurrent identical requests (same fingerprint) from colliding.
    std::uint64_t seq = 0;
    CancelToken token;        // stable address for the engines
    Clock::time_point admitted{};
    Clock::time_point deadline{};  // epoch when none
    bool has_deadline = false;
    Clock::time_point started{};
    Clock::time_point attempt_started{};  // current simulation attempt
    /// Throttle state for progress frames, nanoseconds since the
    /// supervisor epoch; CAS-claimed so concurrent shard boundaries emit
    /// at most one frame per interval.
    std::atomic<std::int64_t> last_frame_ns{-1};
    int attempt = 0;
    std::uint64_t queue_span = 0;
    std::uint64_t run_span = 0;
  };
  using JobPtr = std::shared_ptr<Job>;

  void worker_loop();
  void watchdog_loop();
  void run_job(const JobPtr& job);
  void complete(const JobPtr& job, JobResult result);
  /// Engine snapshot -> throttled JobProgress frame.
  void on_engine_progress(const JobPtr& job, const ProgressSnapshot& snap);
  /// Flight artifact prefix for one attempt of a job (empty = disabled).
  std::string flight_prefix(const JobPtr& job, int attempt) const;
  /// Interruptible backoff sleep; returns false when cancelled.
  bool backoff_sleep(const JobPtr& job, int attempt);

  double now_ms() const;
  std::uint64_t span_begin(ObsPhase phase, int track);
  void span_end(std::uint64_t id, ObsPhase phase, int track);
  void span_instant(ObsPhase phase, int track);

  Options opts_;
  ServiceStats stats_;
  ResultCache cache_;
  BoundedQueue<JobPtr> queue_;

  mutable std::mutex running_mu_;
  std::vector<JobPtr> running_;

  std::unique_ptr<Tracer> tracer_;
  std::mutex tracer_mu_;
  Clock::time_point epoch_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> job_seq_{0};
  /// Jobs between queue pop and completion -- covers the window before a
  /// job lands in running_, so drain's idle check cannot fire early.
  std::atomic<int> active_{0};
  std::mutex drain_mu_;
  bool drained_ = false;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace raidsim::svc
