#include "svc/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace raidsim::svc {

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JSON: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("JSON: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("JSON: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("JSON: not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonValue::dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      if (std::isfinite(number_) &&
          number_ == static_cast<double>(static_cast<long long>(number_))) {
        return std::to_string(static_cast<long long>(number_));
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      return buf;
    }
    case Type::kString:
      return json_quote(string_);
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key);
        out += ':';
        out += value.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (i_ < s_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON: " + what, i_);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c)
      fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't': literal("true"); return JsonValue(true);
      case 'f': literal("false"); return JsonValue(false);
      case 'n': literal("null"); return JsonValue();
      default: return JsonValue(parse_number());
    }
  }

  void literal(const char* word) {
    skip_ws();
    for (const char* p = word; *p; ++p, ++i_)
      if (i_ >= s_.size() || s_[i_] != *p)
        fail(std::string("expected '") + word + "'");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; lone surrogates encode as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  double parse_number() {
    skip_ws();
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    if (!std::isfinite(v)) fail("number out of range");
    i_ += static_cast<std::size_t>(end - start);
    return v;
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array out;
    if (consume(']')) return JsonValue(std::move(out));
    do {
      out.push_back(parse_value(depth + 1));
    } while (consume(','));
    expect(']');
    return JsonValue(std::move(out));
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object out;
    if (consume('}')) return JsonValue(std::move(out));
    do {
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      out[std::move(key)] = parse_value(depth + 1);
    } while (consume(','));
    expect('}');
    return JsonValue(std::move(out));
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace raidsim::svc
