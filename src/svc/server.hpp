#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/supervisor.hpp"

namespace raidsim::svc {

/// Newline-delimited-JSON what-if daemon over a local (AF_UNIX) stream
/// socket. One line in = one request; one line out = one typed response.
/// Requests on one connection may be pipelined; `run` responses come
/// back in completion order, matched by the client-supplied `id`.
///
/// Ops:
///   {"op":"ping"}                    -> {"status":"ok","op":"ping"}
///   {"op":"stats"}                   -> {"status":"ok","stats":{...}}
///   {"op":"metrics"}                 -> {"status":"ok","metrics_text":"..."}
///                                       (Prometheus text exposition)
///   {"op":"subscribe"}               -> ack, then this connection also
///                                       receives every job's progress
///                                       frames ({"type":"progress",...})
///                                       interleaved with its responses.
///                                       Delivery is best-effort: a
///                                       reader that falls behind loses
///                                       oldest frames first and can
///                                       never stall a simulation.
///   {"op":"drain"}                   -> ack, then graceful shutdown
///   {"op":"run","config":{...},...}  -> job response (svc/job_codec.hpp);
///                                       progress frames stream to
///                                       subscribers while it runs
///
/// Shutdown (drain op, stop() from a signal handler, or destruction)
/// always: stops admitting (late jobs get typed `draining` responses),
/// drains the supervisor inside its budget, flushes final stats to
/// stderr, then closes connections and the socket.
class Server {
 public:
  struct Options {
    std::string socket_path;
    Supervisor::Options supervisor;
    /// Protocol lines above this are rejected (typed invalid), the
    /// connection dropped -- hostile input cannot balloon memory.
    std::size_t max_line_bytes = 1u << 20;
    /// Print final stats JSON to stderr on shutdown.
    bool log_final_stats = true;
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until stop() or a drain request. Blocks the calling thread.
  void run();

  /// Request graceful shutdown. Async-signal-safe (one write to a
  /// self-pipe); callable from a SIGTERM handler.
  void stop();

  const std::string& socket_path() const { return opts_.socket_path; }
  Supervisor& supervisor() { return *supervisor_; }

 private:
  struct Connection;
  struct Subscriber;

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  /// Fan one encoded progress line out to every live subscriber. Called
  /// from worker/shard threads, so it must never block on subscriber
  /// I/O: it only appends to each subscriber's bounded frame buffer
  /// (dropping the oldest frame when full) and wakes that subscriber's
  /// drain thread, which does the actual blocking writes.
  void broadcast_progress(const JobProgress& progress);
  /// Deliver a job's terminal response. Subscribed connections get it
  /// through their subscriber queue (non-droppable, behind any already
  /// queued frames -- notably the job's final frame) so queue order is
  /// wire order; everyone else gets the direct serialized write.
  void deliver_response(const std::shared_ptr<Connection>& conn,
                        std::string line);
  /// Per-subscriber writer loop: pops buffered frames and writes them to
  /// the socket. A stalled or vanished subscriber blocks only this
  /// thread; its buffer overflows (frames drop) and the engines run on.
  void drain_subscriber(const std::shared_ptr<Subscriber>& sub);
  void shutdown_everything();

  Options opts_;
  std::unique_ptr<Supervisor> supervisor_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> final_stats_logged_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;

  /// Progress firehose: one buffered writer per subscriber so a slow
  /// reader can never stall the simulation threads. Finished entries
  /// are reaped on each broadcast; stragglers are joined at shutdown.
  std::mutex subs_mu_;
  std::vector<std::shared_ptr<Subscriber>> subs_;
};

}  // namespace raidsim::svc
