#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace raidsim::svc {

/// Thread-safe LRU cache of simulation results, keyed by the full
/// canonical job key (core/job_key.hpp). The full string -- not its
/// hash -- is the identity, so two distinct configs can never alias to
/// each other's metrics no matter what the hash does. Values are the
/// exact Metrics::to_json bytes of the fresh run; a hit is served
/// byte-identically.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns true and copies the cached metrics bytes on a hit.
  bool lookup(const std::string& key, std::string* metrics_json);

  /// Insert (or refresh) an entry, evicting the least-recently-used
  /// entries above capacity.
  void insert(const std::string& key, const std::string& metrics_json);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::string metrics_json;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace raidsim::svc
