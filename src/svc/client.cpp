#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace raidsim::svc {

Client::Client(const std::string& socket_path, double recv_timeout_ms)
    : recv_timeout_ms_(recv_timeout_ms) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::runtime_error("client: socket path too long");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("client: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: connect(" + socket_path +
                             ") failed: " + std::strerror(errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::request_raw(const std::string& line) {
  std::string out = line;
  if (out.empty() || out.back() != '\n') out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  return read_line();
}

JsonValue Client::request(const std::string& line) {
  return json_parse(request_raw(line));
}

std::string Client::read_line() {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             recv_timeout_ms_));
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0)
      throw std::runtime_error("client: response timeout");
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: poll failed");
    }
    if (rc == 0) throw std::runtime_error("client: response timeout");
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: recv failed: " +
                               std::string(std::strerror(errno)));
    }
    if (n == 0)
      throw std::runtime_error("client: server closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace raidsim::svc
