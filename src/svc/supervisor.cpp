#include "svc/supervisor.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/job_key.hpp"
#include "obs/metrics_registry.hpp"
#include "runner/sweep_runner.hpp"

namespace raidsim::svc {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Live registry mirror of the service taxonomy. ServiceStats remains
/// the source the `stats` op serves; these feed the Prometheus scrape
/// (`metrics` op) and raidsim_top.
struct SvcMetrics {
  Counter& submitted = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_submitted_total", "Jobs submitted to the supervisor");
  Counter& ok = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_ok_total", "Jobs completed with metrics");
  Counter& cached = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_cached_total", "Jobs served from the result cache");
  Counter& overloaded = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_overloaded_total", "Jobs shed by admission control");
  Counter& draining = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_draining_total", "Jobs rejected while draining");
  Counter& invalid = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_invalid_total", "Jobs rejected by validation");
  Counter& failed = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_failed_total", "Jobs that failed terminally");
  Counter& cancelled = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_cancelled_total",
      "Jobs cancelled by drain or watchdog");
  Counter& deadline = MetricsRegistry::instance().counter(
      "raidsim_svc_jobs_deadline_total", "Jobs that missed their deadline");
  Counter& retries = MetricsRegistry::instance().counter(
      "raidsim_svc_retries_total", "Transient-failure retry attempts");
  Counter& watchdog_kills = MetricsRegistry::instance().counter(
      "raidsim_svc_watchdog_kills_total", "Stuck jobs killed by the watchdog");
  Counter& cache_hits = MetricsRegistry::instance().counter(
      "raidsim_svc_cache_hits_total", "Result-cache lookup hits");
  Counter& cache_misses = MetricsRegistry::instance().counter(
      "raidsim_svc_cache_misses_total", "Result-cache lookup misses");
  Counter& progress_frames = MetricsRegistry::instance().counter(
      "raidsim_svc_progress_frames_total", "Progress frames emitted");
  Counter& flight_dumps = MetricsRegistry::instance().counter(
      "raidsim_svc_flight_dumps_total", "Flight-recorder artifacts dumped");
  Gauge& queue_depth = MetricsRegistry::instance().gauge(
      "raidsim_svc_queue_depth", "Jobs waiting in the admission queue");
  Gauge& inflight = MetricsRegistry::instance().gauge(
      "raidsim_svc_inflight", "Jobs currently running on workers");
  HistogramMetric& queue_ms = MetricsRegistry::instance().histogram(
      "raidsim_svc_job_queue_ms", "Wall ms from admission to worker pickup");
  HistogramMetric& run_ms = MetricsRegistry::instance().histogram(
      "raidsim_svc_job_run_ms", "Wall ms from worker pickup to terminal state");
};

SvcMetrics& svc_metrics() {
  static SvcMetrics metrics;
  return metrics;
}

}  // namespace

Supervisor::Supervisor(Options options)
    : opts_(options),
      cache_(options.cache_capacity),
      queue_(std::max<std::size_t>(1, options.queue_capacity)),
      epoch_(Clock::now()) {
  opts_.workers = std::max(1, opts_.workers);
  if (opts_.tracing)
    tracer_ = std::make_unique<Tracer>(Tracer::Config{1u << 16});
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Supervisor::~Supervisor() { drain(); }

double Supervisor::now_ms() const { return elapsed_ms(epoch_, Clock::now()); }

std::uint64_t Supervisor::span_begin(ObsPhase phase, int track) {
  if (!tracer_) return 0;
  std::lock_guard<std::mutex> lock(tracer_mu_);
  return tracer_->begin(phase, 0, track, now_ms());
}

void Supervisor::span_end(std::uint64_t id, ObsPhase phase, int track) {
  if (!tracer_ || id == 0) return;
  std::lock_guard<std::mutex> lock(tracer_mu_);
  tracer_->end(id, phase, 0, track, now_ms());
}

void Supervisor::span_instant(ObsPhase phase, int track) {
  if (!tracer_) return;
  std::lock_guard<std::mutex> lock(tracer_mu_);
  tracer_->instant(phase, 0, track, now_ms());
}

std::size_t Supervisor::running() const {
  std::lock_guard<std::mutex> lock(running_mu_);
  return running_.size();
}

void Supervisor::submit(JobRequest request, Completion done,
                        Progress progress) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  svc_metrics().submitted.add(1);

  auto reject = [&](JobStatus status, const std::string& error,
                    std::uint64_t fingerprint) {
    JobResult result;
    result.status = status;
    result.error = error;
    result.fingerprint = fingerprint;
    span_instant(ObsPhase::kJobRejected, static_cast<int>(status));
    done(result);
  };

  // Validate before anything else: a bad config is a typed kInvalid and
  // never reaches the queue (direct API callers bypass the codec's own
  // validation, so revalidate here).
  try {
    request.config.validate();
    if (request.trace != "trace1" && request.trace != "trace2")
      throw std::invalid_argument("unknown trace '" + request.trace + "'");
  } catch (const std::exception& e) {
    stats_.rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    svc_metrics().invalid.add(1);
    reject(JobStatus::kInvalid, e.what(), 0);
    return;
  }

  const std::string key =
      job_canonical_key(request.config, request.trace, request.workload);
  const std::uint64_t fingerprint = fnv1a64(key);

  if (draining_.load(std::memory_order_acquire)) {
    stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    svc_metrics().draining.add(1);
    reject(JobStatus::kDraining, "server is draining", fingerprint);
    return;
  }

  // Cache hits are served at admission: no queue slot, no worker, and
  // the stored bytes are returned verbatim (byte-identical to the fresh
  // run that produced them).
  if (!request.no_cache) {
    std::string cached_json;
    if (cache_.lookup(key, &cached_json)) {
      JobResult result;
      result.status = JobStatus::kOk;
      result.cached = true;
      result.metrics_json = std::move(cached_json);
      result.fingerprint = fingerprint;
      stats_.completed_ok.fetch_add(1, std::memory_order_relaxed);
      stats_.completed_cached.fetch_add(1, std::memory_order_relaxed);
      svc_metrics().cache_hits.add(1);
      svc_metrics().ok.add(1);
      svc_metrics().cached.add(1);
      done(result);
      return;
    }
    svc_metrics().cache_misses.add(1);
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->done = std::move(done);
  job->progress = std::move(progress);
  job->key = key;
  job->fingerprint = fingerprint;
  job->seq = job_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  job->admitted = Clock::now();
  if (job->request.deadline_ms > 0.0) {
    job->has_deadline = true;
    job->deadline =
        job->admitted + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                job->request.deadline_ms));
  }
  job->queue_span = span_begin(ObsPhase::kJobQueue, 0);

  if (!queue_.try_push(job)) {
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    svc_metrics().overloaded.add(1);
    span_end(job->queue_span, ObsPhase::kJobQueue, 0);
    JobResult result;
    result.status = JobStatus::kOverloaded;
    result.error = "queue full (" + std::to_string(queue_.capacity()) +
                   " jobs); retry later";
    result.fingerprint = fingerprint;
    span_instant(ObsPhase::kJobRejected,
                 static_cast<int>(JobStatus::kOverloaded));
    job->done(result);
    return;
  }
  stats_.note_queue_depth(queue_.size());
  svc_metrics().queue_depth.set(static_cast<double>(queue_.size()));
}

void Supervisor::worker_loop() {
  for (;;) {
    std::optional<JobPtr> item = queue_.pop();
    if (!item) return;
    active_.fetch_add(1, std::memory_order_acq_rel);
    run_job(*item);
    active_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Supervisor::run_job(const JobPtr& job) {
  job->started = Clock::now();
  span_end(job->queue_span, ObsPhase::kJobQueue, 0);

  JobResult result;
  result.fingerprint = job->fingerprint;
  result.queue_ms = elapsed_ms(job->admitted, job->started);
  svc_metrics().queue_depth.set(static_cast<double>(queue_.size()));
  svc_metrics().queue_ms.observe(result.queue_ms);

  // Jobs that died in the queue never burn a simulation.
  if (shutdown_.load(std::memory_order_acquire)) {
    result.status = JobStatus::kCancelled;
    result.error = "cancelled by shutdown drain";
    complete(job, std::move(result));
    return;
  }
  if (job->has_deadline && Clock::now() >= job->deadline) {
    result.status = JobStatus::kDeadline;
    result.error = "deadline expired while queued";
    span_instant(ObsPhase::kJobDeadline, 0);
    complete(job, std::move(result));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(running_mu_);
    running_.push_back(job);
  }
  svc_metrics().inflight.add(1.0);
  job->run_span = span_begin(ObsPhase::kJobRun, 0);

  const int retries = std::min(job->request.max_retries, opts_.retry_cap);
  int attempt = 0;
  std::string flight;  // prefix of the attempt that unwound last
  for (;;) {
    ++attempt;
    result.attempts = attempt;
    job->attempt = attempt;
    job->attempt_started = Clock::now();
    job->last_frame_ns.store(-1, std::memory_order_relaxed);
    try {
      if (attempt <= job->request.fail_first)
        throw TransientError("injected transient failure (attempt " +
                             std::to_string(attempt) + ")");
      SweepJob sweep;
      sweep.config = job->request.config;
      sweep.trace = job->request.trace;
      sweep.workload = job->request.workload;
      sweep.cancel = &job->token;
      if (job->progress) {
        JobPtr self = job;
        sweep.progress = [this, self](const ProgressSnapshot& snap) {
          on_engine_progress(self, snap);
        };
      }
      if (!opts_.flight_dir.empty()) {
        flight = flight_prefix(job, attempt);
        sweep.flight_out = flight;
        sweep.flight_events = opts_.flight_events;
      }
      Metrics metrics = run_sweep_job(sweep);
      std::ostringstream os;
      metrics.to_json(os);
      result.status = JobStatus::kOk;
      result.metrics_json = os.str();
      // Store even when the lookup was bypassed, so a no_cache probe
      // still primes the cache for the byte-identity check.
      cache_.insert(job->key, result.metrics_json);
      break;
    } catch (const TransientError& e) {
      if (attempt <= retries) {
        stats_.retries.fetch_add(1, std::memory_order_relaxed);
        svc_metrics().retries.add(1);
        span_instant(ObsPhase::kJobRetry, attempt);
        if (backoff_sleep(job, attempt)) continue;
        result.status = JobStatus::kCancelled;
        result.error = "cancelled during retry backoff";
        break;
      }
      result.status = JobStatus::kFailed;
      result.error = std::string("transient failure persisted: ") + e.what();
      break;
    } catch (const CancelledError& e) {
      switch (e.reason()) {
        case CancelReason::kDeadline:
          result.status = JobStatus::kDeadline;
          result.error = "deadline expired mid-run";
          break;
        case CancelReason::kWatchdog:
          result.status = JobStatus::kCancelled;
          result.error = "watchdog cancelled a stuck job";
          break;
        default:
          result.status = JobStatus::kCancelled;
          result.error = "cancelled by shutdown drain";
          break;
      }
      break;
    } catch (const std::exception& e) {
      result.status = JobStatus::kFailed;
      result.error = e.what();
      break;
    } catch (...) {
      result.status = JobStatus::kFailed;
      result.error = "unknown exception";
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(running_mu_);
    running_.erase(std::remove(running_.begin(), running_.end(), job),
                   running_.end());
  }
  svc_metrics().inflight.add(-1.0);

  // Abnormal termination with the flight recorder on: the sweep dumped
  // the span ring before unwinding -- surface the artifact path.
  if (!flight.empty() && result.status != JobStatus::kOk) {
    if (file_exists(flight + ".trace.json"))
      result.flight_out = flight + ".trace.json";
    else if (file_exists(flight + "_shard0.trace.json"))
      result.flight_out = flight + "_shard0.trace.json";
    if (!result.flight_out.empty()) svc_metrics().flight_dumps.add(1);
  }

  span_end(job->run_span, ObsPhase::kJobRun, result.attempts);
  complete(job, std::move(result));
}

void Supervisor::on_engine_progress(const JobPtr& job,
                                    const ProgressSnapshot& snap) {
  // Throttle: non-final frames claim the next emission slot with a CAS
  // on the last-emitted wall time; losers (concurrent shard boundaries,
  // too-soon batches) drop the frame. Final frames always go out.
  const auto now = Clock::now();
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count();
  if (!snap.final_frame) {
    const std::int64_t interval_ns = static_cast<std::int64_t>(
        std::max(0.0, opts_.progress_interval_ms) * 1e6);
    std::int64_t last = job->last_frame_ns.load(std::memory_order_relaxed);
    for (;;) {
      if (last >= 0 && now_ns - last < interval_ns) return;
      if (job->last_frame_ns.compare_exchange_weak(last, now_ns,
                                                   std::memory_order_relaxed))
        break;
    }
  } else {
    job->last_frame_ns.store(now_ns, std::memory_order_relaxed);
  }

  JobProgress frame;
  frame.id = job->request.id;
  frame.fingerprint = job->fingerprint;
  frame.attempt = job->attempt;
  frame.events = snap.events;
  frame.sim_ms = snap.sim_ms;
  frame.done = snap.done;
  frame.total = snap.total;
  frame.final_frame = snap.final_frame;
  if (snap.total > 0) {
    const double frac =
        std::min(1.0, static_cast<double>(snap.done) /
                          static_cast<double>(snap.total));
    frame.percent = 100.0 * frac;
    if (snap.done > 0 && snap.done < snap.total) {
      const double wall = elapsed_ms(job->attempt_started, now);
      frame.eta_ms = wall * static_cast<double>(snap.total - snap.done) /
                     static_cast<double>(snap.done);
    } else if (snap.done >= snap.total) {
      frame.eta_ms = 0.0;
    }
  }
  svc_metrics().progress_frames.add(1);
  job->progress(frame);
}

std::string Supervisor::flight_prefix(const JobPtr& job, int attempt) const {
  // The job sequence number keeps concurrent identical requests (same
  // fingerprint, e.g. a no_cache pair) from overwriting each other's
  // artifact.
  char name[96];
  std::snprintf(name, sizeof(name), "/flight_%016llx_j%llu_a%d",
                static_cast<unsigned long long>(job->fingerprint),
                static_cast<unsigned long long>(job->seq), attempt);
  return opts_.flight_dir + name;
}

bool Supervisor::backoff_sleep(const JobPtr& job, int attempt) {
  double delay = opts_.backoff_base_ms * std::pow(2.0, attempt - 1);
  delay = std::min(delay, opts_.backoff_cap_ms);
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(delay));
  // Sleep in small slices so cancellation (deadline, watchdog, drain)
  // interrupts the backoff promptly.
  while (Clock::now() < until) {
    if (job->token.cancelled()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return !job->token.cancelled();
}

void Supervisor::complete(const JobPtr& job, JobResult result) {
  result.run_ms = elapsed_ms(job->started, Clock::now());
  svc_metrics().run_ms.observe(result.run_ms);
  switch (result.status) {
    case JobStatus::kOk:
      stats_.completed_ok.fetch_add(1, std::memory_order_relaxed);
      svc_metrics().ok.add(1);
      break;
    case JobStatus::kFailed:
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
      svc_metrics().failed.add(1);
      break;
    case JobStatus::kCancelled:
      stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
      svc_metrics().cancelled.add(1);
      break;
    case JobStatus::kDeadline:
      stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      svc_metrics().deadline.add(1);
      break;
    default:
      break;  // rejections are counted at submit()
  }
  job->done(result);
}

void Supervisor::watchdog_loop() {
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          std::max(1.0, opts_.watchdog_period_ms)));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, period, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = Clock::now();
    std::lock_guard<std::mutex> running_lock(running_mu_);
    for (const JobPtr& job : running_) {
      if (job->token.cancelled()) continue;
      if (job->has_deadline && now >= job->deadline) {
        job->token.cancel(CancelReason::kDeadline);
        span_instant(ObsPhase::kJobDeadline, 0);
      } else if (opts_.stuck_job_ms > 0.0 &&
                 elapsed_ms(job->started, now) > opts_.stuck_job_ms) {
        job->token.cancel(CancelReason::kWatchdog);
        stats_.watchdog_kills.fetch_add(1, std::memory_order_relaxed);
        svc_metrics().watchdog_kills.add(1);
        span_instant(ObsPhase::kJobWatchdog, 0);
      }
    }
  }
}

void Supervisor::drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (drained_) return;
    drained_ = true;
  }
  draining_.store(true, std::memory_order_release);

  // Grace period: let queued + running work finish on its own.
  const auto budget_end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             std::max(0.0, opts_.drain_budget_ms)));
  while (Clock::now() < budget_end) {
    if (queue_.size() == 0 && active_.load(std::memory_order_acquire) == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Budget exhausted (or already idle): cancel whatever is left. Workers
  // drain the closed queue and complete leftovers as kCancelled without
  // running them.
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(running_mu_);
    for (const JobPtr& job : running_) job->token.cancel(CancelReason::kShutdown);
  }
  queue_.close();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::string Supervisor::stats_json() const {
  return stats_.to_json(queue_.size(), running(), cache_.size(), cache_.hits(),
                        cache_.misses(), cache_.evictions());
}

}  // namespace raidsim::svc
