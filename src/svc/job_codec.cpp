#include "svc/job_codec.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/job_key.hpp"

namespace raidsim::svc {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("request: " + what);
}

double number_field(const JsonValue& v, const std::string& key) {
  if (!v.is_number()) bad("'" + key + "' must be a number");
  return v.as_number();
}

bool bool_field(const JsonValue& v, const std::string& key) {
  if (!v.is_bool()) bad("'" + key + "' must be a boolean");
  return v.as_bool();
}

int int_field(const JsonValue& v, const std::string& key) {
  const double n = number_field(v, key);
  if (!std::isfinite(n) || n != std::floor(n) ||
      n < static_cast<double>(std::numeric_limits<int>::min()) ||
      n > static_cast<double>(std::numeric_limits<int>::max()))
    bad("'" + key + "' must be an integer");
  return static_cast<int>(n);
}

Organization parse_org(const std::string& v) {
  if (v == "base") return Organization::kBase;
  if (v == "mirror") return Organization::kMirror;
  if (v == "raid5") return Organization::kRaid5;
  if (v == "raid4") return Organization::kRaid4;
  if (v == "raid10") return Organization::kRaid10;
  if (v == "parstrip") return Organization::kParityStriping;
  bad("unknown organization '" + v + "'");
}

SyncPolicy parse_sync(const std::string& v) {
  if (v == "si") return SyncPolicy::kSimultaneousIssue;
  if (v == "rf") return SyncPolicy::kReadFirst;
  if (v == "rfpr") return SyncPolicy::kReadFirstPriority;
  if (v == "df") return SyncPolicy::kDiskFirst;
  if (v == "dfpr") return SyncPolicy::kDiskFirstPriority;
  bad("unknown sync policy '" + v + "'");
}

DiskScheduling parse_sched(const std::string& v) {
  if (v == "fifo") return DiskScheduling::kFifo;
  if (v == "sstf") return DiskScheduling::kSstf;
  if (v == "scan") return DiskScheduling::kScan;
  bad("unknown disk scheduling '" + v + "'");
}

ParityPlacement parse_placement(const std::string& v) {
  if (v == "middle") return ParityPlacement::kMiddleCylinders;
  if (v == "end") return ParityPlacement::kEndCylinders;
  bad("unknown parity placement '" + v + "'");
}

const char* org_name(Organization org) {
  switch (org) {
    case Organization::kBase: return "base";
    case Organization::kMirror: return "mirror";
    case Organization::kRaid5: return "raid5";
    case Organization::kRaid4: return "raid4";
    case Organization::kRaid10: return "raid10";
    case Organization::kParityStriping: return "parstrip";
  }
  return "raid5";
}

const char* sync_name(SyncPolicy sync) {
  switch (sync) {
    case SyncPolicy::kSimultaneousIssue: return "si";
    case SyncPolicy::kReadFirst: return "rf";
    case SyncPolicy::kReadFirstPriority: return "rfpr";
    case SyncPolicy::kDiskFirst: return "df";
    case SyncPolicy::kDiskFirstPriority: return "dfpr";
  }
  return "df";
}

const char* sched_name(DiskScheduling sched) {
  switch (sched) {
    case DiskScheduling::kFifo: return "fifo";
    case DiskScheduling::kSstf: return "sstf";
    case DiskScheduling::kScan: return "scan";
  }
  return "fifo";
}

void apply_tail(SimulationConfig& config, const JsonValue& tail) {
  if (!tail.is_object()) bad("'tail' must be an object");
  for (const auto& [key, value] : tail.as_object()) {
    if (key == "enabled") config.tail.enabled = bool_field(value, key);
    else if (key == "read_deadline_ms")
      config.tail.read_deadline_ms = number_field(value, key);
    else if (key == "hedge_delay_ms")
      config.tail.hedge_delay_ms = number_field(value, key);
    else if (key == "hedge_ewma_factor")
      config.tail.hedge_ewma_factor = number_field(value, key);
    else if (key == "redirect_on_slow")
      config.tail.redirect_on_slow = bool_field(value, key);
    else if (key == "reconstruct_on_slow")
      config.tail.reconstruct_on_slow = bool_field(value, key);
    else if (key == "slow_ewma_factor")
      config.tail.slow_ewma_factor = number_field(value, key);
    else bad("unknown tail key '" + key + "'");
  }
}

void apply_config(SimulationConfig& config, const JsonValue& json) {
  if (!json.is_object()) bad("'config' must be an object");
  for (const auto& [key, value] : json.as_object()) {
    if (key == "org") {
      if (!value.is_string()) bad("'org' must be a string");
      config.organization = parse_org(value.as_string());
    } else if (key == "n") {
      config.array_data_disks = int_field(value, key);
    } else if (key == "su") {
      config.striping_unit_blocks = int_field(value, key);
    } else if (key == "sync") {
      if (!value.is_string()) bad("'sync' must be a string");
      config.sync = parse_sync(value.as_string());
    } else if (key == "parity_placement") {
      if (!value.is_string()) bad("'parity_placement' must be a string");
      config.parity_placement = parse_placement(value.as_string());
    } else if (key == "parity_fine_chunk") {
      config.parity_fine_grain_chunk_blocks = int_field(value, key);
    } else if (key == "sched") {
      if (!value.is_string()) bad("'sched' must be a string");
      config.disk_scheduling = parse_sched(value.as_string());
    } else if (key == "channel_mb_per_s") {
      config.channel_mb_per_second = number_field(value, key);
    } else if (key == "track_buffers") {
      config.track_buffers_per_disk = int_field(value, key);
    } else if (key == "cached") {
      config.cached = bool_field(value, key);
    } else if (key == "cache_mb") {
      const double mb = number_field(value, key);
      if (!std::isfinite(mb) || mb < 0.0 || mb > 1 << 20)
        bad("'cache_mb' out of range");
      config.cache_bytes = static_cast<std::int64_t>(mb * (1 << 20));
    } else if (key == "destage_period_ms") {
      config.destage_period_ms = number_field(value, key);
    } else if (key == "retain_old_data") {
      config.retain_old_data = bool_field(value, key);
    } else if (key == "parity_caching") {
      config.parity_caching = bool_field(value, key);
    } else if (key == "periodic_destage") {
      config.periodic_destage = bool_field(value, key);
    } else if (key == "intent_journal") {
      config.intent_journal = bool_field(value, key);
    } else if (key == "shards") {
      config.shards = int_field(value, key);
    } else if (key == "shard_threads") {
      config.shard_threads = int_field(value, key);
    } else if (key == "sample_interval_ms") {
      config.obs.sample_interval_ms = number_field(value, key);
    } else if (key == "tail") {
      apply_tail(config, value);
    } else {
      bad("unknown config key '" + key + "'");
    }
  }
}

}  // namespace

JobRequest decode_job_request(const JsonValue& request) {
  if (!request.is_object()) bad("not a JSON object");
  JobRequest job;
  for (const auto& [key, value] : request.as_object()) {
    if (key == "op") {
      if (!value.is_string() || value.as_string() != "run")
        bad("'op' must be \"run\"");
    } else if (key == "id") {
      if (!value.is_string()) bad("'id' must be a string");
      job.id = value.as_string();
    } else if (key == "trace") {
      if (!value.is_string()) bad("'trace' must be a string");
      job.trace = value.as_string();
    } else if (key == "scale") {
      job.workload.scale = number_field(value, key);
    } else if (key == "speed") {
      job.workload.speed = number_field(value, key);
    } else if (key == "seed") {
      const double n = number_field(value, key);
      if (!std::isfinite(n) || n < 0.0 || n != std::floor(n) ||
          n > 18446744073709549568.0)
        bad("'seed' must be a non-negative integer");
      job.workload.seed = static_cast<std::uint64_t>(n);
    } else if (key == "deadline_ms") {
      job.deadline_ms = number_field(value, key);
      if (!std::isfinite(job.deadline_ms) || job.deadline_ms < 0.0)
        bad("'deadline_ms' must be finite and >= 0");
    } else if (key == "max_retries") {
      job.max_retries = int_field(value, key);
      if (job.max_retries < 0) bad("'max_retries' must be >= 0");
    } else if (key == "no_cache") {
      job.no_cache = bool_field(value, key);
    } else if (key == "fail_first") {
      job.fail_first = int_field(value, key);
      if (job.fail_first < 0) bad("'fail_first' must be >= 0");
    } else if (key == "config") {
      apply_config(job.config, value);
    } else {
      bad("unknown request key '" + key + "'");
    }
  }
  if (job.trace != "trace1" && job.trace != "trace2")
    bad("'trace' must be \"trace1\" or \"trace2\"");
  if (!std::isfinite(job.workload.scale) || job.workload.scale <= 0.0 ||
      job.workload.scale > 1.0)
    bad("'scale' must be in (0, 1]");
  if (!std::isfinite(job.workload.speed) || job.workload.speed <= 0.0)
    bad("'speed' must be positive");
  job.config.validate();
  return job;
}

std::string encode_job_request(const JobRequest& request) {
  std::ostringstream os;
  os << "{\"op\":\"run\"";
  if (!request.id.empty()) os << ",\"id\":" << json_quote(request.id);
  os << ",\"trace\":" << json_quote(request.trace);
  char buf[40];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  os << ",\"scale\":" << num(request.workload.scale)
     << ",\"speed\":" << num(request.workload.speed)
     << ",\"seed\":" << request.workload.seed;
  if (request.deadline_ms > 0.0)
    os << ",\"deadline_ms\":" << num(request.deadline_ms);
  if (request.max_retries > 0) os << ",\"max_retries\":" << request.max_retries;
  if (request.no_cache) os << ",\"no_cache\":true";
  if (request.fail_first > 0) os << ",\"fail_first\":" << request.fail_first;

  const SimulationConfig& c = request.config;
  const SimulationConfig defaults;
  os << ",\"config\":{\"org\":\"" << org_name(c.organization) << "\""
     << ",\"n\":" << c.array_data_disks
     << ",\"su\":" << c.striping_unit_blocks
     << ",\"sync\":\"" << sync_name(c.sync) << "\""
     << ",\"parity_placement\":\""
     << (c.parity_placement == ParityPlacement::kMiddleCylinders ? "middle"
                                                                 : "end")
     << "\""
     << ",\"parity_fine_chunk\":" << c.parity_fine_grain_chunk_blocks
     << ",\"sched\":\"" << sched_name(c.disk_scheduling) << "\""
     << ",\"channel_mb_per_s\":" << num(c.channel_mb_per_second)
     << ",\"track_buffers\":" << c.track_buffers_per_disk
     << ",\"cached\":" << (c.cached ? "true" : "false")
     << ",\"cache_mb\":"
     << num(static_cast<double>(c.cache_bytes) / (1 << 20))
     << ",\"destage_period_ms\":" << num(c.destage_period_ms)
     << ",\"retain_old_data\":" << (c.retain_old_data ? "true" : "false")
     << ",\"parity_caching\":" << (c.parity_caching ? "true" : "false")
     << ",\"periodic_destage\":" << (c.periodic_destage ? "true" : "false")
     << ",\"intent_journal\":" << (c.intent_journal ? "true" : "false")
     << ",\"shards\":" << c.shards
     << ",\"shard_threads\":" << c.shard_threads;
  if (c.obs.sample_interval_ms != defaults.obs.sample_interval_ms)
    os << ",\"sample_interval_ms\":" << num(c.obs.sample_interval_ms);
  os << ",\"tail\":{\"enabled\":" << (c.tail.enabled ? "true" : "false")
     << ",\"read_deadline_ms\":" << num(c.tail.read_deadline_ms)
     << ",\"hedge_delay_ms\":" << num(c.tail.hedge_delay_ms)
     << ",\"hedge_ewma_factor\":" << num(c.tail.hedge_ewma_factor)
     << ",\"redirect_on_slow\":" << (c.tail.redirect_on_slow ? "true" : "false")
     << ",\"reconstruct_on_slow\":"
     << (c.tail.reconstruct_on_slow ? "true" : "false")
     << ",\"slow_ewma_factor\":" << num(c.tail.slow_ewma_factor) << "}}}";
  return os.str();
}

std::string encode_job_response(const JobResult& result,
                                const std::string& id) {
  std::ostringstream os;
  os << "{\"id\":" << json_quote(id) << ",\"status\":\""
     << to_string(result.status) << "\"";
  if (!result.error.empty()) os << ",\"error\":" << json_quote(result.error);
  os << ",\"attempts\":" << result.attempts;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(result.fingerprint));
  os << ",\"key\":\"" << buf << "\"";
  std::snprintf(buf, sizeof(buf), "%.3f", result.queue_ms);
  os << ",\"queue_ms\":" << buf;
  std::snprintf(buf, sizeof(buf), "%.3f", result.run_ms);
  os << ",\"run_ms\":" << buf;
  if (result.status == JobStatus::kOk) {
    os << ",\"cached\":" << (result.cached ? "true" : "false")
       << ",\"metrics\":" << result.metrics_json;
  }
  if (!result.flight_out.empty())
    os << ",\"flight\":" << json_quote(result.flight_out);
  os << "}\n";
  return os.str();
}

std::string encode_progress_frame(const JobProgress& progress) {
  std::ostringstream os;
  os << "{\"type\":\"progress\",\"id\":" << json_quote(progress.id);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(progress.fingerprint));
  os << ",\"key\":\"" << buf << "\"";
  os << ",\"attempt\":" << progress.attempt
     << ",\"events\":" << progress.events;
  std::snprintf(buf, sizeof(buf), "%.3f", progress.sim_ms);
  os << ",\"sim_ms\":" << buf;
  os << ",\"done\":" << progress.done << ",\"total\":" << progress.total;
  if (progress.percent >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", progress.percent);
    os << ",\"percent\":" << buf;
  }
  if (progress.eta_ms >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", progress.eta_ms);
    os << ",\"eta_ms\":" << buf;
  }
  os << ",\"final\":" << (progress.final_frame ? "true" : "false") << "}\n";
  return os.str();
}

std::string encode_error_response(const std::string& id, JobStatus status,
                                  const std::string& error) {
  std::ostringstream os;
  os << "{\"id\":" << json_quote(id) << ",\"status\":\"" << to_string(status)
     << "\",\"error\":" << json_quote(error) << "}\n";
  return os.str();
}

}  // namespace raidsim::svc
