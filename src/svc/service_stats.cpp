#include "svc/service_stats.hpp"

#include <sstream>

namespace raidsim::svc {

std::string ServiceStats::to_json(std::size_t queue_depth, std::size_t running,
                                  std::size_t cache_size,
                                  std::uint64_t cache_hits,
                                  std::uint64_t cache_misses,
                                  std::uint64_t cache_evictions) const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted.load()
     << ",\"completed_ok\":" << completed_ok.load()
     << ",\"completed_cached\":" << completed_cached.load()
     << ",\"rejected_overload\":" << rejected_overload.load()
     << ",\"rejected_draining\":" << rejected_draining.load()
     << ",\"rejected_invalid\":" << rejected_invalid.load()
     << ",\"failed\":" << failed.load()
     << ",\"cancelled\":" << cancelled.load()
     << ",\"deadline_expired\":" << deadline_expired.load()
     << ",\"retries\":" << retries.load()
     << ",\"watchdog_kills\":" << watchdog_kills.load()
     << ",\"peak_queue_depth\":" << peak_queue_depth.load()
     << ",\"queue_depth\":" << queue_depth << ",\"running\":" << running
     << ",\"cache_size\":" << cache_size << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses
     << ",\"cache_evictions\":" << cache_evictions << "}";
  return os.str();
}

}  // namespace raidsim::svc
