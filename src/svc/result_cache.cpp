#include "svc/result_cache.hpp"

namespace raidsim::svc {

bool ResultCache::lookup(const std::string& key, std::string* metrics_json) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *metrics_json = it->second->metrics_json;
  return true;
}

void ResultCache::insert(const std::string& key,
                         const std::string& metrics_json) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->metrics_json = metrics_json;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, metrics_json});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace raidsim::svc
