#include "crash/recovery.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace raidsim {

RecoveryProcess::RecoveryProcess(EventQueue& eq, ArrayController& controller)
    : RecoveryProcess(eq, controller, Options()) {}

RecoveryProcess::RecoveryProcess(EventQueue& eq, ArrayController& controller,
                                 const Options& options)
    : eq_(eq), controller_(controller), options_(options) {
  if (options_.stripes_per_pass <= 0)
    throw std::invalid_argument("RecoveryProcess: stripes_per_pass <= 0");
}

std::vector<PhysicalExtent> RecoveryProcess::full_array_worklist() const {
  // Walk the logical space, keeping one representative data extent per
  // distinct parity extent (= per parity group).
  std::set<std::pair<int, std::int64_t>> seen;
  std::vector<PhysicalExtent> work;
  const Layout& layout = controller_.layout();
  for (std::int64_t b = 0; b < layout.logical_capacity(); ++b) {
    const auto plans = layout.map_write(b, 1);
    if (plans.empty() || !plans.front().parity.valid() ||
        plans.front().writes.empty())
      continue;
    const auto& parity = plans.front().parity;
    if (seen.insert({parity.disk, parity.start_block}).second)
      work.push_back(plans.front().writes.front());
  }
  return work;
}

void RecoveryProcess::start(std::function<void(SimTime)> on_complete) {
  if (running_) throw std::logic_error("RecoveryProcess: already running");
  running_ = true;
  started_ = eq_.now();
  on_complete_ = std::move(on_complete);
  stats_ = Stats{};

  IntentJournal* journal = controller_.journal();
  if (journal && !journal->wiped() && journal->open_intents() > 0) {
    stats_.used_journal = true;
    stats_.intents_replayed =
        static_cast<std::uint64_t>(journal->open_intents());
    worklist_ = journal->dirty_stripe_extents();
    journal->clear();
  } else if (options_.full_resync_fallback) {
    stats_.full_resync = true;
    worklist_ = full_array_worklist();
    if (journal) journal->clear();  // reset a wiped journal for new intents
  } else {
    if (journal && journal->wiped()) journal->clear();
    worklist_.clear();
  }

  next_ = 0;
  outstanding_ = 0;
  if (worklist_.empty()) {
    finish(eq_.now());
    return;
  }
  pump();
}

void RecoveryProcess::pump() {
  while (outstanding_ < options_.stripes_per_pass &&
         next_ < worklist_.size()) {
    const PhysicalExtent extent = worklist_[next_++];
    ++outstanding_;
    const auto issue = controller_.resync_stripe(
        extent, options_.priority, [this](SimTime t) {
          --outstanding_;
          ++stats_.stripes_resynced;
          if (next_ < worklist_.size()) {
            pump();
          } else if (outstanding_ == 0) {
            finish(t);
          }
        });
    stats_.read_blocks += static_cast<std::uint64_t>(issue.read_blocks);
    stats_.write_blocks += static_cast<std::uint64_t>(issue.write_blocks);
  }
}

void RecoveryProcess::finish(SimTime t) {
  stats_.recovery_ms = t - started_;
  running_ = false;
  controller_.note_recovery(stats_.recovery_ms, stats_.intents_replayed,
                            stats_.full_resync);
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb(t);
  }
}

}  // namespace raidsim
