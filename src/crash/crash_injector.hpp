#pragma once

#include <cstdint>
#include <functional>

#include "array/controller.hpp"
#include "crash/recovery.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace raidsim {

/// Kills the array controller at a chosen (or stochastically armed)
/// instant and drives the restart/recovery sequence:
///
///   crash     -> ArrayController::crash_halt(nvram_survives_crash):
///                every disk loses power (queued ops dropped, the
///                in-flight write persists only a sector-granularity
///                durable prefix), stalled host requests die unanswered,
///                and the NV cache + intent journal either survive
///                (battery-backed NVRAM) or are wiped (volatile cache).
///   restart   -> after `restart_delay_ms` the disks power back on and
///                the controller resumes (crash_restart).
///   recovery  -> with `auto_recover`, a RecoveryProcess replays the
///                intent journal (or runs the configured full-array
///                fallback) before `on_recovered` fires.
class CrashInjector {
 public:
  struct Options {
    /// Battery-backed NVRAM: cache contents and intent journal survive
    /// the crash. When false both are wiped (volatile write cache).
    bool nvram_survives_crash = true;
    /// Downtime between crash_halt and crash_restart.
    double restart_delay_ms = 50.0;
    /// Run a RecoveryProcess automatically after restart.
    bool auto_recover = true;
    RecoveryProcess::Options recovery;
    /// Mean of the exponential crash inter-arrival used by arm();
    /// <= 0 disables stochastic arming.
    double crash_mean_ms = 0.0;
    std::uint64_t seed = 0xc4a5'4e57'0b5e'11d1ULL;
  };

  CrashInjector(EventQueue& eq, ArrayController& controller);
  CrashInjector(EventQueue& eq, ArrayController& controller,
                const Options& options);

  /// Schedule a stochastic crash exponential(crash_mean_ms) from now.
  /// Re-arms itself after each recovery while crash_mean_ms > 0.
  void arm();

  /// Crash immediately.
  void crash_now();

  /// Crash at an absolute simulated time (>= now).
  void crash_at(SimTime when);

  /// Cancel any scheduled (armed or crash_at) crash that has not fired.
  void disarm() { ++epoch_; }

  /// Fires after restart -- and, with auto_recover, after the recovery
  /// process finished resyncing.
  void set_on_recovered(std::function<void(SimTime)> cb) {
    on_recovered_ = std::move(cb);
  }

  bool down() const { return down_; }
  std::uint64_t crashes() const { return crashes_; }
  const RecoveryProcess::Stats& last_recovery() const {
    return recovery_.stats();
  }

 private:
  void restart(SimTime t);

  EventQueue& eq_;
  ArrayController& controller_;
  Options options_;
  RecoveryProcess recovery_;
  Rng rng_;
  std::function<void(SimTime)> on_recovered_;
  bool down_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t epoch_ = 0;  // invalidates stale scheduled crashes
};

}  // namespace raidsim
