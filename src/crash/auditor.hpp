#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "array/controller.hpp"
#include "array/crash_hooks.hpp"

namespace raidsim {

/// Shadow-model integrity auditor: mirrors every logical write into an
/// in-memory model of the array's durable state and verifies, on demand,
/// that each stripe's parity XOR-matches its data blocks and that every
/// acknowledged write still exists somewhere durable. Silent write-hole
/// corruption and lost writes become counted, attributable events.
///
/// The model tracks content *generations* rather than bytes. Per logical
/// block b it records:
///
///   model[b]    latest generation the host wrote,
///   acked[b]    latest generation acknowledged to the host,
///   disk[b]     generation on the data disk,
///   nvram[b]    generation held dirty in the NV cache,
///   cover[b]    generation the parity currently covers, and
///   old_copy[b] generation of the retained old-data capture.
///
/// Parity is linear (XOR), so per-block coverage tracking is exact: a
/// delta update advances cover[b] only when it was computed against
/// exactly cover[b]'s content (otherwise the cover is *poisoned* -- the
/// real parity no longer matches any consistent stripe state), and a
/// recompute write re-establishes coverage unconditionally. A block
/// whose cover disagrees with its disk content is a write hole: rebuild
/// of a lost member would reconstruct garbage there. An acked generation
/// newer than both disk and NVRAM is a lost write.
///
/// All hooks are pure bookkeeping with zero simulated time, so attaching
/// the auditor never changes the event timeline.
///
/// Limitations (documented, asserted nowhere): audits are meaningful
/// when the array is quiescent -- an in-flight stripe update legitimately
/// holds cover != disk for its duration (that transient IS the crash
/// window the auditor is built to catch); and the model does not follow
/// whole-disk rebuilds onto spares (audit before injecting one).
class ShadowAuditor : public WriteAuditHooks {
 public:
  /// Attaches itself to the controller (set_auditor) for its lifetime.
  explicit ShadowAuditor(ArrayController& controller);
  ~ShadowAuditor() override;

  ShadowAuditor(const ShadowAuditor&) = delete;
  ShadowAuditor& operator=(const ShadowAuditor&) = delete;

  // WriteAuditHooks:
  std::uint64_t host_write(std::int64_t block) override;
  void acknowledge(std::int64_t block, std::uint64_t gen) override;
  std::uint64_t current_gen(std::int64_t block) const override;
  std::uint64_t disk_gen(std::int64_t block) const override;
  std::uint64_t old_copy_gen(std::int64_t block) const override;
  void old_captured(std::int64_t block) override;
  void nvram_put(std::int64_t block, std::uint64_t gen) override;
  void nvram_evict(std::int64_t block) override;
  void wipe_nvram() override;
  void data_durable(std::int64_t block, std::uint64_t gen) override;
  void parity_durable(const ParityCover& cover, bool recompute) override;
  void resync_block(std::int64_t block) override;

  struct Report {
    std::uint64_t blocks_checked = 0;
    std::uint64_t write_holes = 0;      // blocks whose parity cover is wrong
    std::uint64_t lost_writes = 0;      // acked data existing nowhere durable
    std::uint64_t stripes_inconsistent = 0;  // distinct stripes with holes
    std::uint64_t degraded_skipped = 0; // blocks on a failed disk (unverifiable)
    bool clean() const { return write_holes == 0 && lost_writes == 0; }
  };

  /// Verify every block the model has ever seen. Run while quiescent.
  Report audit() const;

  /// Lowest touched block whose parity cover disagrees with its disk
  /// content (or is poisoned), -1 when none. Cheap probe used to detect
  /// the open crash window deterministically: while a stripe update is
  /// in flight this is transiently >= 0 -- crash then.
  std::int64_t first_inconsistent_block() const;

  std::uint64_t parity_cover_gen(std::int64_t block) const;
  std::uint64_t nvram_gen(std::int64_t block) const;
  bool poisoned(std::int64_t block) const {
    return poisoned_.count(block) > 0;
  }

 private:
  using StripeKey = std::pair<int, std::int64_t>;

  static std::uint64_t lookup(
      const std::unordered_map<std::int64_t, std::uint64_t>& map,
      std::int64_t block);

  /// Parity-extent key of the stripe containing `block`; cached (layout
  /// mapping is static). Second == false when the organization has no
  /// parity for this block.
  std::pair<StripeKey, bool> stripe_key(std::int64_t block) const;

  bool block_inconsistent(std::int64_t block) const;
  bool on_failed_disk(std::int64_t block) const;

  ArrayController& controller_;
  bool parity_org_;

  std::map<std::int64_t, std::uint64_t> model_;  // ordered: deterministic scans
  std::unordered_map<std::int64_t, std::uint64_t> acked_;
  std::unordered_map<std::int64_t, std::uint64_t> disk_;
  std::unordered_map<std::int64_t, std::uint64_t> nvram_;
  std::unordered_map<std::int64_t, std::uint64_t> cover_;
  std::unordered_map<std::int64_t, std::uint64_t> old_copy_;
  std::unordered_set<std::int64_t> poisoned_;

  // Stripe topology, built lazily: resyncing any member heals the group.
  mutable std::map<std::int64_t, std::pair<StripeKey, bool>> block_stripe_;
  mutable std::map<StripeKey, std::set<std::int64_t>> stripe_members_;
};

}  // namespace raidsim
