#include "crash/crash_injector.hpp"

#include <stdexcept>

namespace raidsim {

CrashInjector::CrashInjector(EventQueue& eq, ArrayController& controller)
    : CrashInjector(eq, controller, Options()) {}

CrashInjector::CrashInjector(EventQueue& eq, ArrayController& controller,
                             const Options& options)
    : eq_(eq),
      controller_(controller),
      options_(options),
      recovery_(eq, controller, options.recovery),
      rng_(options.seed) {
  if (options_.restart_delay_ms < 0.0)
    throw std::invalid_argument("CrashInjector: restart_delay_ms < 0");
}

void CrashInjector::arm() {
  if (options_.crash_mean_ms <= 0.0)
    throw std::logic_error("CrashInjector: arm() needs crash_mean_ms > 0");
  crash_at(eq_.now() + rng_.exponential(options_.crash_mean_ms));
}

void CrashInjector::crash_at(SimTime when) {
  const std::uint64_t epoch = ++epoch_;
  eq_.schedule_at(when, [this, epoch] {
    if (epoch == epoch_) crash_now();
  });
}

void CrashInjector::crash_now() {
  if (down_) return;
  ++epoch_;  // kill any scheduled crash
  down_ = true;
  ++crashes_;
  controller_.crash_halt(options_.nvram_survives_crash);
  eq_.schedule_in(options_.restart_delay_ms,
                  [this] { restart(eq_.now()); });
}

void CrashInjector::restart(SimTime t) {
  controller_.crash_restart();
  down_ = false;
  auto recovered = [this](SimTime when) {
    if (on_recovered_) on_recovered_(when);
    if (options_.crash_mean_ms > 0.0) arm();
  };
  if (options_.auto_recover) {
    recovery_.start(recovered);
  } else {
    recovered(t);
  }
}

}  // namespace raidsim
