#include "crash/auditor.hpp"

#include <algorithm>

namespace raidsim {

namespace {

bool has_parity(Organization org) {
  return org == Organization::kRaid4 || org == Organization::kRaid5 ||
         org == Organization::kParityStriping;
}

}  // namespace

ShadowAuditor::ShadowAuditor(ArrayController& controller)
    : controller_(controller),
      parity_org_(has_parity(controller.layout().organization())) {
  controller_.set_auditor(this);
}

ShadowAuditor::~ShadowAuditor() {
  if (controller_.auditor() == this) controller_.set_auditor(nullptr);
}

std::uint64_t ShadowAuditor::lookup(
    const std::unordered_map<std::int64_t, std::uint64_t>& map,
    std::int64_t block) {
  auto it = map.find(block);
  return it == map.end() ? 0 : it->second;
}

std::pair<ShadowAuditor::StripeKey, bool> ShadowAuditor::stripe_key(
    std::int64_t block) const {
  auto it = block_stripe_.find(block);
  if (it != block_stripe_.end()) return it->second;
  std::pair<StripeKey, bool> key{{-1, -1}, false};
  if (parity_org_) {
    const auto plans = controller_.layout().map_write(block, 1);
    if (!plans.empty() && plans.front().parity.valid()) {
      key.first = {plans.front().parity.disk,
                   plans.front().parity.start_block};
      key.second = true;
      stripe_members_[key.first].insert(block);
    }
  }
  block_stripe_.emplace(block, key);
  return key;
}

std::uint64_t ShadowAuditor::host_write(std::int64_t block) {
  stripe_key(block);  // register stripe membership
  return ++model_[block];
}

void ShadowAuditor::acknowledge(std::int64_t block, std::uint64_t gen) {
  auto& acked = acked_[block];
  acked = std::max(acked, gen);
}

std::uint64_t ShadowAuditor::current_gen(std::int64_t block) const {
  auto it = model_.find(block);
  return it == model_.end() ? 0 : it->second;
}

std::uint64_t ShadowAuditor::disk_gen(std::int64_t block) const {
  return lookup(disk_, block);
}

std::uint64_t ShadowAuditor::old_copy_gen(std::int64_t block) const {
  auto it = old_copy_.find(block);
  return it == old_copy_.end() ? disk_gen(block) : it->second;
}

void ShadowAuditor::old_captured(std::int64_t block) {
  old_copy_[block] = disk_gen(block);
}

void ShadowAuditor::nvram_put(std::int64_t block, std::uint64_t gen) {
  nvram_[block] = gen;
}

void ShadowAuditor::nvram_evict(std::int64_t block) {
  nvram_.erase(block);
}

void ShadowAuditor::wipe_nvram() {
  nvram_.clear();
  old_copy_.clear();
}

void ShadowAuditor::data_durable(std::int64_t block, std::uint64_t gen) {
  disk_[block] = gen;
}

void ShadowAuditor::parity_durable(const ParityCover& cover, bool recompute) {
  if (cover.block < 0) return;
  if (recompute) {
    // Parity rebuilt from full content: coverage re-established no
    // matter what it was before.
    cover_[cover.block] = cover.gen;
    poisoned_.erase(cover.block);
    return;
  }
  // XOR delta: only correct when computed against exactly what the
  // parity covers. A stale assumption corrupts the parity for good
  // (until a recompute/resync) -- the cover is poisoned.
  if (poisoned_.count(cover.block) == 0 &&
      lookup(cover_, cover.block) == cover.assumed_old_gen) {
    cover_[cover.block] = cover.gen;
  } else {
    poisoned_.insert(cover.block);
  }
}

void ShadowAuditor::resync_block(std::int64_t block) {
  // A stripe resync recomputes the parity from the on-disk content of
  // the WHOLE group: every member the model tracks is healed, and stale
  // old-data captures stop being a valid delta source.
  const auto key = stripe_key(block);
  if (!key.second) return;
  for (std::int64_t member : stripe_members_[key.first]) {
    cover_[member] = lookup(disk_, member);
    poisoned_.erase(member);
    old_copy_.erase(member);
  }
}

bool ShadowAuditor::on_failed_disk(std::int64_t block) const {
  if (controller_.failed_disk() < 0) return false;
  const auto extents = controller_.layout().map_read(block, 1);
  return !extents.empty() && extents.front().disk == controller_.failed_disk();
}

bool ShadowAuditor::block_inconsistent(std::int64_t block) const {
  if (!parity_org_) return false;
  if (poisoned_.count(block) > 0) return true;
  return lookup(cover_, block) != lookup(disk_, block);
}

ShadowAuditor::Report ShadowAuditor::audit() const {
  Report report;
  std::set<StripeKey> bad_stripes;
  for (const auto& [block, gen] : model_) {
    if (on_failed_disk(block)) {
      ++report.degraded_skipped;
      continue;
    }
    ++report.blocks_checked;
    const std::uint64_t acked = lookup(acked_, block);
    if (acked > std::max(lookup(disk_, block), lookup(nvram_, block)))
      ++report.lost_writes;
    if (block_inconsistent(block)) {
      ++report.write_holes;
      const auto key = stripe_key(block);
      if (key.second) bad_stripes.insert(key.first);
    }
  }
  report.stripes_inconsistent =
      static_cast<std::uint64_t>(bad_stripes.size());
  return report;
}

std::int64_t ShadowAuditor::first_inconsistent_block() const {
  for (const auto& [block, gen] : model_)
    if (block_inconsistent(block)) return block;
  return -1;
}

std::uint64_t ShadowAuditor::parity_cover_gen(std::int64_t block) const {
  return lookup(cover_, block);
}

std::uint64_t ShadowAuditor::nvram_gen(std::int64_t block) const {
  return lookup(nvram_, block);
}

}  // namespace raidsim
