#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "array/controller.hpp"
#include "sim/event_queue.hpp"

namespace raidsim {

/// Post-crash recovery driver. After a controller restart it rebuilds
/// parity consistency one of two ways:
///
///  * journal replay -- when the controller's NVRAM intent journal
///    survived the crash, only the stripes marked dirty by still-open
///    intents are resynchronized (read all members, recompute and
///    rewrite the parity); or
///  * full-array resync -- the baseline for journal-less controllers (or
///    a wiped journal) with `full_resync_fallback`: every parity group
///    in the array is walked and resynchronized.
///
/// Resync I/O runs through the normal disk paths, so it contends with
/// (and is measured against) foreground traffic; the controller serves
/// hosts while recovery proceeds, exactly like a production array's
/// background resync. Recovery time and I/O are reported to the
/// controller's stats (recovery_ms, resync_*).
class RecoveryProcess {
 public:
  struct Options {
    /// Walk the whole array when no usable journal exists. Off by
    /// default: a journal-less recovery then does nothing, leaving any
    /// write hole in place (the unprotected baseline).
    bool full_resync_fallback = false;
    /// Outstanding stripe resyncs (sliding window).
    int stripes_per_pass = 4;
    DiskPriority priority = DiskPriority::kNormal;
  };

  struct Stats {
    bool used_journal = false;
    bool full_resync = false;
    std::uint64_t intents_replayed = 0;
    std::uint64_t stripes_resynced = 0;
    std::uint64_t read_blocks = 0;
    std::uint64_t write_blocks = 0;
    double recovery_ms = 0.0;
  };

  RecoveryProcess(EventQueue& eq, ArrayController& controller);
  RecoveryProcess(EventQueue& eq, ArrayController& controller,
                  const Options& options);

  /// Build the worklist (journal replay or full walk) and start the
  /// resync passes; `on_complete` fires when the array is consistent
  /// again (immediately when there is nothing to do).
  void start(std::function<void(SimTime)> on_complete = nullptr);

  bool running() const { return running_; }
  const Stats& stats() const { return stats_; }

 private:
  void pump();
  void finish(SimTime t);

  /// One representative data extent per parity group of the whole array.
  std::vector<PhysicalExtent> full_array_worklist() const;

  EventQueue& eq_;
  ArrayController& controller_;
  Options options_;
  Stats stats_;
  std::vector<PhysicalExtent> worklist_;
  std::size_t next_ = 0;
  int outstanding_ = 0;
  bool running_ = false;
  SimTime started_ = 0.0;
  std::function<void(SimTime)> on_complete_;
};

}  // namespace raidsim
