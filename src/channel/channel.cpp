#include "channel/channel.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/arena.hpp"

namespace raidsim {

Channel::Channel(EventQueue& eq, double mb_per_second) : eq_(eq) {
  if (mb_per_second <= 0.0)
    throw std::invalid_argument("Channel: rate must be positive");
  // ms per byte = 1000 / (MB/s * 1e6) = 1e-3 / MB/s.
  ms_per_byte_ = 1e-3 / mb_per_second;
}

double Channel::transfer_ms(std::int64_t bytes) const {
  assert(bytes >= 0);
  return static_cast<double>(bytes) * ms_per_byte_;
}

void Channel::transfer(std::int64_t bytes,
                       Completion on_complete) {
  queue_.push_back(Pending{bytes, std::move(on_complete)});
  if (!busy_) start_next();
}

void Channel::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  const double dur = transfer_ms(p.bytes);
  busy_ms_ += dur;
  ++transfers_;
  auto cb = make_op<Pending>(eq_.op_arena(), std::move(p));
  eq_.schedule_in(dur, [this, cb] {
    if (cb->on_complete) cb->on_complete(eq_.now());
    start_next();
  });
}

BufferPool::BufferPool(int capacity) : capacity_(capacity), available_(capacity) {
  if (capacity <= 0) throw std::invalid_argument("BufferPool: capacity <= 0");
}

void BufferPool::acquire(InlineCallback grant) {
  if (available_ > 0) {
    --available_;
    grant();
  } else {
    ++stalls_;
    waiters_.push_back(std::move(grant));
  }
}

void BufferPool::release() {
  if (!waiters_.empty()) {
    auto grant = std::move(waiters_.front());
    waiters_.pop_front();
    grant();  // buffer passes directly to the waiter
  } else {
    ++available_;
    assert(available_ <= capacity_);
  }
}

}  // namespace raidsim
