#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.hpp"

namespace raidsim {

/// FIFO model of the host-to-controller channel (Table 1: 10 MB/s).
/// Each array has one channel; all user data crossing the host boundary
/// serialises on it. Parity traffic stays inside the controller and does
/// not use the channel.
class Channel {
 public:
  Channel(EventQueue& eq, double mb_per_second);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Queue a transfer of `bytes`; `on_complete` fires when the last byte
  /// has crossed the channel.
  void transfer(std::int64_t bytes, Completion on_complete);

  /// Transfer time for `bytes` with no queueing.
  double transfer_ms(std::int64_t bytes) const;

  std::uint64_t transfers() const { return transfers_; }
  double busy_ms() const { return busy_ms_; }
  double utilization(SimTime elapsed) const {
    return elapsed > 0.0 ? busy_ms_ / elapsed : 0.0;
  }
  std::size_t queue_length() const { return queue_.size(); }

 private:
  struct Pending {
    std::int64_t bytes;
    Completion on_complete;
  };

  void start_next();

  EventQueue& eq_;
  double ms_per_byte_;
  bool busy_ = false;
  std::deque<Pending> queue_;
  std::uint64_t transfers_ = 0;
  double busy_ms_ = 0.0;
};

/// Counting pool of controller track buffers (Section 3.4: five per
/// disk). A disk transfer must hold a buffer from start to drain; if the
/// pool is exhausted the acquisition queues FIFO.
class BufferPool {
 public:
  explicit BufferPool(int capacity);

  /// Acquire one buffer; `grant` runs immediately when a buffer is free,
  /// otherwise when one is released (same simulation time as release).
  void acquire(InlineCallback grant);

  /// Return one buffer to the pool, waking the oldest waiter if any.
  void release();

  int capacity() const { return capacity_; }
  int available() const { return available_; }
  std::size_t waiting() const { return waiters_.size(); }
  /// Total acquisitions that had to wait (starvation diagnostics).
  std::uint64_t stalls() const { return stalls_; }

 private:
  int capacity_;
  int available_;
  std::deque<InlineCallback> waiters_;
  std::uint64_t stalls_ = 0;
};

}  // namespace raidsim
