#pragma once

#include <cstdint>
#include <vector>

#include "array/controller.hpp"
#include "util/rng.hpp"

namespace raidsim {

/// Fail-slow fault regime (docs/fault_model.md): disks that keep
/// answering but take far too long. Three slowdown classes, all in extra
/// service milliseconds appended to the mechanical plan:
///   transient spikes   per-op Bernoulli draw; an affected op pays an
///                      exponentially distributed media-retry burst
///   sticky slowdown    after an exponential onset time the disk's
///                      service times are multiplied by `sticky_factor`
///                      until it heals (fixed duration) or is repaired
///   periodic stalls    every `stall_period_ms` the disk freezes for
///                      `stall_duration_ms` (firmware housekeeping);
///                      ops arriving inside the window wait it out
/// All zero by default: a default config injects nothing.
struct SlowdownConfig {
  /// Probability that any single op pays a transient latency spike.
  double spike_per_op = 0.0;
  /// Mean of the exponential spike magnitude (ms).
  double spike_ms_mean = 0.0;

  /// Mean sim-ms until a disk turns sticky-slow (exponential, per disk).
  /// 0 disables spontaneous sticky onsets (force_sticky still works).
  double sticky_onset_mean_ms = 0.0;
  /// Service-time multiplier while sticky (>= 1).
  double sticky_factor = 5.0;
  /// Sticky episode length; 0 = the disk stays slow until repair_disk().
  double sticky_duration_ms = 0.0;

  /// Periodic stall window per disk (0 disables). Each disk gets a
  /// deterministic per-disk phase offset so stalls do not line up
  /// across the array.
  double stall_period_ms = 0.0;
  double stall_duration_ms = 0.0;

  std::uint64_t seed = 0x510eULL;

  /// Drill mode: arm() installs the per-disk hooks (so force_sticky()
  /// takes effect) but schedules no spontaneous onsets. Lets a drill
  /// place the straggler deterministically without a pending far-future
  /// onset event keeping the queue alive.
  bool manual_sticky = false;

  /// True when any slowdown class is configured. An injector built from
  /// a disabled config installs no hooks and schedules no events, so
  /// the run is bit-identical to one without the injector.
  bool enabled() const {
    return (spike_per_op > 0.0 && spike_ms_mean > 0.0) ||
           sticky_onset_mean_ms > 0.0 ||
           (stall_period_ms > 0.0 && stall_duration_ms > 0.0) ||
           manual_sticky;
  }
};

/// Installs the fail-slow model onto a set of arrays. Deterministic: one
/// RNG stream per disk, split from the seed in (array, disk) order, so a
/// given seed produces the same slowdown schedule regardless of what the
/// rest of the simulation does. Composable with FaultInjector (separate
/// disk hooks: set_slowdown_hook vs set_fault_evaluator).
class SlowdownInjector {
 public:
  SlowdownInjector(EventQueue& eq, std::vector<ArrayController*> arrays,
                   const SlowdownConfig& config);
  SlowdownInjector(EventQueue& eq, ArrayController& array,
                   const SlowdownConfig& config)
      : SlowdownInjector(eq, std::vector<ArrayController*>{&array}, config) {}

  SlowdownInjector(const SlowdownInjector&) = delete;
  SlowdownInjector& operator=(const SlowdownInjector&) = delete;
  ~SlowdownInjector() { stop(); }

  /// Install the per-disk slowdown hooks and start the sticky-onset
  /// clocks. No-op (and installs nothing) when the config is disabled.
  /// Idempotent.
  void arm();
  /// Uninstall every hook and cancel every pending injector event (so
  /// the event queue can drain).
  void stop();

  /// Make one disk sticky-slow right now (drills use this to place the
  /// straggler deterministically). Honors sticky_duration_ms.
  void force_sticky(int array, int disk);
  /// Repair one disk: clears its sticky state and cancels any pending
  /// auto-heal. Spikes and stalls keep applying (they model the normal
  /// fault regime, not the broken unit).
  void repair_disk(int array, int disk);

  bool armed() const { return armed_; }
  bool sticky_active(int array, int disk) const;
  std::uint64_t sticky_onsets() const { return sticky_onsets_; }
  std::uint64_t spikes_injected() const { return spikes_injected_; }
  std::uint64_t stalls_hit() const { return stalls_hit_; }

 private:
  struct DiskState {
    Rng rng{0};
    bool sticky = false;
    double stall_phase = 0.0;  // deterministic per-disk stall offset
    EventId onset_event = 0;
    EventId heal_event = 0;
  };

  DiskState& state_at(int array, int disk);
  void schedule_onset(int array, int disk);
  void begin_sticky(int array, int disk);
  double extra_ms(DiskState& st, SimTime service_start,
                  double planned_service_ms);

  EventQueue& eq_;
  std::vector<ArrayController*> arrays_;
  SlowdownConfig config_;
  bool armed_ = false;
  std::vector<std::vector<DiskState>> states_;
  std::uint64_t sticky_onsets_ = 0;
  std::uint64_t spikes_injected_ = 0;
  std::uint64_t stalls_hit_ = 0;
};

}  // namespace raidsim
