#include "fault/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace raidsim {

double FaultInjectorConfig::hours_to_ms(double hours, double acceleration) {
  if (acceleration <= 0.0)
    throw std::invalid_argument("FaultInjectorConfig: bad acceleration");
  return hours * 3600.0 * 1000.0 / acceleration;
}

FaultInjector::FaultInjector(EventQueue& eq, HealthMonitor& monitor,
                             std::vector<ArrayController*> arrays,
                             const FaultInjectorConfig& config)
    : eq_(eq),
      monitor_(monitor),
      arrays_(std::move(arrays)),
      config_(config),
      rng_(config.seed) {
  if (arrays_.empty())
    throw std::invalid_argument("FaultInjector: no arrays");
  if (config_.disk_failure_mean_ms < 0.0 ||
      config_.latent_error_mean_ms < 0.0 ||
      config_.media_error_per_block_read < 0.0 ||
      config_.media_error_per_block_read > 1.0 ||
      config_.transient_error_per_op < 0.0 ||
      config_.transient_error_per_op > 1.0)
    throw std::invalid_argument("FaultInjector: bad config");
  failure_events_.resize(arrays_.size());
  latent_events_.resize(arrays_.size());
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    const std::size_t disks = arrays_[a]->disks().size();
    failure_events_[a].assign(disks, 0);
    latent_events_[a].assign(disks, 0);
  }
  // A rebuilt disk is a fresh unit: restart its failure clock.
  monitor_.on_disk_recovered = [this](int array, int disk, SimTime) {
    if (armed_) rearm_disk(array, disk);
  };
}

Disk& FaultInjector::disk_at(int array, int disk) {
  return *arrays_.at(static_cast<std::size_t>(array))
              ->disks()
              .at(static_cast<std::size_t>(disk));
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    for (std::size_t d = 0; d < arrays_[a]->disks().size(); ++d) {
      Disk* disk = arrays_[a]->disks()[d].get();
      if (config_.transient_error_per_op > 0.0 ||
          config_.media_error_per_block_read > 0.0) {
        disk->set_fault_evaluator([this, disk](const DiskRequest& req) {
          if (config_.transient_error_per_op > 0.0 &&
              rng_.bernoulli(config_.transient_error_per_op))
            return DiskError::kTransient;
          if (req.kind == DiskOpKind::kRead &&
              config_.media_error_per_block_read > 0.0) {
            // Silent medium degradation surfacing under a read: plant
            // the bad block; the disk's own latent-error check turns
            // it into DiskError::kMedia on this very access.
            for (int i = 0; i < req.block_count; ++i) {
              if (rng_.bernoulli(config_.media_error_per_block_read)) {
                disk->plant_media_error(req.start_block + i);
                ++latent_errors_planted_;
              }
            }
          }
          return DiskError::kNone;
        });
      }
      schedule_failure(static_cast<int>(a), static_cast<int>(d));
      schedule_latent(static_cast<int>(a), static_cast<int>(d));
    }
  }
}

void FaultInjector::stop() {
  if (!armed_) return;
  armed_ = false;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    for (std::size_t d = 0; d < arrays_[a]->disks().size(); ++d) {
      arrays_[a]->disks()[d]->set_fault_evaluator(nullptr);
      if (failure_events_[a][d]) eq_.cancel(failure_events_[a][d]);
      if (latent_events_[a][d]) eq_.cancel(latent_events_[a][d]);
      failure_events_[a][d] = 0;
      latent_events_[a][d] = 0;
    }
  }
}

void FaultInjector::schedule_failure(int array, int disk) {
  if (config_.disk_failure_mean_ms <= 0.0) return;
  const auto a = static_cast<std::size_t>(array);
  const auto d = static_cast<std::size_t>(disk);
  failure_events_[a][d] = eq_.schedule_in(
      rng_.exponential(config_.disk_failure_mean_ms), [this, array, disk] {
        if (!armed_) return;
        failure_events_[static_cast<std::size_t>(array)]
                       [static_cast<std::size_t>(disk)] = 0;
        const auto& failed = monitor_.failed_disks(array);
        if (std::find(failed.begin(), failed.end(), disk) != failed.end())
          return;  // already down; the clock restarts after recovery
        ++disk_failures_injected_;
        monitor_.on_disk_failure(array, disk);
      });
}

void FaultInjector::schedule_latent(int array, int disk) {
  if (config_.latent_error_mean_ms <= 0.0) return;
  const auto a = static_cast<std::size_t>(array);
  const auto d = static_cast<std::size_t>(disk);
  latent_events_[a][d] = eq_.schedule_in(
      rng_.exponential(config_.latent_error_mean_ms), [this, array, disk] {
        if (!armed_) return;
        const auto& failed = monitor_.failed_disks(array);
        if (std::find(failed.begin(), failed.end(), disk) == failed.end()) {
          const std::int64_t span =
              arrays_[static_cast<std::size_t>(array)]
                  ->layout()
                  .physical_blocks_used();
          plant_latent_error(
              array, disk,
              static_cast<std::int64_t>(rng_.uniform_u64(
                  static_cast<std::uint64_t>(std::max<std::int64_t>(span, 1)))));
        }
        schedule_latent(array, disk);
      });
}

void FaultInjector::rearm_disk(int array, int disk) {
  const auto a = static_cast<std::size_t>(array);
  const auto d = static_cast<std::size_t>(disk);
  if (failure_events_[a][d]) {
    eq_.cancel(failure_events_[a][d]);
    failure_events_[a][d] = 0;
  }
  if (armed_) schedule_failure(array, disk);
}

void FaultInjector::plant_latent_error(int array, int disk,
                                       std::int64_t block) {
  disk_at(array, disk).plant_media_error(block);
  ++latent_errors_planted_;
}

}  // namespace raidsim
