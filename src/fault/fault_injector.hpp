#pragma once

#include <cstdint>
#include <vector>

#include "fault/health_monitor.hpp"
#include "util/rng.hpp"

namespace raidsim {

/// Stochastic fault model driven off the shared EventQueue with a
/// deterministic seeded RNG. Three fault classes (docs/fault_model.md):
///   whole-disk failures   exponential inter-arrival per disk (MTTF)
///   latent sector errors  planted per disk at an exponential rate, or
///                         per block read with a fixed probability;
///                         persistent until the block is rewritten
///   transient timeouts    per-op probability; retried by the
///                         controller with exponential backoff
/// All rates are in simulation milliseconds; hours_to_ms() converts the
/// paper's hour-scale MTTF figures, optionally accelerated so failures
/// land inside short simulated windows.
struct FaultInjectorConfig {
  /// Mean sim-ms between whole-disk failures of one disk (exponential).
  /// 0 disables whole-disk failure injection.
  double disk_failure_mean_ms = 0.0;
  /// Mean sim-ms between latent sector errors planted on one disk.
  /// 0 disables background latent-error planting.
  double latent_error_mean_ms = 0.0;
  /// Probability, per block read, that the medium has silently degraded
  /// under the data: the block is planted as a latent error and the
  /// read faults with DiskError::kMedia.
  double media_error_per_block_read = 0.0;
  /// Probability that any fault-aware op times out (retryable).
  double transient_error_per_op = 0.0;
  std::uint64_t seed = 0x5eedULL;

  /// Convert an MTTF/MTTR in hours to sim-ms, sped up by
  /// `acceleration` (e.g. 1e6 makes a 100,000 h MTTF land around
  /// 360,000 sim-ms -- inside a simulated drill).
  static double hours_to_ms(double hours, double acceleration = 1.0);
};

/// Installs the fault model onto a set of arrays and reports whole-disk
/// failures to a HealthMonitor, which orchestrates recovery. Wires the
/// monitor's on_disk_recovered hook to re-arm the failure clock of a
/// rebuilt disk. Call stop() before draining the event queue: the
/// latent-error clocks reschedule themselves forever.
class FaultInjector {
 public:
  FaultInjector(EventQueue& eq, HealthMonitor& monitor,
                std::vector<ArrayController*> arrays,
                const FaultInjectorConfig& config);
  FaultInjector(EventQueue& eq, HealthMonitor& monitor,
                ArrayController& array, const FaultInjectorConfig& config)
      : FaultInjector(eq, monitor, std::vector<ArrayController*>{&array},
                      config) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector() { stop(); }

  /// Install the per-op fault evaluators and start the failure and
  /// latent-error clocks. Idempotent.
  void arm();
  /// Cancel every pending injector event and uninstall the evaluators
  /// (so the event queue can drain).
  void stop();
  /// Restart the whole-disk failure clock of one disk (automatic after
  /// a monitored rebuild completes).
  void rearm_disk(int array, int disk);

  /// Immediately plant one latent sector error.
  void plant_latent_error(int array, int disk, std::int64_t block);

  std::uint64_t disk_failures_injected() const {
    return disk_failures_injected_;
  }
  std::uint64_t latent_errors_planted() const {
    return latent_errors_planted_;
  }
  bool armed() const { return armed_; }

 private:
  void schedule_failure(int array, int disk);
  void schedule_latent(int array, int disk);
  Disk& disk_at(int array, int disk);

  EventQueue& eq_;
  HealthMonitor& monitor_;
  std::vector<ArrayController*> arrays_;
  FaultInjectorConfig config_;
  Rng rng_;
  bool armed_ = false;
  // Pending event ids, per array per disk, for cancellation/rearming.
  std::vector<std::vector<EventId>> failure_events_;
  std::vector<std::vector<EventId>> latent_events_;
  std::uint64_t disk_failures_injected_ = 0;
  std::uint64_t latent_errors_planted_ = 0;
};

}  // namespace raidsim
