#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "array/rebuild.hpp"

namespace raidsim {

/// Recovery orchestrator closing the failure loop: reacts to whole-disk
/// failures (reported by the FaultInjector or by the controllers'
/// transient-retry-exhaustion path) by allocating a hot spare and
/// launching an automatic RebuildProcess, serialises concurrent repairs
/// within an array, and records -- instead of crashing on -- the
/// double-failure data-loss case the paper's MTTDL formulas quantify
/// (Section 1, Section 4.2.1).
///
/// Degradation semantics per organization:
///   Base            every failure loses that disk's data.
///   Mirror/RAID10   loss only when a disk and its twin are down at once.
///   RAID4/5, PS     loss when any two disks of the array are down at once.
/// After a recorded loss the array is left degraded (no further recovery
/// is orchestrated for it); the simulation continues gracefully.
class HealthMonitor {
 public:
  struct Options {
    /// Hot spares in the shared pool across all monitored arrays. A
    /// failure with no spare available waits (degraded) until
    /// add_spares() replenishes the pool.
    int hot_spares = 1;
    /// Delay between allocating a spare and the rebuild starting
    /// (spindle-up / slot-swap time).
    double spare_swap_ms = 0.0;
    RebuildProcess::Options rebuild;
  };

  enum class EventKind {
    kDiskFailure,
    kDataLoss,
    kSpareAllocated,
    kSpareExhausted,
    kRebuildStarted,
    kRebuildCompleted,
  };
  struct Event {
    SimTime time = 0.0;
    EventKind kind = EventKind::kDiskFailure;
    int array = -1;
    int disk = -1;
  };
  /// Recorded when redundancy is exhausted: which disks were down and
  /// how many physical blocks of content became unreconstructable.
  struct DataLossEvent {
    SimTime time = 0.0;
    int array = -1;
    std::vector<int> failed_disks;
    std::int64_t lost_blocks = 0;
  };

  HealthMonitor(EventQueue& eq, std::vector<ArrayController*> arrays,
                Options options);
  HealthMonitor(EventQueue& eq, ArrayController& array, Options options)
      : HealthMonitor(eq, std::vector<ArrayController*>{&array},
                      std::move(options)) {}

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Report a whole-disk failure. Idempotent while the failure is
  /// outstanding. Classifies data loss, marks the controller degraded,
  /// and starts spare allocation + rebuild when redundancy survives.
  void on_disk_failure(int array, int disk);

  /// Replenish the spare pool; immediately resumes any recovery that
  /// was waiting on a spare.
  void add_spares(int count);

  bool data_loss() const { return !losses_.empty(); }
  const std::vector<DataLossEvent>& losses() const { return losses_; }
  const std::vector<Event>& events() const { return events_; }
  int spares_available() const { return spares_; }
  int rebuilds_completed() const { return rebuilds_completed_; }
  bool rebuild_active(int array) const;
  /// Disks currently failed (unrecovered), in failure order.
  const std::vector<int>& failed_disks(int array) const;
  bool array_lost(int array) const;

  /// Fires when a disk returns to service after a completed rebuild
  /// (the FaultInjector uses this to re-arm the disk's failure clock).
  std::function<void(int array, int disk, SimTime)> on_disk_recovered;

 private:
  struct ArrayState {
    ArrayController* controller = nullptr;
    std::vector<int> failed;
    std::unique_ptr<RebuildProcess> rebuild;
    int rebuilding = -1;
    bool lost = false;
    bool spare_wait_logged = false;
  };

  bool causes_data_loss(const ArrayState& state, int disk) const;
  void try_recover(int array);
  void start_rebuild(int array, int disk);
  void log(EventKind kind, int array, int disk);

  EventQueue& eq_;
  Options options_;
  int spares_;
  std::vector<ArrayState> arrays_;
  std::vector<Event> events_;
  std::vector<DataLossEvent> losses_;
  int rebuilds_completed_ = 0;
};

}  // namespace raidsim
