#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "array/rebuild.hpp"

namespace raidsim {

/// Recovery orchestrator closing the failure loop: reacts to whole-disk
/// failures (reported by the FaultInjector or by the controllers'
/// transient-retry-exhaustion path) by allocating a hot spare and
/// launching an automatic RebuildProcess, serialises concurrent repairs
/// within an array, and records -- instead of crashing on -- the
/// double-failure data-loss case the paper's MTTDL formulas quantify
/// (Section 1, Section 4.2.1).
///
/// Degradation semantics per organization:
///   Base            every failure loses that disk's data.
///   Mirror/RAID10   loss only when a disk and its twin are down at once.
///   RAID4/5, PS     loss when any two disks of the array are down at once.
/// After a recorded loss the array is left degraded (no further recovery
/// is orchestrated for it); the simulation continues gracefully.
class HealthMonitor {
 public:
  /// Fail-slow detection: a periodic check samples every healthy disk's
  /// per-op latency EWMA and compares it against the array's median. A
  /// disk slow for `quarantine_after` consecutive checks is quarantined
  /// (the controller stops routing new demand reads to it); one healthy
  /// for `unquarantine_after` consecutive checks is released.
  struct SlowDiskPolicy {
    /// Sampling period; <= 0 disables the detector entirely (no tick is
    /// ever scheduled, keeping detector-off runs bit-identical).
    double check_interval_ms = 0.0;
    /// Slow when EWMA > ewma_threshold * (array median EWMA).
    double ewma_threshold = 3.0;
    /// Absolute floor: never flag a disk whose EWMA is below this, no
    /// matter the ratio (guards against near-zero medians on idle arrays).
    double min_ewma_ms = 0.0;
    int quarantine_after = 3;
    int unquarantine_after = 5;
    /// Ignore disks that have served fewer ops than this (cold EWMA).
    std::uint64_t min_ops = 16;

    bool enabled() const { return check_interval_ms > 0.0; }
  };

  struct Options {
    /// Hot spares in the shared pool across all monitored arrays. A
    /// failure with no spare available waits (degraded) until
    /// add_spares() replenishes the pool.
    int hot_spares = 1;
    /// Delay between allocating a spare and the rebuild starting
    /// (spindle-up / slot-swap time).
    double spare_swap_ms = 0.0;
    RebuildProcess::Options rebuild;
    SlowDiskPolicy slow_disk;
  };

  enum class EventKind {
    kDiskFailure,
    kDataLoss,
    kSpareAllocated,
    kSpareExhausted,
    kRebuildStarted,
    kRebuildCompleted,
    kDiskSlow,
    kQuarantined,
    kUnquarantined,
  };
  struct Event {
    SimTime time = 0.0;
    EventKind kind = EventKind::kDiskFailure;
    int array = -1;
    int disk = -1;
  };
  /// Recorded when redundancy is exhausted: which disks were down and
  /// how many physical blocks of content became unreconstructable.
  struct DataLossEvent {
    SimTime time = 0.0;
    int array = -1;
    std::vector<int> failed_disks;
    std::int64_t lost_blocks = 0;
  };

  HealthMonitor(EventQueue& eq, std::vector<ArrayController*> arrays,
                Options options);
  HealthMonitor(EventQueue& eq, ArrayController& array, Options options)
      : HealthMonitor(eq, std::vector<ArrayController*>{&array},
                      std::move(options)) {}

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;
  /// Stops the detector tick and releases this run's still-quarantined
  /// disks from the process-wide quarantine gauge, so a long-lived
  /// daemon's scrape reflects live state rather than accumulating every
  /// finished run's leftovers.
  ~HealthMonitor();

  /// Start the periodic slow-disk detector (no-op unless
  /// Options::slow_disk.check_interval_ms > 0). Idempotent.
  void start_slow_checks();
  /// Cancel the detector's self-rescheduling tick so the event queue can
  /// drain. Quarantine state is left as-is.
  void stop_slow_checks();
  bool slow_checks_active() const { return slow_check_event_ != 0; }
  std::uint64_t slow_detections() const { return slow_detections_; }
  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t unquarantines() const { return unquarantines_; }

  /// Report a whole-disk failure. Idempotent while the failure is
  /// outstanding. Classifies data loss, marks the controller degraded,
  /// and starts spare allocation + rebuild when redundancy survives.
  void on_disk_failure(int array, int disk);

  /// Replenish the spare pool; immediately resumes any recovery that
  /// was waiting on a spare.
  void add_spares(int count);

  bool data_loss() const { return !losses_.empty(); }
  const std::vector<DataLossEvent>& losses() const { return losses_; }
  const std::vector<Event>& events() const { return events_; }
  int spares_available() const { return spares_; }
  int rebuilds_completed() const { return rebuilds_completed_; }
  bool rebuild_active(int array) const;
  /// Disks currently failed (unrecovered), in failure order.
  const std::vector<int>& failed_disks(int array) const;
  bool array_lost(int array) const;

  /// Fires when a disk returns to service after a completed rebuild
  /// (the FaultInjector uses this to re-arm the disk's failure clock).
  std::function<void(int array, int disk, SimTime)> on_disk_recovered;

 private:
  struct ArrayState {
    ArrayController* controller = nullptr;
    std::vector<int> failed;
    std::unique_ptr<RebuildProcess> rebuild;
    int rebuilding = -1;
    bool lost = false;
    bool spare_wait_logged = false;
    // Slow-disk detector streaks, per disk (sized on first check).
    std::vector<int> slow_streak;
    std::vector<int> healthy_streak;
  };

  bool causes_data_loss(const ArrayState& state, int disk) const;
  void try_recover(int array);
  void start_rebuild(int array, int disk);
  void log(EventKind kind, int array, int disk);
  void slow_check_tick();

  EventQueue& eq_;
  Options options_;
  int spares_;
  std::vector<ArrayState> arrays_;
  std::vector<Event> events_;
  std::vector<DataLossEvent> losses_;
  int rebuilds_completed_ = 0;
  EventId slow_check_event_ = 0;
  std::uint64_t slow_detections_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t unquarantines_ = 0;
};

}  // namespace raidsim
