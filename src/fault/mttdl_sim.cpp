#include "fault/mttdl_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace raidsim {

namespace {

/// Lifetime of one group of `disks` drives that loses data when a
/// second drive fails inside the first failure's repair window (the
/// regenerative structure behind the MTTF^2 / (k (k-1) MTTR) formula).
/// For disks == 1 the first failure is the loss.
double group_lifetime_hours(int disks, const MttdlConfig& config, Rng& rng) {
  const double mttf = config.params.disk_mttf_hours;
  const double mttr = config.params.disk_mttr_hours;
  double t = 0.0;
  if (disks == 1) return rng.exponential(mttf);
  for (;;) {
    // All disks healthy: first failure after Exp(MTTF / k).
    t += rng.exponential(mttf / static_cast<double>(disks));
    const double repair =
        config.exponential_repair ? rng.exponential(mttr) : mttr;
    // Race between the repair and the next failure among the k-1
    // survivors (memoryless, so their clocks restart for free).
    const double second =
        rng.exponential(mttf / static_cast<double>(disks - 1));
    if (second < repair) return t + second;
    t += repair;
  }
}

}  // namespace

double simulate_lifetime_hours(const MttdlConfig& config, Rng& rng) {
  const int d = config.total_data_disks;
  const int n = config.array_data_disks;
  double lifetime = std::numeric_limits<double>::infinity();
  switch (config.organization) {
    case Organization::kBase: {
      // D independent single-disk "groups": loss at the first failure.
      for (int i = 0; i < d; ++i)
        lifetime = std::min(lifetime, group_lifetime_hours(1, config, rng));
      break;
    }
    case Organization::kMirror:
    case Organization::kRaid10: {
      // One mirrored pair per data disk.
      for (int i = 0; i < d; ++i)
        lifetime = std::min(lifetime, group_lifetime_hours(2, config, rng));
      break;
    }
    case Organization::kRaid4:
    case Organization::kRaid5:
    case Organization::kParityStriping: {
      // Arrays of up to N data disks + 1 parity disk each.
      for (int first = 0; first < d; first += n) {
        const int data = std::min(n, d - first);
        lifetime =
            std::min(lifetime, group_lifetime_hours(data + 1, config, rng));
      }
      break;
    }
  }
  return lifetime;
}

MttdlEstimate simulate_mttdl(const MttdlConfig& config, int lifetimes) {
  if (lifetimes < 2)
    throw std::invalid_argument("simulate_mttdl: need >= 2 lifetimes");
  if (config.total_data_disks < 1 || config.array_data_disks < 1)
    throw std::invalid_argument("simulate_mttdl: non-positive disk counts");
  Rng rng(config.seed);
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < lifetimes; ++i) {
    const double life = simulate_lifetime_hours(config, rng);
    sum += life;
    sum_sq += life * life;
  }
  MttdlEstimate estimate;
  estimate.lifetimes = lifetimes;
  const double n = static_cast<double>(lifetimes);
  estimate.mean_hours = sum / n;
  const double var =
      std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0));
  estimate.stddev_hours = std::sqrt(var);
  const double half = 1.96 * estimate.stddev_hours / std::sqrt(n);
  estimate.ci_low_hours = estimate.mean_hours - half;
  estimate.ci_high_hours = estimate.mean_hours + half;
  estimate.analytic_hours =
      system_mttdl_hours(config.organization, config.total_data_disks,
                         config.array_data_disks, config.params);
  return estimate;
}

}  // namespace raidsim
