#include "fault/scrub.hpp"

#include <algorithm>
#include <stdexcept>

namespace raidsim {

ScrubProcess::ScrubProcess(EventQueue& eq, ArrayController& controller,
                           Options options)
    : eq_(eq),
      controller_(controller),
      options_(options),
      span_(controller.layout().physical_blocks_used()) {
  if (options_.blocks_per_pass < 1)
    throw std::invalid_argument("ScrubProcess: blocks_per_pass < 1");
  if (options_.inter_pass_gap_ms < 0.0)
    throw std::invalid_argument("ScrubProcess: negative gap");
}

double ScrubProcess::sweep_progress() const {
  const double total = static_cast<double>(span_) *
                       static_cast<double>(controller_.layout().total_disks());
  if (total <= 0.0) return 1.0;
  return (static_cast<double>(disk_) * static_cast<double>(span_) +
          static_cast<double>(position_)) /
         total;
}

void ScrubProcess::start() {
  if (running_) throw std::logic_error("ScrubProcess: already running");
  running_ = true;
  stop_requested_ = false;
  disk_ = 0;
  position_ = 0;
  next_pass();
}

void ScrubProcess::stop() {
  stop_requested_ = true;
  if (pending_) {
    eq_.cancel(pending_);
    pending_ = 0;
    running_ = false;
  }
}

void ScrubProcess::next_pass() {
  pending_ = 0;
  if (stop_requested_) {
    running_ = false;
    return;
  }
  const int total_disks = controller_.layout().total_disks();
  // Skip the failed disk: its content is being reconstructed by the
  // rebuild, which rewrites (and thereby remaps) every block anyway.
  while (disk_ < total_disks && controller_.failed_disk() == disk_) {
    ++stats_.disks_skipped;
    ++disk_;
    position_ = 0;
  }
  if (disk_ >= total_disks) {
    ++stats_.sweeps_completed;
    disk_ = 0;
    position_ = 0;
    if (options_.sweep_interval_ms < 0.0) {
      running_ = false;
      return;
    }
    pending_ = eq_.schedule_in(options_.sweep_interval_ms,
                               [this] { next_pass(); });
    return;
  }
  const int take = static_cast<int>(
      std::min<std::int64_t>(options_.blocks_per_pass, span_ - position_));
  const PhysicalExtent extent{disk_, position_, take};
  stats_.errors_found += static_cast<std::uint64_t>(
      controller_.disks()[static_cast<std::size_t>(disk_)]->media_errors_in(
          position_, take));
  // The read goes through the controller's fault-aware path: a latent
  // error it hits is reconstructed from the group and rewritten in
  // place (ControllerStats::media_repairs counts the remaps).
  controller_.scrub_extent(extent, options_.priority, [this, take](SimTime) {
    stats_.blocks_scrubbed += static_cast<std::uint64_t>(take);
    position_ += take;
    if (position_ >= span_) {
      ++disk_;
      position_ = 0;
    }
    if (options_.inter_pass_gap_ms > 0.0) {
      pending_ = eq_.schedule_in(options_.inter_pass_gap_ms,
                                 [this] { next_pass(); });
    } else {
      next_pass();
    }
  });
}

}  // namespace raidsim
