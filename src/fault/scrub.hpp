#pragma once

#include <cstdint>

#include "array/controller.hpp"

namespace raidsim {

/// Background media scrub (patrol read), modelled on RebuildProcess:
/// sweeps every disk of the array in SCAN order (ascending block
/// address, one disk after another) at kDestage priority, reading
/// `blocks_per_pass` blocks per pass so foreground traffic always wins
/// the queue. A read that hits a latent sector error is repaired by the
/// controller's reconstruct-and-rewrite path (remap), converting silent
/// media degradation into a short, bounded repair long before a second
/// disk failure could make it unreconstructable -- the scrubbing role
/// Thomasian's RAID surveys treat as a first-class determinant of
/// MTTDL.
class ScrubProcess {
 public:
  struct Options {
    /// Blocks read per pass (one track by default).
    int blocks_per_pass = 6;
    /// Pause between passes, throttling scrub aggressiveness.
    double inter_pass_gap_ms = 0.0;
    /// Queueing priority of scrub reads (background by default).
    DiskPriority priority = DiskPriority::kDestage;
    /// Gap between the end of one full-array sweep and the start of the
    /// next; negative = run a single sweep and stop.
    double sweep_interval_ms = -1.0;
  };

  struct Stats {
    std::uint64_t blocks_scrubbed = 0;
    std::uint64_t errors_found = 0;     // latent errors detected by scrub
    std::uint64_t sweeps_completed = 0;
    std::uint64_t disks_skipped = 0;    // failed disks bypassed mid-sweep
  };

  ScrubProcess(EventQueue& eq, ArrayController& controller, Options options);
  ScrubProcess(EventQueue& eq, ArrayController& controller)
      : ScrubProcess(eq, controller, Options{}) {}

  ScrubProcess(const ScrubProcess&) = delete;
  ScrubProcess& operator=(const ScrubProcess&) = delete;

  /// Begin sweeping. Throws if already running.
  void start();
  /// Stop after the in-flight pass (cancels any scheduled one).
  void stop();

  bool running() const { return running_; }
  const Stats& stats() const { return stats_; }
  /// Sweep position, for progress reporting.
  int current_disk() const { return disk_; }
  double sweep_progress() const;

 private:
  void next_pass();

  EventQueue& eq_;
  ArrayController& controller_;
  Options options_;
  std::int64_t span_;  // blocks to scrub per disk
  int disk_ = 0;
  std::int64_t position_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  EventId pending_ = 0;
  Stats stats_;
};

}  // namespace raidsim
