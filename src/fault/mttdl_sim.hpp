#pragma once

#include <cstdint>

#include "core/reliability.hpp"
#include "util/rng.hpp"

namespace raidsim {

/// Monte-Carlo validation of the analytic MTTDL model
/// (core/reliability.hpp): simulates whole failure/repair lifetimes of
/// a system of arrays -- exponential per-disk failures, exponential (or
/// fixed) repairs -- until redundancy is exhausted, and estimates the
/// mean time to data loss with a confidence interval. Lifetimes are
/// "accelerated" by construction: only the failure/repair epochs are
/// simulated, so a 10^9-hour lifetime costs a few thousand random
/// draws, not a replay of every I/O.
///
/// Loss semantics match HealthMonitor::causes_data_loss:
///   Base            first failure anywhere
///   Mirror/RAID10   a pair's second disk failing while the first is
///                   still under repair
///   RAID4/5, PS     any second failure in an (N+1)-disk array during
///                   the first's repair window
struct MttdlConfig {
  Organization organization = Organization::kRaid5;
  int total_data_disks = 10;  // D: data-disk equivalents in the system
  int array_data_disks = 10;  // N: data disks per array
  ReliabilityParams params;
  /// true: repair windows ~ Exp(MTTR) (the analytic model's Markov
  /// assumption); false: fixed MTTR.
  bool exponential_repair = true;
  std::uint64_t seed = 1;
};

struct MttdlEstimate {
  int lifetimes = 0;
  double mean_hours = 0.0;
  double stddev_hours = 0.0;
  double ci_low_hours = 0.0;   // 95% confidence interval on the mean
  double ci_high_hours = 0.0;
  double analytic_hours = 0.0;  // system_mttdl_hours() for this config

  double ratio() const {
    return analytic_hours > 0.0 ? mean_hours / analytic_hours : 0.0;
  }
  /// Log-scale agreement: simulated mean within `factor` of analytic.
  bool agrees_within(double factor) const {
    const double r = ratio();
    return r > 0.0 && r < factor && 1.0 / r < factor;
  }
};

/// One system lifetime: hours until the first data loss. Deterministic
/// given the Rng state.
double simulate_lifetime_hours(const MttdlConfig& config, Rng& rng);

/// Run `lifetimes` independent lifetimes and estimate the MTTDL.
MttdlEstimate simulate_mttdl(const MttdlConfig& config, int lifetimes);

}  // namespace raidsim
