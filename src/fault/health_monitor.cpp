#include "fault/health_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics_registry.hpp"

namespace {

/// Registry mirror of the quarantine lifecycle, so a live scrape shows
/// fail-slow containment without waiting for the run's report.
struct HealthMetrics {
  raidsim::Counter& slow = raidsim::MetricsRegistry::instance().counter(
      "raidsim_health_slow_detections_total",
      "Disks newly flagged slow by the health monitor");
  raidsim::Counter& quarantines =
      raidsim::MetricsRegistry::instance().counter(
          "raidsim_health_quarantines_total", "Disk quarantine transitions");
  raidsim::Counter& unquarantines =
      raidsim::MetricsRegistry::instance().counter(
          "raidsim_health_unquarantines_total",
          "Disk unquarantine transitions");
  raidsim::Gauge& quarantined = raidsim::MetricsRegistry::instance().gauge(
      "raidsim_health_quarantined_disks", "Disks currently quarantined");
};

HealthMetrics& health_metrics() {
  static HealthMetrics metrics;
  return metrics;
}

}  // namespace

namespace raidsim {

HealthMonitor::HealthMonitor(EventQueue& eq,
                             std::vector<ArrayController*> arrays,
                             Options options)
    : eq_(eq), options_(std::move(options)), spares_(options_.hot_spares) {
  if (arrays.empty())
    throw std::invalid_argument("HealthMonitor: no arrays to monitor");
  if (options_.hot_spares < 0 || options_.spare_swap_ms < 0.0)
    throw std::invalid_argument("HealthMonitor: negative options");
  if (options_.slow_disk.ewma_threshold <= 0.0 ||
      options_.slow_disk.min_ewma_ms < 0.0 ||
      options_.slow_disk.quarantine_after < 1 ||
      options_.slow_disk.unquarantine_after < 1)
    throw std::invalid_argument("HealthMonitor: bad slow-disk policy");
  arrays_.reserve(arrays.size());
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    if (arrays[a] == nullptr)
      throw std::invalid_argument("HealthMonitor: null controller");
    ArrayState state;
    state.controller = arrays[a];
    arrays_.push_back(std::move(state));
    // Wire the controllers' retry-exhaustion path into this monitor so
    // a disk dying under a transient storm follows the same recovery
    // orchestration as an injected whole-disk failure.
    const int index = static_cast<int>(a);
    arrays[a]->set_disk_dead_handler(
        [this, index](int disk, SimTime) { on_disk_failure(index, disk); });
  }
}

HealthMonitor::~HealthMonitor() {
  stop_slow_checks();
  // Every quarantine this run entered bumped the process-global gauge;
  // give back the ones it never released so the live scrape does not
  // drift upward across runs in a long-lived daemon.
  const std::uint64_t still_quarantined = quarantines_ - unquarantines_;
  if (still_quarantined > 0)
    health_metrics().quarantined.add(
        -static_cast<double>(still_quarantined));
}

void HealthMonitor::log(EventKind kind, int array, int disk) {
  events_.push_back(Event{eq_.now(), kind, array, disk});
}

void HealthMonitor::start_slow_checks() {
  if (!options_.slow_disk.enabled() || slow_check_event_ != 0) return;
  slow_check_event_ = eq_.schedule_in(options_.slow_disk.check_interval_ms,
                                      [this] { slow_check_tick(); });
}

void HealthMonitor::stop_slow_checks() {
  if (slow_check_event_ == 0) return;
  eq_.cancel(slow_check_event_);
  slow_check_event_ = 0;
}

void HealthMonitor::slow_check_tick() {
  slow_check_event_ = 0;
  const SlowDiskPolicy& policy = options_.slow_disk;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    auto& s = arrays_[a];
    if (s.lost) continue;
    const auto& disks = s.controller->disks();
    const std::size_t n = disks.size();
    if (s.slow_streak.size() != n) {
      s.slow_streak.assign(n, 0);
      s.healthy_streak.assign(n, 0);
    }
    // The reference is the median EWMA over warm, non-failed members:
    // the whole point of a windowed-relative detector is that "slow" is
    // defined by the disk's siblings under the same workload, not by an
    // absolute number that drifts with load.
    std::vector<double> warm;
    warm.reserve(n);
    for (std::size_t d = 0; d < n; ++d) {
      const Disk& disk = *disks[d];
      const bool failed =
          std::find(s.failed.begin(), s.failed.end(), static_cast<int>(d)) !=
          s.failed.end();
      if (failed || disk.op_latency().count() < policy.min_ops) continue;
      warm.push_back(disk.ewma_latency_ms());
    }
    if (warm.size() < 2) continue;
    std::nth_element(warm.begin(), warm.begin() + warm.size() / 2, warm.end());
    const double median = warm[warm.size() / 2];
    const double threshold =
        std::max(policy.min_ewma_ms, policy.ewma_threshold * median);
    if (threshold <= 0.0) continue;

    for (std::size_t d = 0; d < n; ++d) {
      const Disk& disk = *disks[d];
      const int di = static_cast<int>(d);
      const bool failed =
          std::find(s.failed.begin(), s.failed.end(), di) != s.failed.end();
      if (failed || disk.op_latency().count() < policy.min_ops) continue;
      const bool slow = disk.ewma_latency_ms() > threshold;
      if (slow) {
        s.healthy_streak[d] = 0;
        if (++s.slow_streak[d] == 1) {
          ++slow_detections_;
          health_metrics().slow.add(1);
          log(EventKind::kDiskSlow, static_cast<int>(a), di);
        }
        if (!s.controller->is_quarantined(di) &&
            s.slow_streak[d] >= policy.quarantine_after) {
          s.controller->set_quarantined(di, true);
          ++quarantines_;
          health_metrics().quarantines.add(1);
          health_metrics().quarantined.add(1.0);
          log(EventKind::kQuarantined, static_cast<int>(a), di);
        }
      } else {
        s.slow_streak[d] = 0;
        if (s.controller->is_quarantined(di) &&
            ++s.healthy_streak[d] >= policy.unquarantine_after) {
          s.controller->set_quarantined(di, false);
          ++unquarantines_;
          health_metrics().unquarantines.add(1);
          health_metrics().quarantined.add(-1.0);
          log(EventKind::kUnquarantined, static_cast<int>(a), di);
        }
      }
    }
  }
  slow_check_event_ = eq_.schedule_in(policy.check_interval_ms,
                                      [this] { slow_check_tick(); });
}

bool HealthMonitor::rebuild_active(int array) const {
  const auto& s = arrays_.at(static_cast<std::size_t>(array));
  return s.rebuild != nullptr && s.rebuild->running();
}

const std::vector<int>& HealthMonitor::failed_disks(int array) const {
  return arrays_.at(static_cast<std::size_t>(array)).failed;
}

bool HealthMonitor::array_lost(int array) const {
  return arrays_.at(static_cast<std::size_t>(array)).lost;
}

bool HealthMonitor::causes_data_loss(const ArrayState& state, int disk) const {
  const Layout& layout = state.controller->layout();
  switch (layout.organization()) {
    case Organization::kBase:
      return true;  // no redundancy: every failure loses data
    case Organization::kMirror:
    case Organization::kRaid10: {
      const int twin = layout.mirror_of(disk);
      return std::find(state.failed.begin(), state.failed.end(), twin) !=
             state.failed.end();
    }
    case Organization::kRaid4:
    case Organization::kRaid5:
    case Organization::kParityStriping:
      // Single parity: any second concurrent failure in the array.
      return !state.failed.empty();
  }
  return true;
}

void HealthMonitor::on_disk_failure(int array, int disk) {
  auto& s = arrays_.at(static_cast<std::size_t>(array));
  if (disk < 0 || disk >= s.controller->layout().total_disks())
    throw std::invalid_argument("HealthMonitor: no such disk");
  if (std::find(s.failed.begin(), s.failed.end(), disk) != s.failed.end())
    return;  // already known and unrecovered

  log(EventKind::kDiskFailure, array, disk);
  const bool loss = causes_data_loss(s, disk);
  s.failed.push_back(disk);

  if (loss) {
    // Graceful degradation: record what was lost and when; the
    // simulation keeps running (no crash, no silent success).
    s.lost = true;
    DataLossEvent event;
    event.time = eq_.now();
    event.array = array;
    event.failed_disks = s.failed;
    event.lost_blocks = s.controller->layout().physical_blocks_used();
    losses_.push_back(std::move(event));
    log(EventKind::kDataLoss, array, disk);
    return;
  }

  // Mark the controller degraded (it models a single failure; a
  // concurrent failure in another mirrored pair waits its turn).
  if (s.controller->failed_disk() < 0) s.controller->fail_disk(disk);
  try_recover(array);
}

void HealthMonitor::add_spares(int count) {
  if (count < 0) throw std::invalid_argument("HealthMonitor: negative spares");
  spares_ += count;
  for (std::size_t a = 0; a < arrays_.size(); ++a)
    try_recover(static_cast<int>(a));
}

void HealthMonitor::try_recover(int array) {
  auto& s = arrays_[static_cast<std::size_t>(array)];
  if (s.lost || s.failed.empty() || rebuild_active(array)) return;
  const int disk = s.failed.front();
  if (s.controller->failed_disk() < 0) s.controller->fail_disk(disk);
  if (s.controller->failed_disk() != disk) return;  // another repair owns it
  if (spares_ == 0) {
    if (!s.spare_wait_logged) {
      log(EventKind::kSpareExhausted, array, disk);
      s.spare_wait_logged = true;
    }
    return;
  }
  --spares_;
  s.spare_wait_logged = false;
  log(EventKind::kSpareAllocated, array, disk);
  if (options_.spare_swap_ms > 0.0) {
    eq_.schedule_in(options_.spare_swap_ms,
                    [this, array, disk] { start_rebuild(array, disk); });
  } else {
    start_rebuild(array, disk);
  }
}

void HealthMonitor::start_rebuild(int array, int disk) {
  auto& s = arrays_[static_cast<std::size_t>(array)];
  // The array may have lost data while the spare was spinning up; the
  // spare goes back to the pool.
  if (s.lost || s.controller->failed_disk() != disk) {
    ++spares_;
    return;
  }
  // Assigning the new process destroys any previous (finished) one --
  // never inside its own completion callback (which defers via the
  // event queue).
  s.rebuild = std::make_unique<RebuildProcess>(eq_, *s.controller,
                                               options_.rebuild);
  s.rebuilding = disk;
  log(EventKind::kRebuildStarted, array, disk);
  s.rebuild->start([this, array, disk](SimTime t) {
    auto& state = arrays_[static_cast<std::size_t>(array)];
    ++rebuilds_completed_;
    log(EventKind::kRebuildCompleted, array, disk);
    state.failed.erase(
        std::remove(state.failed.begin(), state.failed.end(), disk),
        state.failed.end());
    state.rebuilding = -1;
    if (on_disk_recovered) on_disk_recovered(array, disk, t);
    // Defer the next repair to after this callback unwinds so the
    // finished RebuildProcess is never destroyed mid-callback.
    eq_.schedule_in(0.0, [this, array] { try_recover(array); });
  });
}

}  // namespace raidsim
