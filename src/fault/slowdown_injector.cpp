#include "fault/slowdown_injector.hpp"

#include <cmath>
#include <stdexcept>

namespace raidsim {

SlowdownInjector::SlowdownInjector(EventQueue& eq,
                                   std::vector<ArrayController*> arrays,
                                   const SlowdownConfig& config)
    : eq_(eq), arrays_(std::move(arrays)), config_(config) {
  if (arrays_.empty())
    throw std::invalid_argument("SlowdownInjector: no arrays");
  if (config_.spike_per_op < 0.0 || config_.spike_per_op > 1.0 ||
      config_.spike_ms_mean < 0.0 || config_.sticky_onset_mean_ms < 0.0 ||
      config_.sticky_factor < 1.0 || config_.sticky_duration_ms < 0.0 ||
      config_.stall_period_ms < 0.0 || config_.stall_duration_ms < 0.0 ||
      config_.stall_duration_ms > config_.stall_period_ms)
    throw std::invalid_argument("SlowdownInjector: bad config");
  // Per-disk RNG streams split off the root in (array, disk) order:
  // deterministic, and independent of how many draws any one disk makes.
  Rng root(config_.seed);
  states_.resize(arrays_.size());
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    if (arrays_[a] == nullptr)
      throw std::invalid_argument("SlowdownInjector: null controller");
    const std::size_t disks = arrays_[a]->disks().size();
    states_[a].resize(disks);
    for (std::size_t d = 0; d < disks; ++d) {
      states_[a][d].rng = root.split();
      if (config_.stall_period_ms > 0.0)
        states_[a][d].stall_phase =
            states_[a][d].rng.uniform(0.0, config_.stall_period_ms);
    }
  }
}

SlowdownInjector::DiskState& SlowdownInjector::state_at(int array, int disk) {
  return states_.at(static_cast<std::size_t>(array))
      .at(static_cast<std::size_t>(disk));
}

double SlowdownInjector::extra_ms(DiskState& st, SimTime service_start,
                                  double planned_service_ms) {
  double extra = 0.0;
  if (st.sticky)
    extra += (config_.sticky_factor - 1.0) * planned_service_ms;
  if (config_.spike_per_op > 0.0 && config_.spike_ms_mean > 0.0 &&
      st.rng.bernoulli(config_.spike_per_op)) {
    extra += st.rng.exponential(config_.spike_ms_mean);
    ++spikes_injected_;
  }
  if (config_.stall_period_ms > 0.0 && config_.stall_duration_ms > 0.0) {
    // Stall windows are pure arithmetic on the service-start time (no
    // scheduled events): an op beginning service inside the window
    // waits for its end.
    const double pos =
        std::fmod(service_start + st.stall_phase, config_.stall_period_ms);
    if (pos < config_.stall_duration_ms) {
      extra += config_.stall_duration_ms - pos;
      ++stalls_hit_;
    }
  }
  return extra;
}

void SlowdownInjector::arm() {
  if (armed_ || !config_.enabled()) return;
  armed_ = true;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    for (std::size_t d = 0; d < arrays_[a]->disks().size(); ++d) {
      DiskState* st = &states_[a][d];
      arrays_[a]->disks()[d]->set_slowdown_hook(
          [this, st](const DiskRequest&, SimTime service_start,
                     double planned_service_ms) {
            return extra_ms(*st, service_start, planned_service_ms);
          });
      schedule_onset(static_cast<int>(a), static_cast<int>(d));
    }
  }
}

void SlowdownInjector::stop() {
  if (!armed_) return;
  armed_ = false;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    for (std::size_t d = 0; d < arrays_[a]->disks().size(); ++d) {
      arrays_[a]->disks()[d]->set_slowdown_hook(nullptr);
      DiskState& st = states_[a][d];
      if (st.onset_event) eq_.cancel(st.onset_event);
      if (st.heal_event) eq_.cancel(st.heal_event);
      st.onset_event = 0;
      st.heal_event = 0;
    }
  }
}

void SlowdownInjector::schedule_onset(int array, int disk) {
  if (config_.sticky_onset_mean_ms <= 0.0) return;
  DiskState& st = state_at(array, disk);
  st.onset_event = eq_.schedule_in(
      st.rng.exponential(config_.sticky_onset_mean_ms), [this, array, disk] {
        DiskState& s = state_at(array, disk);
        s.onset_event = 0;
        if (!armed_ || s.sticky) return;
        begin_sticky(array, disk);
      });
}

void SlowdownInjector::begin_sticky(int array, int disk) {
  DiskState& st = state_at(array, disk);
  st.sticky = true;
  ++sticky_onsets_;
  if (config_.sticky_duration_ms > 0.0) {
    st.heal_event =
        eq_.schedule_in(config_.sticky_duration_ms, [this, array, disk] {
          DiskState& s = state_at(array, disk);
          s.heal_event = 0;
          s.sticky = false;
          // A healed disk can degrade again later.
          if (armed_) schedule_onset(array, disk);
        });
  }
}

void SlowdownInjector::force_sticky(int array, int disk) {
  DiskState& st = state_at(array, disk);
  if (st.sticky) return;
  if (st.onset_event) {
    eq_.cancel(st.onset_event);
    st.onset_event = 0;
  }
  begin_sticky(array, disk);
}

void SlowdownInjector::repair_disk(int array, int disk) {
  DiskState& st = state_at(array, disk);
  st.sticky = false;
  if (st.heal_event) {
    eq_.cancel(st.heal_event);
    st.heal_event = 0;
  }
  if (armed_ && st.onset_event == 0) schedule_onset(array, disk);
}

bool SlowdownInjector::sticky_active(int array, int disk) const {
  return states_.at(static_cast<std::size_t>(array))
      .at(static_cast<std::size_t>(disk))
      .sticky;
}

}  // namespace raidsim
