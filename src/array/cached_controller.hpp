#pragma once

#include <deque>
#include <vector>

#include "array/controller.hpp"
#include "array/parity_spool.hpp"
#include "cache/nv_cache.hpp"

namespace raidsim {

/// Array controller with a non-volatile cache (Section 3.4):
///
///  * read hits are served at channel speed; misses fetch from disk and
///    wait for a dirty LRU victim's writeback when one is replaced;
///  * writes complete once the data are in the NV cache; a periodic
///    background destage process groups consecutive dirty blocks and
///    writes them back at low disk priority, spread across the destage
///    period so they interfere minimally with demand reads;
///  * parity organizations retain the old content of dirtied blocks so
///    the destage does not re-read it; the old parity is still read on
///    the parity disk (read-modify-write);
///  * with `parity_caching` (RAID4, Section 4.4) parity updates are
///    buffered in the same cache and spooled to the dedicated parity
///    disk in SCAN order; when parity fills the cache, writes stall until
///    a slot frees.
class CachedController : public ArrayController {
 public:
  struct CacheConfig {
    std::int64_t cache_bytes = 16ll << 20;
    double destage_period_ms = 300.0;
    /// Retain old data for parity organizations (auto-ignored for
    /// Base/Mirror). Exposed for the old-data-retention ablation.
    bool retain_old_data = true;
    /// Longest run of consecutive dirty blocks destaged as one access.
    int max_destage_run_blocks = 64;
    /// RAID4 with parity caching.
    bool parity_caching = false;
    /// false = pure LRU writeback (dirty blocks leave only as eviction
    /// victims); used by the destage-policy ablation.
    bool periodic_destage = true;
    /// Write-hole closure: record every stripe-update intent in an NVRAM
    /// journal before issuing its disk writes (parity organizations
    /// only). Costs no simulated time; recovery replays open intents.
    bool intent_journal = false;
  };

  CachedController(EventQueue& eq, const Config& config,
                   const CacheConfig& cache_config);

  void submit(const ArrayRequest& request,
              Completion on_complete) override;

  /// Cancel the periodic destage timer (call once the workload is fully
  /// drained; in-flight work still completes).
  void shutdown() override;

  const NvCache::Stats* cache_stats() const override {
    return &cache_.stats();
  }

  const NvCache* nv_cache() const override { return &cache_; }

  /// Controller crash: in addition to the base-class behaviour (disks
  /// lose power, journal survives or wipes), parked writes are dropped,
  /// the destage timer stops, and the NV cache either survives with its
  /// in-flight destage state reset (`preserve_nvram`) or is wiped.
  void crash_halt(bool preserve_nvram) override;
  void crash_restart() override;

  const NvCache& cache() const { return cache_; }
  std::size_t parity_queue_length() const { return spool_.size(); }

 private:
  void submit_read(const ArrayRequest& request,
                   Completion on_complete);
  void submit_write(const ArrayRequest& request,
                    Completion on_complete);

  /// Try to push the request's blocks into the cache; returns false and
  /// parks the request when the cache has no usable slot.
  struct StalledWrite {
    std::vector<std::int64_t> blocks;
    std::size_t next = 0;
    std::uint64_t obs_id = 0;  // host span the stall markers attach to
    Completion on_complete;
  };
  void try_cache_writes(OpRef<StalledWrite> write);
  void pump_stalled();

  void schedule_destage_tick();
  void destage_tick();
  /// Write one run of consecutive dirty logical blocks back to disk.
  void issue_destage_run(std::int64_t start_block, int count);
  /// Synchronous writeback of an evicted dirty block; `done` fires when
  /// it is on disk (including its parity update).
  void victim_writeback(std::int64_t block, DiskPriority priority,
                        Completion done);
  /// Execute one update plan routing the parity through the RAID4 spool.
  void execute_update_spooled(const StripeUpdate& update,
                              Completion done);

  bool old_cached_extent(const PhysicalExtent& extent) const;

  // RAID4 parity spool. Entries carry the audit covers of the stripe
  // update that buffered them plus callbacks to fire when the parity
  // lands (the journal's parity-durable arrival).
  struct SpoolEntry {
    bool full_stripe = false;
    std::vector<ParityCover> covers;
    std::vector<Completion> on_durable;
  };
  void add_spool_entry(std::int64_t parity_block, bool full_stripe,
                       std::vector<ParityCover> covers,
                       Completion on_durable);
  void pump_spooler();

  NvCache cache_;
  CacheConfig cache_config_;
  bool parity_org_;
  EventId destage_event_ = 0;
  bool shutdown_ = false;
  std::deque<OpRef<StalledWrite>> stalled_;
  std::unique_ptr<IntentJournal> journal_owned_;

  // Parity spool state: key = physical block on the parity disk. Flat
  // hot-key/cold-body layout -- see parity_spool.hpp.
  FlatSpool<SpoolEntry> spool_;
  std::int64_t scan_position_ = 0;
  bool spooling_ = false;
  std::int64_t spooling_block_ = -1;  // in-service entry (crash requeue)
  SpoolEntry spooling_entry_;
};

}  // namespace raidsim
