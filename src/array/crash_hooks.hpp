#pragma once

#include <cstdint>

#include "layout/layout.hpp"
#include "sim/event_queue.hpp"

namespace raidsim {

/// How a parity update covers one logical data block. A read-modify-write
/// parity update applies an XOR delta (new content xor old content); the
/// delta is only correct when the "old" content it was computed against
/// is exactly what the parity currently covers. `assumed_old_gen` records
/// which generation the controller used as the old copy when it planned
/// the update -- captured from the NV-cache old-data slot or from the
/// on-disk state at plan-issue time.
struct ParityCover {
  std::int64_t block = -1;            // array-local logical block
  std::uint64_t gen = 0;              // generation the update installs
  std::uint64_t assumed_old_gen = 0;  // generation the delta was built from
};

/// Bookkeeping interface the controllers call on every step of a logical
/// write's life: host acceptance, NV-cache residency, data landing on the
/// medium, parity coverage advancing. Implementations (the shadow-model
/// auditor in src/crash) mirror the array's durable state so that silent
/// write-hole corruption and lost writes become counted, attributable
/// events. Every hook is pure bookkeeping and consumes zero simulated
/// time, so attaching an auditor never perturbs the event timeline --
/// journal-on and journal-off runs of the same seed stay cycle-identical
/// up to the crash instant.
class WriteAuditHooks {
 public:
  virtual ~WriteAuditHooks() = default;

  /// A host write touched this logical block; returns the new content
  /// generation (monotonic per block).
  virtual std::uint64_t host_write(std::int64_t block) = 0;

  /// The controller acknowledged generation `gen` of `block` to the host
  /// (cache accept for the cached controller, full completion for the
  /// uncached one). Acked data that later exists nowhere durable is a
  /// lost write.
  virtual void acknowledge(std::int64_t block, std::uint64_t gen) = 0;

  /// Latest generation the host has written to `block` (0 = never).
  virtual std::uint64_t current_gen(std::int64_t block) const = 0;

  /// Generation currently on the data disk for `block`.
  virtual std::uint64_t disk_gen(std::int64_t block) const = 0;

  /// Generation of the retained old copy for `block` (falls back to the
  /// on-disk generation when no capture was recorded).
  virtual std::uint64_t old_copy_gen(std::int64_t block) const = 0;

  /// The NV-cache captured the pre-write content of `block` (old-data
  /// retention for the parity delta).
  virtual void old_captured(std::int64_t block) = 0;

  /// Generation `gen` of `block` now resides in NVRAM (dirty, durable
  /// across crashes while the battery holds).
  virtual void nvram_put(std::int64_t block, std::uint64_t gen) = 0;

  /// `block` was evicted from NVRAM without reaching the disk first
  /// (clean eviction after destage is NOT reported here).
  virtual void nvram_evict(std::int64_t block) = 0;

  /// Crash with non-surviving NVRAM: all cache residency is gone.
  virtual void wipe_nvram() = 0;

  /// Generation `gen` of `block` reached the data disk.
  virtual void data_durable(std::int64_t block, std::uint64_t gen) = 0;

  /// The parity covering `cover.block` advanced. `recompute` means the
  /// parity was rebuilt from full-stripe content (reconstruct write);
  /// otherwise an XOR delta built against `cover.assumed_old_gen` was
  /// applied, which poisons the cover when that assumption was stale.
  virtual void parity_durable(const ParityCover& cover, bool recompute) = 0;

  /// Recovery resynchronized the stripe containing `block`: parity now
  /// covers exactly the on-disk content.
  virtual void resync_block(std::int64_t block) = 0;
};

}  // namespace raidsim
