#include "array/rebuild.hpp"

#include <algorithm>
#include <stdexcept>

namespace raidsim {

RebuildProcess::RebuildProcess(EventQueue& eq, ArrayController& controller,
                               Options options)
    : eq_(eq),
      controller_(controller),
      options_(options),
      disk_(controller.failed_disk()) {
  if (disk_ < 0)
    throw std::logic_error("RebuildProcess: no failed disk to rebuild");
  if (options_.blocks_per_pass < 1)
    throw std::invalid_argument("RebuildProcess: blocks_per_pass < 1");
  if (controller_.layout().organization() == Organization::kBase)
    throw std::logic_error("RebuildProcess: Base has no redundancy");
  total_ = controller_.layout().physical_blocks_used();
}

void RebuildProcess::start(std::function<void(SimTime)> on_complete) {
  if (running_) throw std::logic_error("RebuildProcess: already running");
  if (completed_ || aborted_)
    throw std::logic_error("RebuildProcess: already finished");
  if (controller_.failed_disk() != disk_)
    throw std::logic_error("RebuildProcess: failed disk changed before start");
  running_ = true;
  on_complete_ = std::move(on_complete);
  next_pass();
}

void RebuildProcess::next_pass() {
  if (controller_.failed_disk() != disk_) {
    // The failure state was cleared (or moved to another disk) under
    // us: the sweep's watermark bookkeeping no longer applies. Stop
    // without touching the controller and without firing on_complete.
    running_ = false;
    aborted_ = true;
    on_complete_ = nullptr;
    return;
  }
  if (position_ >= total_) {
    // Fully reconstructed: the replacement is consistent, clear the
    // failure and report.
    controller_.fail_disk(-1);
    running_ = false;
    completed_ = true;
    if (on_complete_) {
      auto fire = std::move(on_complete_);
      on_complete_ = nullptr;
      fire(eq_.now());
    }
    return;
  }
  const int take = static_cast<int>(std::min<std::int64_t>(
      options_.blocks_per_pass, total_ - position_));
  PhysicalExtent extent{disk_, position_, take};
  const bool ok = controller_.rebuild_extent(
      extent, options_.priority, [this, take](SimTime) {
        if (controller_.failed_disk() != disk_) {
          running_ = false;
          aborted_ = true;
          on_complete_ = nullptr;
          return;
        }
        position_ += take;
        controller_.set_rebuild_watermark(position_);
        if (options_.inter_pass_gap_ms > 0.0) {
          eq_.schedule_in(options_.inter_pass_gap_ms,
                          [this] { next_pass(); });
        } else {
          next_pass();
        }
      });
  if (!ok) throw std::logic_error("RebuildProcess: reconstruction failed");
}

}  // namespace raidsim
