#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace raidsim {

/// Flat SCAN-ordered spool: a sorted hot array of (key, slot) pairs the
/// spooler scans, with the cold entry bodies in a separate slab recycled
/// through a free list. Replaces the node-per-entry `std::map` the RAID4
/// parity spool used to be: the SCAN lookup (`pop_at_or_after`) touches
/// only the 12-byte hot records, and entry churn never hits the heap once
/// the slab has grown to the peak queue depth.
///
/// Keys are unique. `V` must be default-constructible and movable; popped
/// bodies are reset to `V{}` so recycled slots hold no stale callbacks.
template <typename V>
class FlatSpool {
 public:
  std::size_t size() const { return hot_.size(); }
  bool empty() const { return hot_.empty(); }

  /// Body for `key`, or nullptr. The pointer is invalidated by any
  /// mutating call.
  V* find(std::int64_t key) {
    auto it = lower_bound(key);
    if (it == hot_.end() || it->key != key) return nullptr;
    return &bodies_[it->slot];
  }

  /// Insert a new entry; `key` must not be present.
  V& insert(std::int64_t key, V&& value) {
    auto it = lower_bound(key);
    assert(it == hot_.end() || it->key != key);
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      bodies_[slot] = std::move(value);
    } else {
      slot = static_cast<std::uint32_t>(bodies_.size());
      bodies_.push_back(std::move(value));
    }
    hot_.insert(it, HotKey{key, slot});
    return bodies_[slot];
  }

  struct Popped {
    std::int64_t key;
    V value;
  };

  /// Remove and return the entry with the smallest key >= `from`,
  /// wrapping to the smallest key overall (SCAN order). The spool must
  /// not be empty.
  Popped pop_at_or_after(std::int64_t from) {
    assert(!hot_.empty());
    auto it = lower_bound(from);
    if (it == hot_.end()) it = hot_.begin();
    Popped out{it->key, std::move(bodies_[it->slot])};
    bodies_[it->slot] = V{};
    free_.push_back(it->slot);
    hot_.erase(it);
    return out;
  }

  /// Drop every entry and release the slab.
  void clear() {
    hot_.clear();
    bodies_.clear();
    free_.clear();
  }

 private:
  struct HotKey {
    std::int64_t key;
    std::uint32_t slot;
  };

  typename std::vector<HotKey>::iterator lower_bound(std::int64_t key) {
    return std::lower_bound(
        hot_.begin(), hot_.end(), key,
        [](const HotKey& h, std::int64_t k) { return h.key < k; });
  }

  std::vector<HotKey> hot_;   // sorted by key; what the SCAN walks
  std::vector<V> bodies_;     // cold entry state, indexed by slot
  std::vector<std::uint32_t> free_;  // recycled body slots
};

}  // namespace raidsim
