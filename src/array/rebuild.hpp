#pragma once

#include <cstdint>
#include <functional>

#include "array/controller.hpp"

namespace raidsim {

/// Online reconstruction of a failed disk onto its replacement: sweeps
/// the disk extent by extent, reading the surviving members of each
/// parity group (or the mirror twin) at background priority and writing
/// the reconstructed content to the replacement. The controller's
/// rebuild watermark advances as the sweep progresses, so already-rebuilt
/// blocks are served normally while foreground traffic continues in
/// degraded mode above the watermark.
///
/// Models the "performance during reconstruction" the paper alludes to
/// when noting that large arrays are less reliable and rebuild more
/// slowly (Section 4.2.1).
class RebuildProcess {
 public:
  struct Options {
    /// Blocks reconstructed per pass (one track by default).
    int blocks_per_pass = 6;
    /// Pause between passes, throttling rebuild aggressiveness.
    double inter_pass_gap_ms = 0.0;
    /// Queueing priority of rebuild reads and writes.
    DiskPriority priority = DiskPriority::kDestage;
  };

  /// The controller must already have the disk marked failed
  /// (fail_disk()). Throws if not, or if the organization has no
  /// redundancy to rebuild from.
  RebuildProcess(EventQueue& eq, ArrayController& controller,
                 Options options);
  RebuildProcess(EventQueue& eq, ArrayController& controller)
      : RebuildProcess(eq, controller, Options{}) {}

  RebuildProcess(const RebuildProcess&) = delete;
  RebuildProcess& operator=(const RebuildProcess&) = delete;

  /// Begin the sweep; `on_complete` fires when the entire used span of
  /// the disk has been reconstructed (the controller's failure state is
  /// cleared first). A process runs at most once: calling start() while
  /// running, after completion, or after an abort throws.
  void start(std::function<void(SimTime)> on_complete);

  bool running() const { return running_; }
  /// True once the sweep has fully reconstructed the disk.
  bool completed() const { return completed_; }
  /// True when the sweep stopped early because the controller's failure
  /// state was cleared or moved to another disk mid-sweep (e.g. a
  /// second failure superseding this rebuild). on_complete does not
  /// fire for an aborted sweep.
  bool aborted() const { return aborted_; }
  std::int64_t blocks_rebuilt() const { return position_; }
  std::int64_t blocks_total() const { return total_; }
  double progress() const {
    return total_ > 0 ? static_cast<double>(position_) /
                            static_cast<double>(total_)
                      : 0.0;
  }

 private:
  void next_pass();

  EventQueue& eq_;
  ArrayController& controller_;
  Options options_;
  int disk_;
  std::int64_t position_ = 0;
  std::int64_t total_ = 0;
  bool running_ = false;
  bool completed_ = false;
  bool aborted_ = false;
  std::function<void(SimTime)> on_complete_;
};

}  // namespace raidsim
