#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "layout/layout.hpp"
#include "sim/event_queue.hpp"

namespace raidsim {

/// NVRAM intent journal + dirty-stripe bitmap (write-hole closure).
///
/// Before issuing the data/parity writes of a stripe update, the cached
/// controller opens an intent recording which extents are about to
/// change; the intent closes only when BOTH the data and the parity have
/// landed. An intent still open at a crash marks a stripe whose parity
/// may disagree with its data -- the recovery process resynchronizes
/// exactly those stripes instead of the whole array.
///
/// The journal models a battery-backed NVRAM region: it survives a crash
/// when `nvram_survives` (Section 3.4's NV assumption), and is wiped --
/// forcing the full-array resync fallback -- when not. Bookkeeping costs
/// zero simulated time (the paper's NV-cache writes are free too), so
/// enabling the journal does not perturb the event timeline.
class IntentJournal {
 public:
  struct Intent {
    std::uint64_t id = 0;
    SimTime opened_at = 0.0;
    ExtentList writes;                   // data extents of the update
    PhysicalExtent parity;               // invalid when no parity
  };

  struct Stats {
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t wipes = 0;       // crashes that destroyed the journal
    std::size_t peak_open = 0;
  };

  /// Record a stripe update about to be issued; returns the intent id.
  std::uint64_t open(const StripeUpdate& update, SimTime now);

  /// Data and parity are both durable; the intent is retired.
  void close(std::uint64_t id, SimTime now);

  /// Controller crash. Surviving NVRAM keeps the open intents (recovery
  /// replays them); otherwise the journal is wiped and recovery must fall
  /// back to a full-array resync.
  void power_loss(bool nvram_survives);

  /// Recovery replayed (or abandoned) the journal; start clean.
  void clear();

  std::size_t open_intents() const { return open_.size(); }
  bool wiped() const { return wiped_; }
  const Stats& stats() const { return stats_; }
  std::vector<Intent> snapshot() const;

  /// Dirty-stripe bitmap view: one representative data extent per
  /// distinct parity extent among the open intents. Resyncing each
  /// returned extent's parity group covers every stripe the journal
  /// marks dirty.
  std::vector<PhysicalExtent> dirty_stripe_extents() const;
  std::size_t dirty_stripes() const { return dirty_stripe_extents().size(); }

 private:
  std::map<std::uint64_t, Intent> open_;
  std::uint64_t next_id_ = 1;
  bool wiped_ = false;
  Stats stats_;
};

}  // namespace raidsim
