#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/crash_hooks.hpp"
#include "array/intent_journal.hpp"
#include "cache/nv_cache.hpp"
#include "channel/channel.hpp"
#include "disk/disk.hpp"
#include "layout/layout.hpp"
#include "sim/event_queue.hpp"
#include "sim/small_function.hpp"
#include "util/arena.hpp"

namespace raidsim {

/// Synchronization policies between the parity access and the data
/// access(es) of an update (Section 3.3).
enum class SyncPolicy {
  kSimultaneousIssue,      // SI
  kReadFirst,              // RF
  kReadFirstPriority,      // RF/PR
  kDiskFirst,              // DF (paper default, Table 4)
  kDiskFirstPriority,      // DF/PR
};

std::string to_string(SyncPolicy policy);

/// One request addressed to a single array (array-local logical blocks).
struct ArrayRequest {
  std::int64_t logical_block = 0;
  int block_count = 1;
  bool is_write = false;
  /// Tracer span id of the host request this serves (0 = untraced);
  /// cache hit/miss markers attach to it.
  std::uint64_t obs_id = 0;
};

/// Countdown latch: fires its callback (once) when `remaining` arrivals
/// have occurred. Created with the full count; a zero count fires on
/// creation.
class Barrier {
  /// Pass-key: the constructor must be reachable by make_op (so barriers
  /// come from the engine's op arena) without letting other code bypass
  /// create().
  struct Key {
    explicit Key() = default;
  };

 public:
  /// Fire callbacks hold the continuation of a whole parity-update plan
  /// (a done std::function plus captured extents/covers), so they get
  /// wider inline storage than the default; anything that still
  /// overflows falls back to one heap allocation, like std::function.
  using Fire = SmallFunction<void(SimTime), 128>;

  /// Allocated against the engine's op arena (always the eq_.op_arena()
  /// of the controller issuing the plan).
  static OpRef<Barrier> create(OpArena& arena, int count, Fire fire);

  Barrier(Key, int count, Fire fire)
      : remaining_(count), fire_(std::move(fire)) {}

  void arrive(SimTime now);
  /// Add expected arrivals before any arrive() call brings it to zero.
  void expect(int more) { remaining_ += more; }
  int remaining() const { return remaining_; }

 private:
  int remaining_;
  Fire fire_;
};

/// Controller-level counters common to all array controllers.
struct ControllerStats {
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  // Cached controllers only: request-level hit accounting (a multiblock
  // request counts as a hit only when every block is cached).
  std::uint64_t read_request_hits = 0;
  std::uint64_t write_request_hits = 0;
  std::uint64_t destage_writes = 0;       // destage disk writes issued
  std::uint64_t destage_blocks = 0;       // dirty blocks destaged
  std::uint64_t sync_victim_writes = 0;   // dirty LRU victims written inline
  std::uint64_t write_stalls = 0;         // writes delayed by a full cache
  std::uint64_t parity_spools = 0;        // RAID4 parity updates written
  std::uint64_t parity_reservation_failures = 0;
  std::size_t parity_queue_peak = 0;
  // Degraded-mode accounting (disk failure support).
  std::uint64_t degraded_reads = 0;    // reads reconstructed from the group
  std::uint64_t degraded_writes = 0;   // writes applied without the failed disk
  std::uint64_t unrecoverable = 0;     // accesses lost (no redundancy)
  // Fault-handling accounting (transient retry + media repair paths).
  std::uint64_t transient_retries = 0;   // ops re-queued after a timeout
  std::uint64_t retry_exhaustions = 0;   // ops whose retry budget ran out
  std::uint64_t media_errors = 0;        // latent sector errors hit by reads
  std::uint64_t media_repairs = 0;       // reconstruct-and-rewrite remaps
  std::uint64_t media_losses = 0;        // media errors with no redundancy
  // Crash & recovery accounting (power-loss injection support).
  std::uint64_t crashes = 0;                      // crash_halt() invocations
  std::uint64_t crash_dropped_ops = 0;            // disk ops killed by crashes
  std::uint64_t crash_discarded_write_blocks = 0; // write blocks never landing
  std::uint64_t crash_aborted_host_writes = 0;    // stalled hosts dropped
  std::uint64_t journal_intents = 0;     // stripe-update intents opened
  std::uint64_t journal_replays = 0;     // intents replayed by recovery
  std::uint64_t resync_stripes = 0;      // stripes resynchronized
  std::uint64_t resync_read_blocks = 0;  // blocks read by resync passes
  std::uint64_t resync_write_blocks = 0; // parity blocks rewritten by resync
  std::uint64_t full_resyncs = 0;        // recoveries that walked the array
  double recovery_ms = 0.0;              // cumulative recovery wall time
  // Tail-tolerance accounting (fail-slow mitigation policies).
  std::uint64_t timeouts_fired = 0;      // read deadlines that expired
  std::uint64_t hedged_reads = 0;        // speculative second reads issued
  std::uint64_t hedge_wins = 0;          // hedges that beat the primary
  std::uint64_t hedge_cancellations = 0; // losing legs (wasted disk work)
  std::uint64_t redirected_reads = 0;    // mirror reads steered off a slow disk
  std::uint64_t quarantine_reroutes = 0; // reads routed around a quarantine

  double read_hit_ratio() const {
    return read_requests ? static_cast<double>(read_request_hits) /
                               static_cast<double>(read_requests)
                         : 0.0;
  }
  double write_hit_ratio() const {
    return write_requests ? static_cast<double>(write_request_hits) /
                                static_cast<double>(write_requests)
                          : 0.0;
  }
};

/// Shared substrate of the uncached and cached controllers: the disks,
/// the channel, the track-buffer pool, the layout, and the machinery to
/// execute read plans and parity-group update plans with a given
/// synchronization policy.
class ArrayController {
 public:
  /// Transient-error handling policy: a timed-out op is re-queued with
  /// exponential backoff (backoff doubles per attempt) until the budget
  /// is exhausted, at which point the disk is declared dead.
  struct FaultPolicy {
    int retry_budget = 3;
    double retry_backoff_ms = 5.0;
  };

  /// Tail-tolerance policy for demand reads under fail-slow disks. All
  /// mechanisms are off by default; `enabled` gates the whole machinery
  /// so policy-off runs issue exactly the same events as before.
  struct TailPolicy {
    bool enabled = false;
    /// Deadline for a demand read; when it expires before the read
    /// completes the controller counts a timeout and escalates by
    /// forcing the hedge (redundant second copy) immediately. 0 = off.
    double read_deadline_ms = 0.0;
    /// Fixed floor of the hedge delay: a speculative second read of the
    /// redundant copy is issued this long after the primary. 0 = no
    /// hedging (deadline escalation can still fire one).
    double hedge_delay_ms = 0.0;
    /// > 0: adaptive hedge delay = max(hedge_delay_ms, factor * EWMA of
    /// the primary disk's per-op latency) -- hedges adapt to how slow
    /// the disk actually is instead of a static guess.
    double hedge_ewma_factor = 0.0;
    /// Mirror organizations: steer a read to the twin when the
    /// seek-preferred member's latency EWMA exceeds `slow_ewma_factor`
    /// times the twin's (redirect-on-slow).
    bool redirect_on_slow = false;
    /// Parity organizations: allow hedges/quarantine reroutes to
    /// reconstruct-read around the slow disk via the degraded-read path.
    bool reconstruct_on_slow = false;
    /// Slowness ratio used by redirect-on-slow and by the parity
    /// reconstruct gate (hedge only when the primary's EWMA exceeds
    /// this multiple of the array median -- a reconstruct fans out to
    /// every other member, so firing it for a healthy-but-queued
    /// primary floods the array instead of trimming the tail).
    double slow_ewma_factor = 3.0;
  };

  struct Config {
    LayoutConfig layout;
    DiskGeometry disk_geometry;
    SeekSpec seek;
    SyncPolicy sync = SyncPolicy::kDiskFirst;
    DiskScheduling disk_scheduling = DiskScheduling::kFifo;
    double channel_mb_per_second = 10.0;
    int track_buffers_per_disk = 5;
    FaultPolicy fault;
    TailPolicy tail;
    /// Request-lifecycle tracer (null = tracing off) and the index of
    /// this array within the simulator, used as the trace process id.
    Tracer* tracer = nullptr;
    int array_index = -1;
  };

  ArrayController(EventQueue& eq, const Config& config);
  virtual ~ArrayController() = default;

  ArrayController(const ArrayController&) = delete;
  ArrayController& operator=(const ArrayController&) = delete;

  /// Submit a request at the current simulation time; `on_complete` fires
  /// when the response is delivered to the host.
  virtual void submit(const ArrayRequest& request,
                      Completion on_complete) = 0;

  /// Stop periodic background machinery (e.g. the cached controller's
  /// destage timer) once the workload has fully drained; in-flight work
  /// still completes. No-op for controllers without background timers.
  virtual void shutdown() {}

  /// NV-cache statistics, or nullptr for controllers without a cache.
  virtual const NvCache::Stats* cache_stats() const { return nullptr; }

  /// The NV cache itself (time-series sampler hook), or nullptr.
  virtual const NvCache* nv_cache() const { return nullptr; }

  /// Mark one disk as failed: reads targeting it are reconstructed from
  /// the surviving members of its parity group (or the mirror twin);
  /// writes maintain the surviving data and parity only. Pass -1 to
  /// clear (disk repaired/rebuilt). Only single failures are modelled --
  /// a second failure in the same parity group would lose data.
  void fail_disk(int disk);
  int failed_disk() const { return failed_disk_; }

  /// Online-rebuild watermark: physical blocks of the failed disk below
  /// this bound have already been reconstructed onto the replacement and
  /// are served normally again.
  void set_rebuild_watermark(std::int64_t blocks);
  std::int64_t rebuild_watermark() const { return rebuild_watermark_; }

  /// Rebuild support: reconstruct one extent of the failed disk from the
  /// surviving members of its parity group (or the mirror twin) and
  /// write it to the replacement. `done` fires when the replacement
  /// write completes. Returns false when the organization has no
  /// redundancy to rebuild from.
  bool rebuild_extent(const PhysicalExtent& extent, DiskPriority priority,
                      Completion done);

  /// Patrol-read one extent through the fault-aware read path
  /// (ScrubProcess): a latent sector error it hits is repaired in place
  /// by repair_media_error, and a degraded extent is reconstructed.
  void scrub_extent(const PhysicalExtent& extent, DiskPriority priority,
                    Completion done) {
    disk_read(extent, priority, std::move(done));
  }

  /// Repair a latent sector error in place: reconstruct the extent from
  /// the surviving members of its parity group (or the mirror twin) and
  /// rewrite it on its own disk, remapping the bad sectors. Without
  /// redundancy the data are lost (counted) and the blocks remapped
  /// empty. `done` fires when the rewrite (or loss accounting) is done.
  void repair_media_error(const PhysicalExtent& extent, DiskPriority priority,
                          Completion done);

  /// Invoked when a disk exhausts its transient-retry budget and is
  /// declared dead. The handler owns the reaction (typically a
  /// HealthMonitor marking the failure and orchestrating recovery);
  /// without one the controller marks the disk failed itself when no
  /// other failure is outstanding.
  void set_disk_dead_handler(std::function<void(int disk, SimTime)> handler) {
    disk_dead_handler_ = std::move(handler);
  }

  const FaultPolicy& fault_policy() const { return fault_; }
  const TailPolicy& tail_policy() const { return tail_; }

  /// Quarantine support (slow-disk containment, driven by the
  /// HealthMonitor's detector): a quarantined disk receives no new
  /// demand reads -- mirror reads prefer the twin, parity reads are
  /// reconstructed around it when the tail policy allows -- but keeps
  /// serving writes and background I/O so it can be observed recovering.
  void set_quarantined(int disk, bool quarantined);
  bool is_quarantined(int disk) const {
    return disk >= 0 && static_cast<std::size_t>(disk) < quarantined_.size() &&
           quarantined_[static_cast<std::size_t>(disk)] != 0;
  }
  int quarantined_count() const;

  // ---------------------------------------------- crash & recovery API

  /// Attach a shadow-model integrity auditor (src/crash). Pure
  /// bookkeeping: hooks fire on every step of a logical write's life and
  /// consume no simulated time. Null detaches.
  void set_auditor(WriteAuditHooks* auditor) { auditor_ = auditor; }
  WriteAuditHooks* auditor() const { return auditor_; }

  /// Attach an NVRAM intent journal (write-hole closure); the cached
  /// controller owns one internally when CacheConfig::intent_journal is
  /// set, but a caller may also attach an external journal to either
  /// controller. Null detaches.
  void attach_journal(IntentJournal* journal) { journal_ = journal; }
  IntentJournal* journal() const { return journal_; }

  /// Controller crash at the current instant: every disk loses power
  /// (queued + in-flight ops die; partial writes keep only their durable
  /// prefix), further submissions are refused, and the journal (if any)
  /// survives or is wiped per `preserve_nvram`. Host requests in flight
  /// never complete -- the crash ate them.
  virtual void crash_halt(bool preserve_nvram);

  /// Power the controller back up (disks spin up empty-queued). Recovery
  /// -- journal replay or full resync -- is driven externally by a
  /// RecoveryProcess; the controller serves I/O immediately, as a real
  /// array does while its background resync runs.
  virtual void crash_restart();
  bool crashed() const { return crashed_; }

  /// Resynchronize the parity group(s) covering one data extent: read
  /// the extent and its surviving group members, recompute the parity,
  /// rewrite it, and mark the auditor's shadow model consistent. Returns
  /// the I/O cost. `ok == false` means the organization has no parity
  /// group here (nothing to resync); `done` still fires.
  struct ResyncIssue {
    bool ok = false;
    int read_blocks = 0;
    int write_blocks = 0;
  };
  ResyncIssue resync_stripe(const PhysicalExtent& extent,
                            DiskPriority priority,
                            Completion done);

  /// Recovery bookkeeping callback (RecoveryProcess reports here).
  void note_recovery(double ms, std::uint64_t intents_replayed, bool full);

  const Layout& layout() const { return *layout_; }
  const std::vector<std::unique_ptr<Disk>>& disks() const { return disks_; }
  const Channel& channel() const { return *channel_; }
  const BufferPool& buffers() const { return *buffers_; }
  const ControllerStats& stats() const { return stats_; }
  const SeekModel& seek_model() const { return seek_model_; }

 protected:
  /// Choose which member of a mirrored pair serves a read: the disk whose
  /// arm is nearest the target cylinder, breaking ties by queue length
  /// (the paper's shortest-seek optimisation). Tail policies overlay
  /// quarantine avoidance and redirect-on-slow (EWMA comparison) on top;
  /// non-const because redirects are counted and traced.
  int choose_mirror_read_disk(const PhysicalExtent& extent);

  /// Demand-read entry point with tail-tolerance: behaves exactly like
  /// disk_read when the tail policy is disabled; otherwise overlays
  /// quarantine rerouting, an optional deadline (timeout accounting +
  /// hedge escalation), and optional hedged reads (speculative redundant
  /// copy after an adaptive delay, first completion wins).
  void tail_read(const PhysicalExtent& extent, DiskPriority priority,
                 Completion done);

  /// True when a redundant alternative exists for reading `extent`
  /// without touching extent.disk: a healthy mirror twin, or (when the
  /// tail policy allows reconstruct-on-slow) an intact parity group.
  bool alternate_read_available(const PhysicalExtent& extent) const;
  /// True when `disk`'s latency EWMA exceeds slow_ewma_factor times the
  /// median EWMA of the array's warm, non-failed disks.
  bool ewma_slow(int disk) const;

  /// Issue that alternative (twin read or parity reconstruction).
  /// Returns false -- issuing nothing -- when none is available; `done`
  /// is consumed (moved from) only on success, so a failed attempt
  /// leaves it intact for the caller's fallback path.
  bool issue_alternate_read(const PhysicalExtent& extent,
                            DiskPriority priority,
                            Completion& done);

  /// True when `extent` must be served in degraded mode (on the failed
  /// disk, above the rebuild watermark).
  bool is_degraded(const PhysicalExtent& extent) const;

  /// Issue a plain read of `extent`; `done` fires when the data are in
  /// the controller (before any channel transfer). Extents on the failed
  /// disk are transparently reconstructed from the surviving members of
  /// their parity group.
  void disk_read(const PhysicalExtent& extent, DiskPriority priority,
                 Completion done);

  /// Issue a plain write of `extent`; `done` fires when it is on disk.
  /// `on_power_fail` (optional) is invoked instead when a crash kills the
  /// write, with the durable leading-block count. `phase` tags the
  /// tracer span (kAuto = write-data).
  void disk_write(const PhysicalExtent& extent, DiskPriority priority,
                  Completion done,
                  PowerFail on_power_fail = nullptr,
                  ObsPhase phase = ObsPhase::kAuto);

  /// Execute one parity-group update plan. `data_priority` applies to the
  /// data accesses, and the parity access priority is raised for the /PR
  /// policies. `old_data_cached(extent)` tells the engine whether the old
  /// content of a data extent is already in the controller (cached
  /// organizations retain old blocks), in which case the data access is a
  /// plain write and the parity gate does not wait for it.
  /// `done` fires once every access of the plan has completed.
  void execute_update(const StripeUpdate& update, DiskPriority data_priority,
                      SyncPolicy sync,
                      const std::function<bool(const PhysicalExtent&)>&
                          old_data_cached,
                      Completion done);

  /// Split an extent at cylinder boundaries (RMW accesses must not cross
  /// a cylinder).
  ExtentList split_at_cylinders(
      const PhysicalExtent& extent) const;

  std::int64_t block_bytes(int blocks) const {
    return static_cast<std::int64_t>(blocks) * disk_geometry_.block_bytes();
  }

  EventQueue& eq_;
  DiskGeometry disk_geometry_;
  SeekModel seek_model_;
  std::unique_ptr<Layout> layout_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<BufferPool> buffers_;
  /// Rewrite an update plan for single-failure operation: writes to the
  /// failed disk are dropped and replaced by a reconstruct-style parity
  /// update over the surviving members; a failed parity disk simply
  /// stops being maintained.
  StripeUpdate degrade_update(const StripeUpdate& update);

  void execute_update_impl(const StripeUpdate& update,
                           DiskPriority data_priority, SyncPolicy sync,
                           const std::function<bool(const PhysicalExtent&)>&
                               old_data_cached,
                           Completion done);

  /// Fault-aware submission of a plain read/write: installs the
  /// transient-retry and media-repair handlers around the disk op.
  void submit_op(const PhysicalExtent& extent, bool is_write,
                 DiskPriority priority, Completion done,
                 int attempt,
                 PowerFail on_power_fail = nullptr,
                 ObsPhase phase = ObsPhase::kAuto);

  /// Audit instrumentation for one data-write extent: the returned
  /// callbacks wrap the disk op so the auditor learns exactly which
  /// blocks became durable -- all of them on completion, the leading
  /// prefix on a mid-write power failure. Generations are sampled at
  /// issue time (the content being written NOW, not whatever the host
  /// writes later). No-ops when no auditor is attached.
  struct AuditTap {
    Completion on_complete;
    PowerFail on_power_fail;
  };
  AuditTap audit_data_write(const PhysicalExtent& extent,
                            Completion inner);

  /// Build the parity-cover records for the data extents of an update:
  /// which generation each block's parity delta was computed against
  /// (the retained old copy for cached pieces, the on-disk content for
  /// pieces whose old data the RMW pass reads). Empty without an auditor.
  std::vector<ParityCover> parity_covers(
      const ExtentList& writes,
      const std::function<bool(const PhysicalExtent&)>& old_data_cached)
      const;
  void handle_retry_exhaustion(const PhysicalExtent& extent, bool is_write,
                               DiskPriority priority,
                               Completion done, SimTime now);

  SyncPolicy sync_;
  ControllerStats stats_;
  FaultPolicy fault_;
  TailPolicy tail_;
  std::vector<char> quarantined_;  // per-disk quarantine flags
  Tracer* tracer_ = nullptr;
  int array_index_ = -1;
  std::function<void(int, SimTime)> disk_dead_handler_;
  int failed_disk_ = -1;
  std::int64_t rebuild_watermark_ = 0;
  WriteAuditHooks* auditor_ = nullptr;
  IntentJournal* journal_ = nullptr;
  bool crashed_ = false;
};

}  // namespace raidsim
