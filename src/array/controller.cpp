#include "array/controller.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/arena.hpp"

namespace raidsim {

std::string to_string(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kSimultaneousIssue: return "SI";
    case SyncPolicy::kReadFirst: return "RF";
    case SyncPolicy::kReadFirstPriority: return "RF/PR";
    case SyncPolicy::kDiskFirst: return "DF";
    case SyncPolicy::kDiskFirstPriority: return "DF/PR";
  }
  return "?";
}

OpRef<Barrier> Barrier::create(OpArena& arena, int count, Fire fire) {
  assert(count >= 0);
  return make_op<Barrier>(arena, Key{}, count, std::move(fire));
}

void Barrier::arrive(SimTime now) {
  assert(remaining_ > 0);
  if (--remaining_ == 0 && fire_) {
    auto fire = std::move(fire_);
    fire_ = nullptr;
    fire(now);
  }
}

namespace {

bool parity_has_priority(SyncPolicy policy) {
  return policy == SyncPolicy::kReadFirstPriority ||
         policy == SyncPolicy::kDiskFirstPriority;
}

bool is_disk_first(SyncPolicy policy) {
  return policy == SyncPolicy::kDiskFirst ||
         policy == SyncPolicy::kDiskFirstPriority;
}

bool is_read_first(SyncPolicy policy) {
  return policy == SyncPolicy::kReadFirst ||
         policy == SyncPolicy::kReadFirstPriority;
}

}  // namespace

ArrayController::ArrayController(EventQueue& eq, const Config& config)
    : eq_(eq),
      disk_geometry_(config.disk_geometry),
      seek_model_(SeekModel::calibrate(config.seek)),
      layout_(make_layout(config.layout)),
      sync_(config.sync),
      fault_(config.fault),
      tail_(config.tail),
      tracer_(config.tracer),
      array_index_(config.array_index) {
  if (fault_.retry_budget < 0 || fault_.retry_backoff_ms < 0.0)
    throw std::invalid_argument("ArrayController: negative fault policy");
  if (tail_.read_deadline_ms < 0.0 || tail_.hedge_delay_ms < 0.0 ||
      tail_.hedge_ewma_factor < 0.0 || tail_.slow_ewma_factor < 0.0)
    throw std::invalid_argument("ArrayController: negative tail policy");
  const int total = layout_->total_disks();
  quarantined_.assign(static_cast<std::size_t>(total), 0);
  disks_.reserve(static_cast<std::size_t>(total));
  for (int d = 0; d < total; ++d) {
    disks_.push_back(std::make_unique<Disk>(eq_, disk_geometry_, &seek_model_,
                                            d, config.disk_scheduling));
    disks_.back()->set_tracer(tracer_, array_index_);
  }
  channel_ = std::make_unique<Channel>(eq_, config.channel_mb_per_second);
  buffers_ =
      std::make_unique<BufferPool>(config.track_buffers_per_disk * total);
}

void ArrayController::fail_disk(int disk) {
  if (disk >= layout_->total_disks())
    throw std::invalid_argument("ArrayController: no such disk");
  failed_disk_ = disk < 0 ? -1 : disk;
  rebuild_watermark_ = 0;
}

void ArrayController::set_rebuild_watermark(std::int64_t blocks) {
  rebuild_watermark_ = blocks;
}

void ArrayController::set_quarantined(int disk, bool quarantined) {
  if (disk < 0 || static_cast<std::size_t>(disk) >= quarantined_.size())
    throw std::invalid_argument("ArrayController: no such disk");
  quarantined_[static_cast<std::size_t>(disk)] = quarantined ? 1 : 0;
}

int ArrayController::quarantined_count() const {
  int n = 0;
  for (const char q : quarantined_) n += q != 0;
  return n;
}

bool ArrayController::is_degraded(const PhysicalExtent& extent) const {
  return failed_disk_ >= 0 && extent.disk == failed_disk_ &&
         extent.start_block + extent.block_count > rebuild_watermark_;
}

int ArrayController::choose_mirror_read_disk(const PhysicalExtent& extent) {
  const int twin = layout_->mirror_of(extent.disk);
  if (twin < 0) return extent.disk;
  if (extent.disk == failed_disk_) return twin;
  if (twin == failed_disk_) return extent.disk;
  // Quarantine containment: never route a new demand read to a
  // quarantined member while its twin is healthy.
  if (is_quarantined(extent.disk) != is_quarantined(twin)) {
    const int healthy = is_quarantined(extent.disk) ? twin : extent.disk;
    ++stats_.quarantine_reroutes;
    obs_instant(tracer_, ObsPhase::kRedirected, array_index_, healthy,
                eq_.now());
    return healthy;
  }
  const int target =
      disk_geometry_.locate_block(extent.start_block).cylinder;
  const Disk& a = *disks_[static_cast<std::size_t>(extent.disk)];
  const Disk& b = *disks_[static_cast<std::size_t>(twin)];
  const int da = std::abs(a.current_cylinder() - target);
  const int db = std::abs(b.current_cylinder() - target);
  int chosen = extent.disk;
  if (da != db)
    chosen = da < db ? extent.disk : twin;
  else
    chosen = a.queue_length() <= b.queue_length() ? extent.disk : twin;
  // Redirect-on-slow: override the seek choice when the preferred
  // member's smoothed per-op latency dwarfs its twin's (Thomasian's
  // mirrored-array read redirection under fail-slow).
  if (tail_.enabled && tail_.redirect_on_slow) {
    const int other = chosen == extent.disk ? twin : extent.disk;
    const double mine =
        disks_[static_cast<std::size_t>(chosen)]->ewma_latency_ms();
    const double theirs =
        disks_[static_cast<std::size_t>(other)]->ewma_latency_ms();
    if (mine > 0.0 && theirs > 0.0 &&
        mine > tail_.slow_ewma_factor * theirs) {
      ++stats_.redirected_reads;
      obs_instant(tracer_, ObsPhase::kRedirected, array_index_, other,
                  eq_.now());
      chosen = other;
    }
  }
  return chosen;
}

void ArrayController::disk_read(const PhysicalExtent& extent,
                                DiskPriority priority,
                                Completion done) {
  assert(extent.valid());
  if (is_degraded(extent)) {
    // Reconstruct the content from the surviving members of the parity
    // group(s) plus the parity (Mirror: the twin copy).
    const auto groups = layout_->degraded_group(extent);
    if (groups.empty()) {
      // No redundancy: the data are lost. Complete immediately (an error
      // return in a real system) and count it.
      ++stats_.unrecoverable;
      if (done) done(eq_.now());
      return;
    }
    ++stats_.degraded_reads;
    int ops = 0;
    for (const auto& group : groups)
      ops += static_cast<int>(group.member_reads.size()) +
             (group.parity.valid() ? 1 : 0);
    auto barrier = Barrier::create(eq_.op_arena(), ops, std::move(done));
    for (const auto& group : groups) {
      for (const auto& member : group.member_reads)
        disk_read(member, priority,
                  [barrier](SimTime t) { barrier->arrive(t); });
      if (group.parity.valid())
        disk_read(group.parity, priority,
                  [barrier](SimTime t) { barrier->arrive(t); });
    }
    return;
  }
  submit_op(extent, /*is_write=*/false, priority, std::move(done), 0);
}

bool ArrayController::alternate_read_available(
    const PhysicalExtent& extent) const {
  const int twin = layout_->mirror_of(extent.disk);
  if (twin >= 0)
    return twin != failed_disk_ && !is_quarantined(twin);
  // Parity organizations reconstruct around the slow disk only when the
  // policy allows it and no member of the group is already failed (a
  // reconstruction on top of a failure would double-degrade the group).
  return tail_.reconstruct_on_slow && failed_disk_ < 0;
}

bool ArrayController::ewma_slow(int disk) const {
  if (disk < 0 || static_cast<std::size_t>(disk) >= disks_.size())
    return false;
  constexpr std::uint64_t kMinOps = 16;
  const Disk& suspect = *disks_[static_cast<std::size_t>(disk)];
  if (suspect.op_latency().count() < kMinOps) return false;
  std::vector<double> warm;
  warm.reserve(disks_.size());
  for (std::size_t d = 0; d < disks_.size(); ++d) {
    if (static_cast<int>(d) == failed_disk_) continue;
    const Disk& member = *disks_[d];
    if (member.op_latency().count() < kMinOps) continue;
    warm.push_back(member.ewma_latency_ms());
  }
  if (warm.size() < 2) return false;
  std::nth_element(warm.begin(), warm.begin() + warm.size() / 2, warm.end());
  const double median = warm[warm.size() / 2];
  return median > 0.0 &&
         suspect.ewma_latency_ms() > tail_.slow_ewma_factor * median;
}

bool ArrayController::issue_alternate_read(const PhysicalExtent& extent,
                                           DiskPriority priority,
                                           Completion& done) {
  if (!alternate_read_available(extent)) return false;
  const auto groups = layout_->degraded_group(extent);
  if (groups.empty()) return false;
  int ops = 0;
  for (const auto& group : groups)
    ops += static_cast<int>(group.member_reads.size()) +
           (group.parity.valid() ? 1 : 0);
  if (ops == 0) return false;
  auto barrier = Barrier::create(eq_.op_arena(), ops, std::move(done));
  for (const auto& group : groups) {
    for (const auto& member : group.member_reads)
      disk_read(member, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
    if (group.parity.valid())
      disk_read(group.parity, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
  }
  return true;
}

namespace {

/// First-completion-wins state shared by the legs of a hedged read.
struct HedgeState {
  bool finished = false;  // a leg already delivered the data
  bool hedged = false;    // the speculative leg has been issued
  Completion done;
};

}  // namespace

void ArrayController::tail_read(const PhysicalExtent& extent,
                                DiskPriority priority,
                                Completion done) {
  if (!tail_.enabled || crashed_ || is_degraded(extent)) {
    disk_read(extent, priority, std::move(done));
    return;
  }
  // Quarantine-aware scheduling: a quarantined (but healthy) disk gets
  // no new demand reads; the redundancy serves them instead. Mirror
  // reads were already steered by choose_mirror_read_disk, so this path
  // fires for parity organizations (and for a fully-quarantined pair,
  // where the primary still has to serve).
  if (is_quarantined(extent.disk) && extent.disk != failed_disk_) {
    if (issue_alternate_read(extent, priority, done)) {
      ++stats_.quarantine_reroutes;
      obs_instant(tracer_, ObsPhase::kRedirected, array_index_, extent.disk,
                  eq_.now());
      return;
    }
  }

  const bool hedge_configured =
      tail_.hedge_delay_ms > 0.0 || tail_.hedge_ewma_factor > 0.0;
  const bool deadline_configured = tail_.read_deadline_ms > 0.0;
  if ((!hedge_configured && !deadline_configured) ||
      !alternate_read_available(extent)) {
    disk_read(extent, priority, std::move(done));
    return;
  }
  // Parity organizations pay N-1 member reads plus the parity read per
  // hedge, and those member reads land on every OTHER disk -- including
  // a straggler elsewhere in the group. Reconstructing around a disk
  // that is merely queued (not slow) floods the array, so the hedge
  // machinery only arms when the primary is EWMA-slow relative to its
  // siblings. A mirror hedge is one disk read; it stays unconditional.
  if (layout_->mirror_of(extent.disk) < 0 && !ewma_slow(extent.disk)) {
    disk_read(extent, priority, std::move(done));
    return;
  }

  auto state = make_op<HedgeState>(eq_.op_arena());
  state->done = std::move(done);

  auto issue_hedge = [this, extent, priority, state](SimTime) {
    if (state->finished || state->hedged || crashed_) return;
    auto hedge_done = [this, state](SimTime t) {
      if (state->finished) {
        // The primary already answered the host: the speculative leg's
        // disk time was pure waste. Count it.
        ++stats_.hedge_cancellations;
        return;
      }
      state->finished = true;
      ++stats_.hedge_wins;
      obs_instant(tracer_, ObsPhase::kHedgeWon, array_index_, -1, t);
      if (state->done) {
        auto d = std::move(state->done);
        d(t);
      }
    };
    Completion hedge_completion = std::move(hedge_done);
    if (issue_alternate_read(extent, priority, hedge_completion)) {
      state->hedged = true;
      ++stats_.hedged_reads;
      obs_instant(tracer_, ObsPhase::kHedgeIssued, array_index_, extent.disk,
                  eq_.now());
    }
  };

  if (hedge_configured) {
    const double ewma =
        disks_[static_cast<std::size_t>(extent.disk)]->ewma_latency_ms();
    const double delay =
        std::max(tail_.hedge_delay_ms, tail_.hedge_ewma_factor * ewma);
    eq_.schedule_in(delay, [issue_hedge, this] { issue_hedge(eq_.now()); });
  }
  if (deadline_configured) {
    eq_.schedule_in(tail_.read_deadline_ms, [this, state, issue_hedge] {
      if (state->finished) return;
      ++stats_.timeouts_fired;
      obs_instant(tracer_, ObsPhase::kTimeoutFired, array_index_, -1,
                  eq_.now());
      // Escalation: the retry that makes sense against a fail-slow disk
      // is the redundant copy, issued NOW if the hedge timer has not.
      issue_hedge(eq_.now());
    });
  }

  disk_read(extent, priority, [this, state](SimTime t) {
    if (state->finished) {
      // The hedge delivered first; the primary's late completion is the
      // cancelled leg (this disk model cannot abort an op mid-service,
      // so cancellation is accounting, exactly like a real drive that
      // ignores aborts until the command completes).
      ++stats_.hedge_cancellations;
      return;
    }
    state->finished = true;
    if (state->done) {
      auto d = std::move(state->done);
      d(t);
    }
  });
}

void ArrayController::disk_write(const PhysicalExtent& extent,
                                 DiskPriority priority,
                                 Completion done,
                                 PowerFail on_power_fail,
                                 ObsPhase phase) {
  assert(extent.valid());
  submit_op(extent, /*is_write=*/true, priority, std::move(done), 0,
            std::move(on_power_fail), phase);
}

void ArrayController::submit_op(const PhysicalExtent& extent, bool is_write,
                                DiskPriority priority,
                                Completion done,
                                int attempt,
                                PowerFail on_power_fail,
                                ObsPhase phase) {
  // A crashed controller issues nothing; the host request this op served
  // died with the crash (its completion simply never fires).
  if (crashed_) return;
  // Retries re-enter here after a backoff, during which the target disk
  // may have been declared dead: reads fall back to reconstruction,
  // writes to the dead region are absorbed (the rebuild regenerates
  // their content from the surviving members).
  if (is_degraded(extent)) {
    if (is_write) {
      if (done) done(eq_.now());
      return;
    }
    disk_read(extent, priority, std::move(done));
    return;
  }
  Disk& disk = *disks_[static_cast<std::size_t>(extent.disk)];
  // The completion and power-fail continuations are needed by both the
  // success callback and the fault path (retry resubmission reuses them),
  // so they live once in the engine's op arena; the disk's callbacks
  // carry only an 8-byte handle each.
  struct FaultCtx {
    Completion done;
    PowerFail on_power_fail;
  };
  auto ctx = make_op<FaultCtx>(eq_.op_arena());
  ctx->done = std::move(done);
  ctx->on_power_fail = std::move(on_power_fail);
  DiskRequest req;
  req.kind = is_write ? DiskOpKind::kWrite : DiskOpKind::kRead;
  req.start_block = extent.start_block;
  req.block_count = extent.block_count;
  req.priority = priority;
  req.obs_phase = phase;
  req.on_complete = [ctx](SimTime t) {
    if (ctx->done) ctx->done(t);
  };
  if (ctx->on_power_fail) {
    req.on_power_fail = [ctx](SimTime t, int durable) {
      ctx->on_power_fail(t, durable);
    };
  }
  req.on_error = [this, ctx, extent, is_write, priority, attempt,
                  phase](SimTime t, DiskError error) mutable {
    if (error == DiskError::kMedia && !is_write) {
      ++stats_.media_errors;
      // The data are reconstructed from the group and rewritten in
      // place (sector remap); the reconstruction also serves the read.
      repair_media_error(extent, priority, std::move(ctx->done));
      return;
    }
    if (error == DiskError::kTransient && attempt < fault_.retry_budget) {
      ++stats_.transient_retries;
      const double backoff =
          fault_.retry_backoff_ms * static_cast<double>(1 << attempt);
      eq_.schedule_in(backoff, [this, ctx, extent, is_write, priority,
                                attempt, phase]() mutable {
        submit_op(extent, is_write, priority, std::move(ctx->done),
                  attempt + 1, std::move(ctx->on_power_fail), phase);
      });
      return;
    }
    handle_retry_exhaustion(extent, is_write, priority, std::move(ctx->done),
                            t);
  };
  disk.submit(std::move(req));
}

void ArrayController::handle_retry_exhaustion(const PhysicalExtent& extent,
                                              bool is_write,
                                              DiskPriority priority,
                                              Completion done,
                                              SimTime now) {
  ++stats_.retry_exhaustions;
  if (disk_dead_handler_) {
    // The handler (HealthMonitor) owns the failure bookkeeping: it
    // marks the disk failed, allocates a spare, and detects data loss.
    disk_dead_handler_(extent.disk, now);
  } else if (failed_disk_ < 0) {
    fail_disk(extent.disk);
  }
  if (failed_disk_ == extent.disk) {
    // The disk is now formally failed: serve the op in degraded mode.
    if (is_write) {
      if (done) done(eq_.now());
    } else {
      disk_read(extent, priority, std::move(done));
    }
    return;
  }
  // A second concurrent failure the single-failure controller cannot
  // degrade around: the access is lost (the HealthMonitor records the
  // data-loss event; the op still completes so the host is released).
  ++stats_.unrecoverable;
  if (done) done(eq_.now());
}

void ArrayController::repair_media_error(const PhysicalExtent& extent,
                                         DiskPriority priority,
                                         Completion done) {
  const auto groups = layout_->degraded_group(extent);
  Disk& disk = *disks_[static_cast<std::size_t>(extent.disk)];
  if (groups.empty()) {
    // No redundancy: the sectors are remapped but their content is gone.
    ++stats_.media_losses;
    ++stats_.unrecoverable;
    disk.clear_media_errors(extent.start_block, extent.block_count);
    if (done) done(eq_.now());
    return;
  }
  int reads = 0;
  for (const auto& group : groups)
    reads += static_cast<int>(group.member_reads.size()) +
             (group.parity.valid() ? 1 : 0);
  auto rewrite = [this, extent, priority,
                  done = std::move(done)](SimTime) mutable {
    disk_write(extent, priority,
               [this, done = std::move(done)](SimTime t) {
                 ++stats_.media_repairs;
                 if (done) done(t);
               });
  };
  auto barrier = Barrier::create(eq_.op_arena(), reads, std::move(rewrite));
  for (const auto& group : groups) {
    for (const auto& member : group.member_reads)
      disk_read(member, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
    if (group.parity.valid())
      disk_read(group.parity, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
  }
}

void ArrayController::crash_halt(bool preserve_nvram) {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  // Every disk loses power at the same instant: queues discarded,
  // in-flight transfers keep only their durable prefix.
  for (auto& disk : disks_) {
    const auto report = disk->power_fail();
    stats_.crash_dropped_ops += report.queued_ops + report.inflight_ops;
    stats_.crash_discarded_write_blocks += report.write_blocks_lost;
  }
  if (journal_) journal_->power_loss(preserve_nvram);
}

void ArrayController::crash_restart() {
  if (!crashed_) return;
  crashed_ = false;
  for (auto& disk : disks_) disk->power_on();
}

void ArrayController::note_recovery(double ms, std::uint64_t intents_replayed,
                                    bool full) {
  stats_.recovery_ms += ms;
  stats_.journal_replays += intents_replayed;
  if (full) ++stats_.full_resyncs;
}

ArrayController::ResyncIssue ArrayController::resync_stripe(
    const PhysicalExtent& extent, DiskPriority priority,
    Completion done) {
  ResyncIssue issue;
  const auto groups = layout_->degraded_group(extent);
  if (groups.empty()) {
    if (done) done(eq_.now());
    return issue;
  }
  issue.ok = true;

  const std::uint64_t span =
      obs_begin(tracer_, ObsPhase::kRecovery, array_index_, -1, eq_.now());
  auto finish = [this, extent, span,
                 done = std::move(done)](SimTime t) mutable {
    if (auditor_ && extent.logical_start >= 0)
      for (int i = 0; i < extent.block_count; ++i)
        auditor_->resync_block(extent.logical_start + i);
    obs_end(tracer_, span, ObsPhase::kRecovery, array_index_, -1, t);
    if (done) done(t);
  };

  int parity_extents = 0;
  for (const auto& g : groups)
    if (g.parity.valid()) ++parity_extents;
  if (parity_extents == 0) {
    // No parity here (Mirror/Base): nothing to resynchronize.
    finish(eq_.now());
    return issue;
  }

  // Read the extent itself plus every other member of its group(s), then
  // recompute the parity from the full content and rewrite it.
  int reads = 1;
  issue.read_blocks = extent.block_count;
  for (const auto& g : groups) {
    for (const auto& m : g.member_reads) {
      ++reads;
      issue.read_blocks += m.block_count;
    }
    if (g.parity.valid()) issue.write_blocks += g.parity.block_count;
  }
  ++stats_.resync_stripes;
  stats_.resync_read_blocks += static_cast<std::uint64_t>(issue.read_blocks);
  stats_.resync_write_blocks += static_cast<std::uint64_t>(issue.write_blocks);

  auto write_parities = [this, groups, priority, parity_extents,
                         finish = std::move(finish)](SimTime) mutable {
    auto parity_barrier = Barrier::create(eq_.op_arena(), parity_extents, std::move(finish));
    for (const auto& g : groups)
      if (g.parity.valid())
        disk_write(
            g.parity, priority,
            [parity_barrier](SimTime t) { parity_barrier->arrive(t); },
            nullptr, ObsPhase::kWriteParity);
  };
  auto read_barrier = Barrier::create(eq_.op_arena(), reads, std::move(write_parities));
  disk_read(extent, priority,
            [read_barrier](SimTime t) { read_barrier->arrive(t); });
  for (const auto& g : groups)
    for (const auto& m : g.member_reads)
      disk_read(m, priority,
                [read_barrier](SimTime t) { read_barrier->arrive(t); });
  return issue;
}

ArrayController::AuditTap ArrayController::audit_data_write(
    const PhysicalExtent& extent, Completion inner) {
  AuditTap tap;
  if (auditor_ == nullptr || extent.logical_start < 0) {
    tap.on_complete = std::move(inner);
    return tap;
  }
  std::vector<std::uint64_t> gens(
      static_cast<std::size_t>(extent.block_count));
  for (int i = 0; i < extent.block_count; ++i)
    gens[static_cast<std::size_t>(i)] =
        auditor_->current_gen(extent.logical_start + i);
  WriteAuditHooks* auditor = auditor_;
  const std::int64_t logical = extent.logical_start;
  tap.on_complete = [auditor, logical, gens,
                     inner = std::move(inner)](SimTime t) {
    for (std::size_t i = 0; i < gens.size(); ++i)
      auditor->data_durable(logical + static_cast<std::int64_t>(i), gens[i]);
    if (inner) inner(t);
  };
  tap.on_power_fail = [auditor, logical, gens](SimTime, int durable) {
    for (int i = 0; i < durable; ++i)
      auditor->data_durable(logical + i, gens[static_cast<std::size_t>(i)]);
  };
  return tap;
}

std::vector<ParityCover> ArrayController::parity_covers(
    const ExtentList& writes,
    const std::function<bool(const PhysicalExtent&)>& old_data_cached) const {
  std::vector<ParityCover> covers;
  if (auditor_ == nullptr) return covers;
  for (const auto& w : writes) {
    if (w.logical_start < 0) continue;
    const bool cached = old_data_cached && old_data_cached(w);
    for (int i = 0; i < w.block_count; ++i) {
      ParityCover c;
      c.block = w.logical_start + i;
      c.gen = auditor_->current_gen(c.block);
      c.assumed_old_gen = cached ? auditor_->old_copy_gen(c.block)
                                 : auditor_->disk_gen(c.block);
      covers.push_back(c);
    }
  }
  return covers;
}

ExtentList ArrayController::split_at_cylinders(
    const PhysicalExtent& extent) const {
  const int bpc = disk_geometry_.blocks_per_cylinder();
  ExtentList out;
  std::int64_t pos = extent.start_block;
  std::int64_t logical = extent.logical_start;
  int remaining = extent.block_count;
  while (remaining > 0) {
    const std::int64_t within = pos % bpc;
    const int take = static_cast<int>(
        std::min<std::int64_t>(remaining, bpc - within));
    out.push_back(PhysicalExtent{extent.disk, pos, take, logical});
    pos += take;
    if (logical >= 0) logical += take;
    remaining -= take;
  }
  return out;
}

bool ArrayController::rebuild_extent(const PhysicalExtent& extent,
                                     DiskPriority priority,
                                     Completion done) {
  const auto groups = layout_->degraded_group(extent);
  if (groups.empty()) return false;
  int reads = 0;
  for (const auto& group : groups)
    reads += static_cast<int>(group.member_reads.size()) +
             (group.parity.valid() ? 1 : 0);
  const std::uint64_t span =
      obs_begin(tracer_, ObsPhase::kRebuild, array_index_, -1, eq_.now());
  if (span) {
    done = [this, span, done = std::move(done)](SimTime t) {
      obs_end(tracer_, span, ObsPhase::kRebuild, array_index_, -1, t);
      if (done) done(t);
    };
  }
  // Read the surviving members, then write the reconstructed content to
  // the replacement disk (which occupies the failed slot).
  auto write_back = [this, extent, priority,
                     done = std::move(done)](SimTime) mutable {
    Disk& replacement = *disks_[static_cast<std::size_t>(extent.disk)];
    DiskRequest req;
    req.kind = DiskOpKind::kWrite;
    req.start_block = extent.start_block;
    req.block_count = extent.block_count;
    req.priority = priority;
    req.obs_phase = ObsPhase::kMirrorCopy;
    req.on_complete = std::move(done);
    replacement.submit(std::move(req));
  };
  auto barrier = Barrier::create(eq_.op_arena(), reads, std::move(write_back));
  for (const auto& group : groups) {
    for (const auto& member : group.member_reads)
      disk_read(member, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
    if (group.parity.valid())
      disk_read(group.parity, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
  }
  return true;
}

StripeUpdate ArrayController::degrade_update(const StripeUpdate& update) {
  StripeUpdate out = update;
  // A failed parity disk simply stops being maintained: the remaining
  // data writes become plain writes.
  if (out.parity.valid() && is_degraded(out.parity)) {
    out.parity = PhysicalExtent{};
    out.reconstruct_reads.clear();
    out.reconstruct = true;
    out.full_stripe = true;
  }
  // Writes to the failed disk are dropped; the parity absorbs the new
  // data instead: reconstruct-style update reading the surviving group
  // members. (With multiple extents per plan this reads the failed
  // extent's offsets only -- exact for the single-block writes that
  // dominate OLTP.)
  ExtentList surviving;
  ExtentList dropped;
  for (const auto& w : out.writes)
    (is_degraded(w) ? dropped : surviving).push_back(w);
  if (!dropped.empty()) {
    ++stats_.degraded_writes;
    out.writes = std::move(surviving);
    if (out.parity.valid()) {
      out.reconstruct = true;
      out.full_stripe = false;
      out.reconstruct_reads.clear();
      for (const auto& w : dropped) {
        for (const auto& group : layout_->degraded_group(w)) {
          for (const auto& member : group.member_reads) {
            // Members being rewritten in this plan need no old-data read.
            bool written = false;
            for (const auto& sw : out.writes)
              written = written || (sw.disk == member.disk &&
                                    sw.start_block <= member.start_block &&
                                    member.start_block + member.block_count <=
                                        sw.start_block + sw.block_count);
            if (!written) out.reconstruct_reads.push_back(member);
          }
        }
      }
      if (out.reconstruct_reads.empty()) out.full_stripe = true;
    } else if (out.writes.empty()) {
      // Base organization (or double failure): nothing survives.
      ++stats_.unrecoverable;
    }
  }
  return out;
}

void ArrayController::execute_update(
    const StripeUpdate& update, DiskPriority data_priority, SyncPolicy sync,
    const std::function<bool(const PhysicalExtent&)>& old_data_cached,
    Completion done) {
  if (journal_ && !crashed_ && update.parity.valid() &&
      !update.writes.empty()) {
    // Record the stripe-update intent before any disk I/O is issued; it
    // retires only when the whole plan (data AND parity) has landed. An
    // intent still open at a crash marks its stripe for recovery resync.
    const std::uint64_t id = journal_->open(update, eq_.now());
    ++stats_.journal_intents;
    done = [this, id, done = std::move(done)](SimTime t) {
      if (journal_) journal_->close(id, t);
      if (done) done(t);
    };
  }
  if (failed_disk_ >= 0) {
    const StripeUpdate degraded = degrade_update(update);
    if (degraded.writes.empty() && !degraded.parity.valid()) {
      // Nothing survives (Base organization): the write is lost.
      if (done) done(eq_.now());
      return;
    }
    execute_update_impl(degraded, data_priority, sync, old_data_cached,
                        std::move(done));
    return;
  }
  execute_update_impl(update, data_priority, sync, old_data_cached,
                      std::move(done));
}

void ArrayController::execute_update_impl(
    const StripeUpdate& update, DiskPriority data_priority, SyncPolicy sync,
    const std::function<bool(const PhysicalExtent&)>& old_data_cached,
    Completion done) {
  const DiskPriority parity_priority =
      parity_has_priority(sync) ? DiskPriority::kParity : data_priority;

  // ---- Plain-write plans: full stripes, Base/Mirror, reconstruct mode.
  if (update.reconstruct || update.full_stripe) {
    const int op_count = static_cast<int>(update.writes.size()) +
                         (update.parity.valid() ? 1 : 0);
    auto completion = Barrier::create(eq_.op_arena(), op_count, std::move(done));
    for (const auto& w : update.writes) {
      auto tap = audit_data_write(
          w, [completion](SimTime t) { completion->arrive(t); });
      disk_write(w, data_priority, std::move(tap.on_complete),
                 std::move(tap.on_power_fail));
    }
    if (update.parity.valid()) {
      // The parity is recomputed from full content here, so its coverage
      // advances unconditionally (no stale-delta poisoning).
      auto covers = parity_covers(update.writes, nullptr);
      auto parity_done = [this, covers = std::move(covers),
                          completion](SimTime t) {
        if (auditor_)
          for (const auto& c : covers) auditor_->parity_durable(c, true);
        completion->arrive(t);
      };
      if (update.reconstruct_reads.empty()) {
        // Full stripe: the parity is computed from the new data and
        // written without any reads.
        disk_write(update.parity, parity_priority, std::move(parity_done),
                   nullptr, ObsPhase::kWriteParity);
      } else {
        // Reconstruct: the parity write waits for the reads of the
        // untouched data.
        const PhysicalExtent parity = update.parity;
        auto read_barrier = Barrier::create(eq_.op_arena(),
            static_cast<int>(update.reconstruct_reads.size()),
            [this, parity, parity_priority,
             parity_done = std::move(parity_done)](SimTime) mutable {
              disk_write(parity, parity_priority, std::move(parity_done),
                         nullptr, ObsPhase::kWriteParity);
            });
        for (const auto& r : update.reconstruct_reads)
          disk_read(r, data_priority,
                    [read_barrier](SimTime t) { read_barrier->arrive(t); });
      }
    }
    return;
  }

  // ---- Read-modify-write plan (small writes).
  assert(update.parity.valid());

  ExtentList data_pieces;
  for (const auto& w : update.writes)
    for (const auto& piece : split_at_cylinders(w)) data_pieces.push_back(piece);
  // The parity pieces outlive this frame inside issue_parity (and are
  // shared by up to two barriers), so they live in the op arena and the
  // lambdas carry an 8-byte handle.
  auto parity_pieces =
      make_op<ExtentList>(eq_.op_arena(), split_at_cylinders(update.parity));

  const int total_ops =
      static_cast<int>(data_pieces.size() + parity_pieces->size());
  auto completion = Barrier::create(eq_.op_arena(), total_ops, std::move(done));

  // The gate opens when the new parity is computable: every data piece
  // whose old content is not already in the controller must finish its
  // old-data read first.
  auto gate = make_op<WriteGate>(eq_.op_arena());
  int gate_inputs = 0;
  InlineVec<char, 16> piece_old_cached;
  for (std::size_t i = 0; i < data_pieces.size(); ++i) {
    piece_old_cached.push_back(old_data_cached(data_pieces[i]) ? 1 : 0);
    if (!piece_old_cached[i]) ++gate_inputs;
  }

  // Audit bookkeeping: the parity advances by an XOR delta computed
  // against each block's old content -- the retained cache copy for
  // cached pieces, the on-disk content (RMW read) otherwise. The covers
  // are marked only when every parity piece has landed.
  std::vector<ParityCover> covers;
  if (auditor_) {
    for (std::size_t i = 0; i < data_pieces.size(); ++i) {
      const auto& piece = data_pieces[i];
      if (piece.logical_start < 0) continue;
      for (int b = 0; b < piece.block_count; ++b) {
        ParityCover c;
        c.block = piece.logical_start + b;
        c.gen = auditor_->current_gen(c.block);
        c.assumed_old_gen = piece_old_cached[i]
                                ? auditor_->old_copy_gen(c.block)
                                : auditor_->disk_gen(c.block);
        covers.push_back(c);
      }
    }
  }
  auto parity_remaining =
      make_op<int>(eq_.op_arena(), static_cast<int>(parity_pieces->size()));

  // Issuing the parity access(es): immediately for SI; when all old data
  // have been read for RF; when all data accesses have acquired their
  // disks for DF.
  auto issue_parity = [this, parity_pieces, parity_priority, gate,
                       completion, covers, parity_remaining](SimTime) {
    for (const auto& piece : *parity_pieces) {
      Disk& disk = *disks_[static_cast<std::size_t>(piece.disk)];
      DiskRequest req;
      req.kind = DiskOpKind::kReadModifyWrite;
      req.start_block = piece.start_block;
      req.block_count = piece.block_count;
      req.priority = parity_priority;
      req.obs_phase = ObsPhase::kReadOldParity;
      req.gate = gate;
      req.on_complete = [this, completion, covers,
                         parity_remaining](SimTime t) {
        if (--*parity_remaining == 0 && auditor_)
          for (const auto& c : covers) auditor_->parity_durable(c, false);
        completion->arrive(t);
      };
      disk.submit(std::move(req));
    }
  };

  const bool read_first = is_read_first(sync);
  auto read_barrier = Barrier::create(eq_.op_arena(),
      gate_inputs, [gate, read_first, issue_parity](SimTime t) {
        gate->open(t);
        if (read_first) issue_parity(t);
      });
  if (gate_inputs == 0) {
    // No reads to wait for (all old data cached): open now and, for RF,
    // issue immediately.
    gate->open(eq_.now());
    if (read_first) issue_parity(eq_.now());
  }

  OpRef<Barrier> start_barrier;
  if (is_disk_first(sync)) {
    start_barrier =
        Barrier::create(eq_.op_arena(), static_cast<int>(data_pieces.size()), issue_parity);
  }

  for (std::size_t i = 0; i < data_pieces.size(); ++i) {
    const auto& piece = data_pieces[i];
    Disk& disk = *disks_[static_cast<std::size_t>(piece.disk)];
    DiskRequest req;
    req.start_block = piece.start_block;
    req.block_count = piece.block_count;
    req.priority = data_priority;
    if (piece_old_cached[i]) {
      // Old content already buffered: plain in-place write.
      req.kind = DiskOpKind::kWrite;
    } else {
      // Read the old data, rewrite a revolution later. The write phase
      // needs nothing beyond the new data, which the controller already
      // has, so its own gate is pre-opened.
      req.kind = DiskOpKind::kReadModifyWrite;
      req.gate = WriteGate::already_open(eq_.op_arena());
      req.on_read_done = [read_barrier](SimTime t) {
        read_barrier->arrive(t);
      };
    }
    if (start_barrier)
      req.on_start = [start_barrier](SimTime t) { start_barrier->arrive(t); };
    auto tap = audit_data_write(
        piece, [completion](SimTime t) { completion->arrive(t); });
    req.on_complete = std::move(tap.on_complete);
    req.on_power_fail = std::move(tap.on_power_fail);
    disk.submit(std::move(req));
  }

  if (sync == SyncPolicy::kSimultaneousIssue) issue_parity(eq_.now());
}

}  // namespace raidsim
