#include "array/controller.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace raidsim {

std::string to_string(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kSimultaneousIssue: return "SI";
    case SyncPolicy::kReadFirst: return "RF";
    case SyncPolicy::kReadFirstPriority: return "RF/PR";
    case SyncPolicy::kDiskFirst: return "DF";
    case SyncPolicy::kDiskFirstPriority: return "DF/PR";
  }
  return "?";
}

std::shared_ptr<Barrier> Barrier::create(int count, Fire fire) {
  assert(count >= 0);
  auto barrier = std::shared_ptr<Barrier>(new Barrier(count, std::move(fire)));
  return barrier;
}

void Barrier::arrive(SimTime now) {
  assert(remaining_ > 0);
  if (--remaining_ == 0 && fire_) {
    auto fire = std::move(fire_);
    fire_ = nullptr;
    fire(now);
  }
}

namespace {

bool parity_has_priority(SyncPolicy policy) {
  return policy == SyncPolicy::kReadFirstPriority ||
         policy == SyncPolicy::kDiskFirstPriority;
}

bool is_disk_first(SyncPolicy policy) {
  return policy == SyncPolicy::kDiskFirst ||
         policy == SyncPolicy::kDiskFirstPriority;
}

bool is_read_first(SyncPolicy policy) {
  return policy == SyncPolicy::kReadFirst ||
         policy == SyncPolicy::kReadFirstPriority;
}

}  // namespace

ArrayController::ArrayController(EventQueue& eq, const Config& config)
    : eq_(eq),
      disk_geometry_(config.disk_geometry),
      seek_model_(SeekModel::calibrate(config.seek)),
      layout_(make_layout(config.layout)),
      sync_(config.sync),
      fault_(config.fault) {
  if (fault_.retry_budget < 0 || fault_.retry_backoff_ms < 0.0)
    throw std::invalid_argument("ArrayController: negative fault policy");
  const int total = layout_->total_disks();
  disks_.reserve(static_cast<std::size_t>(total));
  for (int d = 0; d < total; ++d)
    disks_.push_back(std::make_unique<Disk>(eq_, disk_geometry_, &seek_model_,
                                            d, config.disk_scheduling));
  channel_ = std::make_unique<Channel>(eq_, config.channel_mb_per_second);
  buffers_ =
      std::make_unique<BufferPool>(config.track_buffers_per_disk * total);
}

void ArrayController::fail_disk(int disk) {
  if (disk >= layout_->total_disks())
    throw std::invalid_argument("ArrayController: no such disk");
  failed_disk_ = disk < 0 ? -1 : disk;
  rebuild_watermark_ = 0;
}

void ArrayController::set_rebuild_watermark(std::int64_t blocks) {
  rebuild_watermark_ = blocks;
}

bool ArrayController::is_degraded(const PhysicalExtent& extent) const {
  return failed_disk_ >= 0 && extent.disk == failed_disk_ &&
         extent.start_block + extent.block_count > rebuild_watermark_;
}

int ArrayController::choose_mirror_read_disk(
    const PhysicalExtent& extent) const {
  const int twin = layout_->mirror_of(extent.disk);
  if (twin < 0) return extent.disk;
  if (extent.disk == failed_disk_) return twin;
  if (twin == failed_disk_) return extent.disk;
  const int target =
      disk_geometry_.locate_block(extent.start_block).cylinder;
  const Disk& a = *disks_[static_cast<std::size_t>(extent.disk)];
  const Disk& b = *disks_[static_cast<std::size_t>(twin)];
  const int da = std::abs(a.current_cylinder() - target);
  const int db = std::abs(b.current_cylinder() - target);
  if (da != db) return da < db ? extent.disk : twin;
  return a.queue_length() <= b.queue_length() ? extent.disk : twin;
}

void ArrayController::disk_read(const PhysicalExtent& extent,
                                DiskPriority priority,
                                std::function<void(SimTime)> done) {
  assert(extent.valid());
  if (is_degraded(extent)) {
    // Reconstruct the content from the surviving members of the parity
    // group(s) plus the parity (Mirror: the twin copy).
    const auto groups = layout_->degraded_group(extent);
    if (groups.empty()) {
      // No redundancy: the data are lost. Complete immediately (an error
      // return in a real system) and count it.
      ++stats_.unrecoverable;
      if (done) done(eq_.now());
      return;
    }
    ++stats_.degraded_reads;
    int ops = 0;
    for (const auto& group : groups)
      ops += static_cast<int>(group.member_reads.size()) +
             (group.parity.valid() ? 1 : 0);
    auto barrier = Barrier::create(ops, std::move(done));
    for (const auto& group : groups) {
      for (const auto& member : group.member_reads)
        disk_read(member, priority,
                  [barrier](SimTime t) { barrier->arrive(t); });
      if (group.parity.valid())
        disk_read(group.parity, priority,
                  [barrier](SimTime t) { barrier->arrive(t); });
    }
    return;
  }
  submit_op(extent, /*is_write=*/false, priority, std::move(done), 0);
}

void ArrayController::disk_write(const PhysicalExtent& extent,
                                 DiskPriority priority,
                                 std::function<void(SimTime)> done) {
  assert(extent.valid());
  submit_op(extent, /*is_write=*/true, priority, std::move(done), 0);
}

void ArrayController::submit_op(const PhysicalExtent& extent, bool is_write,
                                DiskPriority priority,
                                std::function<void(SimTime)> done,
                                int attempt) {
  // Retries re-enter here after a backoff, during which the target disk
  // may have been declared dead: reads fall back to reconstruction,
  // writes to the dead region are absorbed (the rebuild regenerates
  // their content from the surviving members).
  if (is_degraded(extent)) {
    if (is_write) {
      if (done) done(eq_.now());
      return;
    }
    disk_read(extent, priority, std::move(done));
    return;
  }
  Disk& disk = *disks_[static_cast<std::size_t>(extent.disk)];
  DiskRequest req;
  req.kind = is_write ? DiskOpKind::kWrite : DiskOpKind::kRead;
  req.start_block = extent.start_block;
  req.block_count = extent.block_count;
  req.priority = priority;
  req.on_complete = done;
  req.on_error = [this, extent, is_write, priority, done = std::move(done),
                  attempt](SimTime t, DiskError error) mutable {
    if (error == DiskError::kMedia && !is_write) {
      ++stats_.media_errors;
      // The data are reconstructed from the group and rewritten in
      // place (sector remap); the reconstruction also serves the read.
      repair_media_error(extent, priority, std::move(done));
      return;
    }
    if (error == DiskError::kTransient && attempt < fault_.retry_budget) {
      ++stats_.transient_retries;
      const double backoff =
          fault_.retry_backoff_ms * static_cast<double>(1 << attempt);
      eq_.schedule_in(backoff, [this, extent, is_write, priority,
                                done = std::move(done), attempt]() mutable {
        submit_op(extent, is_write, priority, std::move(done), attempt + 1);
      });
      return;
    }
    handle_retry_exhaustion(extent, is_write, priority, std::move(done), t);
  };
  disk.submit(std::move(req));
}

void ArrayController::handle_retry_exhaustion(const PhysicalExtent& extent,
                                              bool is_write,
                                              DiskPriority priority,
                                              std::function<void(SimTime)> done,
                                              SimTime now) {
  ++stats_.retry_exhaustions;
  if (disk_dead_handler_) {
    // The handler (HealthMonitor) owns the failure bookkeeping: it
    // marks the disk failed, allocates a spare, and detects data loss.
    disk_dead_handler_(extent.disk, now);
  } else if (failed_disk_ < 0) {
    fail_disk(extent.disk);
  }
  if (failed_disk_ == extent.disk) {
    // The disk is now formally failed: serve the op in degraded mode.
    if (is_write) {
      if (done) done(eq_.now());
    } else {
      disk_read(extent, priority, std::move(done));
    }
    return;
  }
  // A second concurrent failure the single-failure controller cannot
  // degrade around: the access is lost (the HealthMonitor records the
  // data-loss event; the op still completes so the host is released).
  ++stats_.unrecoverable;
  if (done) done(eq_.now());
}

void ArrayController::repair_media_error(const PhysicalExtent& extent,
                                         DiskPriority priority,
                                         std::function<void(SimTime)> done) {
  const auto groups = layout_->degraded_group(extent);
  Disk& disk = *disks_[static_cast<std::size_t>(extent.disk)];
  if (groups.empty()) {
    // No redundancy: the sectors are remapped but their content is gone.
    ++stats_.media_losses;
    ++stats_.unrecoverable;
    disk.clear_media_errors(extent.start_block, extent.block_count);
    if (done) done(eq_.now());
    return;
  }
  int reads = 0;
  for (const auto& group : groups)
    reads += static_cast<int>(group.member_reads.size()) +
             (group.parity.valid() ? 1 : 0);
  auto rewrite = [this, extent, priority,
                  done = std::move(done)](SimTime) mutable {
    disk_write(extent, priority,
               [this, done = std::move(done)](SimTime t) {
                 ++stats_.media_repairs;
                 if (done) done(t);
               });
  };
  auto barrier = Barrier::create(reads, std::move(rewrite));
  for (const auto& group : groups) {
    for (const auto& member : group.member_reads)
      disk_read(member, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
    if (group.parity.valid())
      disk_read(group.parity, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
  }
}

std::vector<PhysicalExtent> ArrayController::split_at_cylinders(
    const PhysicalExtent& extent) const {
  const int bpc = disk_geometry_.blocks_per_cylinder();
  std::vector<PhysicalExtent> out;
  std::int64_t pos = extent.start_block;
  std::int64_t logical = extent.logical_start;
  int remaining = extent.block_count;
  while (remaining > 0) {
    const std::int64_t within = pos % bpc;
    const int take = static_cast<int>(
        std::min<std::int64_t>(remaining, bpc - within));
    out.push_back(PhysicalExtent{extent.disk, pos, take, logical});
    pos += take;
    if (logical >= 0) logical += take;
    remaining -= take;
  }
  return out;
}

bool ArrayController::rebuild_extent(const PhysicalExtent& extent,
                                     DiskPriority priority,
                                     std::function<void(SimTime)> done) {
  const auto groups = layout_->degraded_group(extent);
  if (groups.empty()) return false;
  int reads = 0;
  for (const auto& group : groups)
    reads += static_cast<int>(group.member_reads.size()) +
             (group.parity.valid() ? 1 : 0);
  // Read the surviving members, then write the reconstructed content to
  // the replacement disk (which occupies the failed slot).
  auto write_back = [this, extent, priority,
                     done = std::move(done)](SimTime) mutable {
    Disk& replacement = *disks_[static_cast<std::size_t>(extent.disk)];
    DiskRequest req;
    req.kind = DiskOpKind::kWrite;
    req.start_block = extent.start_block;
    req.block_count = extent.block_count;
    req.priority = priority;
    req.on_complete = std::move(done);
    replacement.submit(std::move(req));
  };
  auto barrier = Barrier::create(reads, std::move(write_back));
  for (const auto& group : groups) {
    for (const auto& member : group.member_reads)
      disk_read(member, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
    if (group.parity.valid())
      disk_read(group.parity, priority,
                [barrier](SimTime t) { barrier->arrive(t); });
  }
  return true;
}

StripeUpdate ArrayController::degrade_update(const StripeUpdate& update) {
  StripeUpdate out = update;
  // A failed parity disk simply stops being maintained: the remaining
  // data writes become plain writes.
  if (out.parity.valid() && is_degraded(out.parity)) {
    out.parity = PhysicalExtent{};
    out.reconstruct_reads.clear();
    out.reconstruct = true;
    out.full_stripe = true;
  }
  // Writes to the failed disk are dropped; the parity absorbs the new
  // data instead: reconstruct-style update reading the surviving group
  // members. (With multiple extents per plan this reads the failed
  // extent's offsets only -- exact for the single-block writes that
  // dominate OLTP.)
  std::vector<PhysicalExtent> surviving;
  std::vector<PhysicalExtent> dropped;
  for (const auto& w : out.writes)
    (is_degraded(w) ? dropped : surviving).push_back(w);
  if (!dropped.empty()) {
    ++stats_.degraded_writes;
    out.writes = std::move(surviving);
    if (out.parity.valid()) {
      out.reconstruct = true;
      out.full_stripe = false;
      out.reconstruct_reads.clear();
      for (const auto& w : dropped) {
        for (const auto& group : layout_->degraded_group(w)) {
          for (const auto& member : group.member_reads) {
            // Members being rewritten in this plan need no old-data read.
            bool written = false;
            for (const auto& sw : out.writes)
              written = written || (sw.disk == member.disk &&
                                    sw.start_block <= member.start_block &&
                                    member.start_block + member.block_count <=
                                        sw.start_block + sw.block_count);
            if (!written) out.reconstruct_reads.push_back(member);
          }
        }
      }
      if (out.reconstruct_reads.empty()) out.full_stripe = true;
    } else if (out.writes.empty()) {
      // Base organization (or double failure): nothing survives.
      ++stats_.unrecoverable;
    }
  }
  return out;
}

void ArrayController::execute_update(
    const StripeUpdate& update, DiskPriority data_priority, SyncPolicy sync,
    const std::function<bool(const PhysicalExtent&)>& old_data_cached,
    std::function<void(SimTime)> done) {
  if (failed_disk_ >= 0) {
    const StripeUpdate degraded = degrade_update(update);
    if (degraded.writes.empty() && !degraded.parity.valid()) {
      // Nothing survives (Base organization): the write is lost.
      if (done) done(eq_.now());
      return;
    }
    execute_update_impl(degraded, data_priority, sync, old_data_cached,
                        std::move(done));
    return;
  }
  execute_update_impl(update, data_priority, sync, old_data_cached,
                      std::move(done));
}

void ArrayController::execute_update_impl(
    const StripeUpdate& update, DiskPriority data_priority, SyncPolicy sync,
    const std::function<bool(const PhysicalExtent&)>& old_data_cached,
    std::function<void(SimTime)> done) {
  const DiskPriority parity_priority =
      parity_has_priority(sync) ? DiskPriority::kParity : data_priority;

  // ---- Plain-write plans: full stripes, Base/Mirror, reconstruct mode.
  if (update.reconstruct || update.full_stripe) {
    const int op_count = static_cast<int>(update.writes.size()) +
                         (update.parity.valid() ? 1 : 0);
    auto completion = Barrier::create(op_count, std::move(done));
    for (const auto& w : update.writes)
      disk_write(w, data_priority,
                 [completion](SimTime t) { completion->arrive(t); });
    if (update.parity.valid()) {
      if (update.reconstruct_reads.empty()) {
        // Full stripe: the parity is computed from the new data and
        // written without any reads.
        disk_write(update.parity, parity_priority,
                   [completion](SimTime t) { completion->arrive(t); });
      } else {
        // Reconstruct: the parity write waits for the reads of the
        // untouched data.
        const PhysicalExtent parity = update.parity;
        auto read_barrier = Barrier::create(
            static_cast<int>(update.reconstruct_reads.size()),
            [this, parity, parity_priority, completion](SimTime) {
              disk_write(parity, parity_priority,
                         [completion](SimTime t) { completion->arrive(t); });
            });
        for (const auto& r : update.reconstruct_reads)
          disk_read(r, data_priority,
                    [read_barrier](SimTime t) { read_barrier->arrive(t); });
      }
    }
    return;
  }

  // ---- Read-modify-write plan (small writes).
  assert(update.parity.valid());

  std::vector<PhysicalExtent> data_pieces;
  for (const auto& w : update.writes)
    for (const auto& piece : split_at_cylinders(w)) data_pieces.push_back(piece);
  std::vector<PhysicalExtent> parity_pieces = split_at_cylinders(update.parity);

  const int total_ops =
      static_cast<int>(data_pieces.size() + parity_pieces.size());
  auto completion = Barrier::create(total_ops, std::move(done));

  // The gate opens when the new parity is computable: every data piece
  // whose old content is not already in the controller must finish its
  // old-data read first.
  auto gate = std::make_shared<WriteGate>();
  int gate_inputs = 0;
  std::vector<bool> piece_old_cached(data_pieces.size());
  for (std::size_t i = 0; i < data_pieces.size(); ++i) {
    piece_old_cached[i] = old_data_cached(data_pieces[i]);
    if (!piece_old_cached[i]) ++gate_inputs;
  }

  // Issuing the parity access(es): immediately for SI; when all old data
  // have been read for RF; when all data accesses have acquired their
  // disks for DF.
  auto issue_parity = [this, parity_pieces, parity_priority, gate,
                       completion](SimTime) {
    for (const auto& piece : parity_pieces) {
      Disk& disk = *disks_[static_cast<std::size_t>(piece.disk)];
      DiskRequest req;
      req.kind = DiskOpKind::kReadModifyWrite;
      req.start_block = piece.start_block;
      req.block_count = piece.block_count;
      req.priority = parity_priority;
      req.gate = gate;
      req.on_complete = [completion](SimTime t) { completion->arrive(t); };
      disk.submit(std::move(req));
    }
  };

  const bool read_first = is_read_first(sync);
  auto read_barrier = Barrier::create(
      gate_inputs, [gate, read_first, issue_parity](SimTime t) {
        gate->open(t);
        if (read_first) issue_parity(t);
      });
  if (gate_inputs == 0) {
    // No reads to wait for (all old data cached): open now and, for RF,
    // issue immediately.
    gate->open(eq_.now());
    if (read_first) issue_parity(eq_.now());
  }

  std::shared_ptr<Barrier> start_barrier;
  if (is_disk_first(sync)) {
    start_barrier =
        Barrier::create(static_cast<int>(data_pieces.size()), issue_parity);
  }

  for (std::size_t i = 0; i < data_pieces.size(); ++i) {
    const auto& piece = data_pieces[i];
    Disk& disk = *disks_[static_cast<std::size_t>(piece.disk)];
    DiskRequest req;
    req.start_block = piece.start_block;
    req.block_count = piece.block_count;
    req.priority = data_priority;
    if (piece_old_cached[i]) {
      // Old content already buffered: plain in-place write.
      req.kind = DiskOpKind::kWrite;
    } else {
      // Read the old data, rewrite a revolution later. The write phase
      // needs nothing beyond the new data, which the controller already
      // has, so its own gate is pre-opened.
      req.kind = DiskOpKind::kReadModifyWrite;
      req.gate = WriteGate::already_open();
      req.on_read_done = [read_barrier](SimTime t) {
        read_barrier->arrive(t);
      };
    }
    if (start_barrier)
      req.on_start = [start_barrier](SimTime t) { start_barrier->arrive(t); };
    req.on_complete = [completion](SimTime t) { completion->arrive(t); };
    disk.submit(std::move(req));
  }

  if (sync == SyncPolicy::kSimultaneousIssue) issue_parity(eq_.now());
}

}  // namespace raidsim
