#pragma once

#include "array/controller.hpp"

namespace raidsim {

/// Non-cached array controller (Sections 3.3-3.4): requests go straight
/// to the disks. Track buffers decouple disk transfers from the channel;
/// writes in parity organizations execute the read-modify-write plans
/// under the configured synchronization policy; mirror reads use the
/// shortest-seek optimisation; request completion requires the data (and
/// parity or mirror copy) to be on disk.
class UncachedController : public ArrayController {
 public:
  UncachedController(EventQueue& eq, const Config& config);

  void submit(const ArrayRequest& request,
              Completion on_complete) override;

 private:
  void submit_read(const ArrayRequest& request,
                   Completion on_complete);
  void submit_write(const ArrayRequest& request,
                    Completion on_complete);
};

}  // namespace raidsim
