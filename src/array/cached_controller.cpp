#include "array/cached_controller.hpp"

#include <algorithm>
#include <cassert>

#include "util/arena.hpp"

namespace raidsim {

namespace {

bool is_parity_org(Organization org) {
  return org == Organization::kRaid4 || org == Organization::kRaid5 ||
         org == Organization::kParityStriping;
}

}  // namespace

CachedController::CachedController(EventQueue& eq, const Config& config,
                                   const CacheConfig& cache_config)
    : ArrayController(eq, config),
      cache_(static_cast<std::size_t>(
                 std::max<std::int64_t>(1, cache_config.cache_bytes /
                                               config.disk_geometry.block_bytes())),
             cache_config.retain_old_data &&
                 is_parity_org(config.layout.organization)),
      cache_config_(cache_config),
      parity_org_(is_parity_org(config.layout.organization)) {
  if (cache_config_.parity_caching &&
      config.layout.organization != Organization::kRaid4)
    throw std::invalid_argument(
        "CachedController: parity caching requires the RAID4 organization");
  if (cache_config_.intent_journal && parity_org_) {
    journal_owned_ = std::make_unique<IntentJournal>();
    attach_journal(journal_owned_.get());
  }
  schedule_destage_tick();
}

void CachedController::crash_halt(bool preserve_nvram) {
  if (crashed()) return;
  ArrayController::crash_halt(preserve_nvram);  // disks + journal
  if (destage_event_ != 0) {
    eq_.cancel(destage_event_);
    destage_event_ = 0;
  }
  stats_.crash_aborted_host_writes +=
      static_cast<std::uint64_t>(stalled_.size());
  stalled_.clear();
  // The parity spool never survives: the queued XOR deltas are computed
  // in controller volatile memory, not in the NV cache. Losing them mid
  // stripe-update is precisely the write hole -- the data blocks stay
  // safely dirty in NVRAM, but the parity update they were part of is
  // gone. crash_reset() zeroes the parity slots the entries reserved.
  spool_.clear();
  spooling_ = false;
  spooling_block_ = -1;
  spooling_entry_ = SpoolEntry{};
  cache_.crash_reset(preserve_nvram);
  if (!preserve_nvram && auditor_) auditor_->wipe_nvram();
}

void CachedController::crash_restart() {
  if (!crashed()) return;
  ArrayController::crash_restart();
  schedule_destage_tick();
  pump_spooler();
}

void CachedController::shutdown() {
  shutdown_ = true;
  if (destage_event_ != 0) {
    eq_.cancel(destage_event_);
    destage_event_ = 0;
  }
}

void CachedController::submit(const ArrayRequest& request,
                              Completion on_complete) {
  if (crashed()) return;  // controller down: the request dies unanswered
  if (!on_complete) on_complete = [](SimTime) {};
  if (request.is_write) {
    submit_write(request, std::move(on_complete));
  } else {
    submit_read(request, std::move(on_complete));
  }
}

void CachedController::submit_read(const ArrayRequest& request,
                                   Completion on_complete) {
  ++stats_.read_requests;

  // A multiblock request is a hit only when every block is cached
  // (Section 4.3).
  bool all_cached = true;
  for (int i = 0; i < request.block_count; ++i)
    all_cached = all_cached && cache_.contains(request.logical_block + i);
  for (int i = 0; i < request.block_count; ++i)
    cache_.read(request.logical_block + i);

  obs_instant(tracer_, all_cached ? ObsPhase::kCacheHit : ObsPhase::kCacheMiss,
              array_index_, -1, eq_.now(), request.obs_id);

  const std::int64_t bytes = block_bytes(request.block_count);
  if (all_cached) {
    ++stats_.read_request_hits;
    channel_->transfer(bytes, std::move(on_complete));
    return;
  }

  // Miss: fetch the extent from disk; dirty LRU victims displaced by the
  // fill must reach the disk before the response completes (Section 3.4).
  auto extents = layout_->map_read(request.logical_block, request.block_count);
  auto barrier = Barrier::create(eq_.op_arena(),
      static_cast<int>(extents.size()),
      [this, bytes, on_complete = std::move(on_complete)](SimTime) mutable {
        channel_->transfer(bytes, std::move(on_complete));
      });
  for (auto extent : extents) {
    extent.disk = choose_mirror_read_disk(extent);
    tail_read(extent, DiskPriority::kNormal,
              [this, extent, barrier](SimTime t) {
                for (int i = 0; i < extent.block_count; ++i) {
                  const std::int64_t block = extent.logical_start + i;
                  const auto result = cache_.insert_clean(block);
                  if (result.inserted && result.evicted_dirty) {
                    barrier->expect(1);
                    ++stats_.sync_victim_writes;
                    if (auditor_) auditor_->nvram_evict(result.victim);
                    victim_writeback(result.victim, DiskPriority::kNormal,
                                     [barrier](SimTime tv) {
                                       barrier->arrive(tv);
                                     });
                  }
                }
                barrier->arrive(t);
              });
  }
}

void CachedController::submit_write(const ArrayRequest& request,
                                    Completion on_complete) {
  ++stats_.write_requests;
  bool all_cached = true;
  for (int i = 0; i < request.block_count; ++i)
    all_cached = all_cached && cache_.contains(request.logical_block + i);
  if (all_cached) ++stats_.write_request_hits;
  obs_instant(tracer_, all_cached ? ObsPhase::kCacheHit : ObsPhase::kCacheMiss,
              array_index_, -1, eq_.now(), request.obs_id);

  auto state = make_op<StalledWrite>(eq_.op_arena());
  state->blocks.reserve(static_cast<std::size_t>(request.block_count));
  for (int i = 0; i < request.block_count; ++i)
    state->blocks.push_back(request.logical_block + i);
  state->obs_id = request.obs_id;
  state->on_complete = std::move(on_complete);

  // Data cross the channel into the NV cache; the response completes once
  // every block is safely cached (the destage to disk is asynchronous).
  channel_->transfer(block_bytes(request.block_count),
                     [this, state](SimTime) { try_cache_writes(state); });
}

void CachedController::try_cache_writes(OpRef<StalledWrite> write) {
  if (crashed()) {
    // Channel transfer landed after the crash: the request dies with the
    // controller (the host never hears back).
    ++stats_.crash_aborted_host_writes;
    return;
  }
  while (write->next < write->blocks.size()) {
    const std::int64_t block = write->blocks[write->next];
    const auto result = cache_.write(block);
    if (!result.accepted) {
      ++stats_.write_stalls;
      obs_instant(tracer_, ObsPhase::kWriteStall, array_index_, -1, eq_.now(),
                  write->obs_id);
      stalled_.push_back(write);
      return;
    }
    if (auditor_) {
      // The old copy (if captured) snapshots the pre-write disk content;
      // acceptance into the NV cache IS the host acknowledgement.
      if (result.captured_old) auditor_->old_captured(block);
      const std::uint64_t gen = auditor_->host_write(block);
      auditor_->nvram_put(block, gen);
      auditor_->acknowledge(block, gen);
    }
    if (result.evicted_dirty) {
      // Asynchronous writeback of the displaced dirty block; write
      // responses do not wait for it.
      ++stats_.sync_victim_writes;
      if (auditor_) auditor_->nvram_evict(result.victim);
      victim_writeback(result.victim, DiskPriority::kNormal, nullptr);
    }
    ++write->next;
  }
  write->on_complete(eq_.now());
}

void CachedController::pump_stalled() {
  // Retry parked writes in order; try_cache_writes re-appends a write
  // that stalls again, so stop as soon as one fails to finish.
  while (!stalled_.empty()) {
    auto write = stalled_.front();
    stalled_.pop_front();
    try_cache_writes(write);
    if (write->next < write->blocks.size()) break;  // still stalled
  }
}

void CachedController::victim_writeback(std::int64_t block,
                                        DiskPriority priority,
                                        Completion done) {
  // The victim left the cache together with any old-data copy, so the
  // parity update takes the full read-modify-write path. RAID4 victims
  // bypass the spool (the paper's "serviced directly from disk" case).
  auto plans = layout_->map_write(block, 1);
  auto barrier = Barrier::create(eq_.op_arena(),
      static_cast<int>(plans.size()),
      done ? std::move(done) : [](SimTime) {});
  auto never_cached = [](const PhysicalExtent&) { return false; };
  for (const auto& plan : plans)
    execute_update(plan, priority, sync_, never_cached,
                   [barrier](SimTime t) { barrier->arrive(t); });
}

bool CachedController::old_cached_extent(const PhysicalExtent& extent) const {
  if (extent.logical_start < 0) return false;
  for (int i = 0; i < extent.block_count; ++i)
    if (!cache_.has_old(extent.logical_start + i)) return false;
  return true;
}

void CachedController::schedule_destage_tick() {
  if (!cache_config_.periodic_destage || shutdown_) return;
  destage_event_ = eq_.schedule_in(cache_config_.destage_period_ms,
                                   [this] { destage_tick(); });
}

void CachedController::destage_tick() {
  destage_event_ = 0;
  if (crashed()) return;
  obs_instant(tracer_, ObsPhase::kDestageTick, array_index_, -1, eq_.now());
  auto dirty = cache_.collect_dirty();
  std::sort(dirty.begin(), dirty.end());

  // Group consecutive logical blocks into runs.
  struct Run {
    std::int64_t start;
    int count;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < dirty.size();) {
    std::size_t j = i + 1;
    while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1 &&
           static_cast<int>(j - i) < cache_config_.max_destage_run_blocks)
      ++j;
    runs.push_back(Run{dirty[i], static_cast<int>(j - i)});
    i = j;
  }

  // Spread the destage writes progressively across the period so they
  // interfere minimally with the read traffic (Section 3.4).
  const double period = cache_config_.destage_period_ms;
  const auto n = static_cast<double>(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run run = runs[i];
    const double offset = period * (static_cast<double>(i) + 0.5) / n;
    eq_.schedule_in(offset,
                    [this, run] { issue_destage_run(run.start, run.count); });
  }
  schedule_destage_tick();
}

void CachedController::issue_destage_run(std::int64_t start_block, int count) {
  // A destage offset scheduled before a crash may fire after it: the
  // crash already discarded this work.
  if (crashed()) return;
  // Blocks may have been destaged (victim path) or begun flight since the
  // tick; re-derive the eligible sub-runs.
  int i = 0;
  while (i < count) {
    while (i < count && !cache_.destage_eligible(start_block + i)) ++i;
    if (i >= count) return;
    int j = i;
    while (j < count && cache_.destage_eligible(start_block + j)) ++j;

    const std::int64_t sub_start = start_block + i;
    const int sub_count = j - i;
    auto plans = layout_->map_write(sub_start, sub_count);

    bool use_spool = cache_config_.parity_caching && failed_disk_ < 0;
    if (use_spool) {
      // Reserve a spool slot for every parity block across all plans up
      // front (coalescing with an existing entry releases the extra slot
      // later). When the cache has no room for the parity update, this
      // run is serviced directly from disk instead -- the paper's
      // behaviour when the parity queue occupies the entire cache.
      int needed = 0;
      for (const auto& plan : plans)
        if (plan.parity.valid()) needed += plan.parity.block_count;
      int reserved = 0;
      while (reserved < needed && cache_.try_reserve_parity_slot()) ++reserved;
      if (reserved < needed) {
        ++stats_.parity_reservation_failures;
        for (int r = 0; r < reserved; ++r) cache_.release_parity_slot();
        use_spool = false;
      }
    }

    for (int b = 0; b < sub_count; ++b) cache_.begin_destage(sub_start + b);
    stats_.destage_blocks += static_cast<std::uint64_t>(sub_count);

    const std::uint64_t span =
        obs_begin(tracer_, ObsPhase::kDestage, array_index_, -1, eq_.now());
    auto barrier = Barrier::create(eq_.op_arena(),
        static_cast<int>(plans.size()),
        [this, sub_start, sub_count, span](SimTime t) {
          for (int b = 0; b < sub_count; ++b) cache_.end_destage(sub_start + b);
          obs_end(tracer_, span, ObsPhase::kDestage, array_index_, -1, t);
          pump_stalled();
        });
    for (const auto& plan : plans) {
      stats_.destage_writes += static_cast<std::uint64_t>(plan.writes.size());
      if (use_spool) {
        execute_update_spooled(plan,
                               [barrier](SimTime t) { barrier->arrive(t); });
      } else {
        execute_update(plan, DiskPriority::kNormal, sync_,
                       [this](const PhysicalExtent& e) {
                         return old_cached_extent(e);
                       },
                       [barrier](SimTime t) { barrier->arrive(t); });
      }
    }
    i = j;
  }
}

void CachedController::execute_update_spooled(
    const StripeUpdate& update, Completion done) {
  // Data writes go to the data disks as in the plain cached path; the
  // parity update is captured in the cache (as a full parity block for
  // full stripes, as the xor of old and new data otherwise) and spooled
  // to the dedicated parity disk asynchronously. The destage of the data
  // is complete once the data are on disk -- the buffered parity is
  // already stable in the NV cache.
  ExtentList pieces;
  for (const auto& w : update.writes)
    for (const auto& piece : split_at_cylinders(w)) pieces.push_back(piece);

  const bool full = update.full_stripe;

  // Per-piece delta source, also needed for the audit covers below.
  InlineVec<char, 16> piece_old_cached;
  for (std::size_t i = 0; i < pieces.size(); ++i)
    piece_old_cached.push_back(!full && old_cached_extent(pieces[i]) ? 1 : 0);

  std::vector<ParityCover> covers;
  if (auditor_) {
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const auto& piece = pieces[i];
      if (piece.logical_start < 0) continue;
      for (int b = 0; b < piece.block_count; ++b) {
        ParityCover c;
        c.block = piece.logical_start + b;
        c.gen = auditor_->current_gen(c.block);
        c.assumed_old_gen = piece_old_cached[i]
                                ? auditor_->old_copy_gen(c.block)
                                : auditor_->disk_gen(c.block);
        covers.push_back(c);
      }
    }
  }

  // Intent journal: the update retires only when the data writes AND the
  // spooled parity have both landed (the spool entry carries the parity
  // arrival as an on_durable callback).
  std::function<void(SimTime)> intent_arrive;
  if (journal_ && !crashed() && update.parity.valid() &&
      !update.writes.empty()) {
    const std::uint64_t id = journal_->open(update, eq_.now());
    ++stats_.journal_intents;
    auto pending = make_op<int>(eq_.op_arena(), 2);
    intent_arrive = [this, id, pending](SimTime t) {
      if (--*pending == 0 && journal_) journal_->close(id, t);
    };
  }

  auto completion = Barrier::create(eq_.op_arena(),
      static_cast<int>(pieces.size()),
      [intent_arrive, done = std::move(done)](SimTime t) {
        if (intent_arrive) intent_arrive(t);
        if (done) done(t);
      });

  const PhysicalExtent parity = update.parity;
  auto enqueue_parity = [this, parity, full, covers = std::move(covers),
                         intent_arrive](SimTime) {
    if (!parity.valid()) return;
    for (int b = 0; b < parity.block_count; ++b) {
      const bool first = b == 0;
      // Wrapping an EMPTY std::function would make a non-null (but
      // throwing) Completion, so the empty case passes a true null.
      add_spool_entry(parity.start_block + b, full,
                      first ? covers : std::vector<ParityCover>{},
                      first && intent_arrive ? Completion(intent_arrive)
                                             : Completion());
    }
  };

  if (full) {
    // Full stripe: parity computed from new data, available immediately.
    enqueue_parity(eq_.now());
    for (const auto& piece : pieces) {
      auto tap = audit_data_write(
          piece, [completion](SimTime t) { completion->arrive(t); });
      disk_write(piece, DiskPriority::kNormal, std::move(tap.on_complete),
                 std::move(tap.on_power_fail));
    }
    return;
  }

  // Partial update: the xor-delta needs the old data of every modified
  // piece -- either already retained in the cache or read by the data
  // disk's RMW pass.
  int delta_inputs = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i)
    if (!piece_old_cached[i]) ++delta_inputs;
  auto delta_barrier = Barrier::create(eq_.op_arena(), delta_inputs, enqueue_parity);
  if (delta_inputs == 0) enqueue_parity(eq_.now());

  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const auto& piece = pieces[i];
    Disk& disk = *disks_[static_cast<std::size_t>(piece.disk)];
    DiskRequest req;
    req.start_block = piece.start_block;
    req.block_count = piece.block_count;
    req.priority = DiskPriority::kNormal;
    if (piece_old_cached[i]) {
      req.kind = DiskOpKind::kWrite;
    } else {
      req.kind = DiskOpKind::kReadModifyWrite;
      req.gate = WriteGate::already_open(eq_.op_arena());
      req.on_read_done = [delta_barrier](SimTime t) {
        delta_barrier->arrive(t);
      };
    }
    auto tap = audit_data_write(
        piece, [completion](SimTime t) { completion->arrive(t); });
    req.on_complete = std::move(tap.on_complete);
    req.on_power_fail = std::move(tap.on_power_fail);
    disk.submit(std::move(req));
  }
}

void CachedController::add_spool_entry(std::int64_t parity_block,
                                       bool full_stripe,
                                       std::vector<ParityCover> covers,
                                       Completion on_durable) {
  if (SpoolEntry* existing = spool_.find(parity_block)) {
    // Coalesce: a later full-stripe parity supersedes a pending delta;
    // the reserved slot is shared, so release the extra reservation.
    existing->full_stripe = existing->full_stripe || full_stripe;
    for (auto& c : covers) existing->covers.push_back(std::move(c));
    if (on_durable) existing->on_durable.push_back(std::move(on_durable));
    cache_.release_parity_slot();
    return;
  }
  SpoolEntry entry;
  entry.full_stripe = full_stripe;
  entry.covers = std::move(covers);
  if (on_durable) entry.on_durable.push_back(std::move(on_durable));
  spool_.insert(parity_block, std::move(entry));
  stats_.parity_queue_peak = std::max(stats_.parity_queue_peak, spool_.size());
  pump_spooler();
}

void CachedController::pump_spooler() {
  if (spooling_ || spool_.empty() || crashed()) return;
  // SCAN: continue sweeping upward from the last serviced position,
  // wrapping at the end (parity block number increases with cylinder).
  auto popped = spool_.pop_at_or_after(scan_position_);
  const std::int64_t block = popped.key;
  spooling_entry_ = std::move(popped.value);
  spooling_ = true;
  spooling_block_ = block;
  scan_position_ = block + 1;
  const bool full = spooling_entry_.full_stripe;

  const int parity_disk_index = layout_->total_disks() - 1;
  Disk& disk = *disks_[static_cast<std::size_t>(parity_disk_index)];
  DiskRequest req;
  req.start_block = block;
  req.block_count = 1;
  req.priority = DiskPriority::kNormal;
  if (full) {
    req.kind = DiskOpKind::kWrite;
    req.obs_phase = ObsPhase::kWriteParity;
  } else {
    // Delta entry: the old parity must be read, xored, and rewritten.
    req.kind = DiskOpKind::kReadModifyWrite;
    req.gate = WriteGate::already_open(eq_.op_arena());
    req.obs_phase = ObsPhase::kReadOldParity;
  }
  req.on_complete = [this, full](SimTime t) {
    SpoolEntry entry = std::move(spooling_entry_);
    spooling_ = false;
    spooling_block_ = -1;
    spooling_entry_ = SpoolEntry{};
    cache_.release_parity_slot();
    ++stats_.parity_spools;
    if (auditor_)
      for (const auto& c : entry.covers) auditor_->parity_durable(c, full);
    for (auto& cb : entry.on_durable) cb(t);
    pump_stalled();
    pump_spooler();
  };
  disk.submit(std::move(req));
}

}  // namespace raidsim
