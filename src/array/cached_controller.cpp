#include "array/cached_controller.hpp"

#include <algorithm>
#include <cassert>

namespace raidsim {

namespace {

bool is_parity_org(Organization org) {
  return org == Organization::kRaid4 || org == Organization::kRaid5 ||
         org == Organization::kParityStriping;
}

}  // namespace

CachedController::CachedController(EventQueue& eq, const Config& config,
                                   const CacheConfig& cache_config)
    : ArrayController(eq, config),
      cache_(static_cast<std::size_t>(
                 std::max<std::int64_t>(1, cache_config.cache_bytes /
                                               config.disk_geometry.block_bytes())),
             cache_config.retain_old_data &&
                 is_parity_org(config.layout.organization)),
      cache_config_(cache_config),
      parity_org_(is_parity_org(config.layout.organization)) {
  if (cache_config_.parity_caching &&
      config.layout.organization != Organization::kRaid4)
    throw std::invalid_argument(
        "CachedController: parity caching requires the RAID4 organization");
  schedule_destage_tick();
}

void CachedController::shutdown() {
  shutdown_ = true;
  if (destage_event_ != 0) {
    eq_.cancel(destage_event_);
    destage_event_ = 0;
  }
}

void CachedController::submit(const ArrayRequest& request,
                              std::function<void(SimTime)> on_complete) {
  if (!on_complete) on_complete = [](SimTime) {};
  if (request.is_write) {
    submit_write(request, std::move(on_complete));
  } else {
    submit_read(request, std::move(on_complete));
  }
}

void CachedController::submit_read(const ArrayRequest& request,
                                   std::function<void(SimTime)> on_complete) {
  ++stats_.read_requests;

  // A multiblock request is a hit only when every block is cached
  // (Section 4.3).
  bool all_cached = true;
  for (int i = 0; i < request.block_count; ++i)
    all_cached = all_cached && cache_.contains(request.logical_block + i);
  for (int i = 0; i < request.block_count; ++i)
    cache_.read(request.logical_block + i);

  const std::int64_t bytes = block_bytes(request.block_count);
  if (all_cached) {
    ++stats_.read_request_hits;
    channel_->transfer(bytes, std::move(on_complete));
    return;
  }

  // Miss: fetch the extent from disk; dirty LRU victims displaced by the
  // fill must reach the disk before the response completes (Section 3.4).
  auto extents = layout_->map_read(request.logical_block, request.block_count);
  auto barrier = Barrier::create(
      static_cast<int>(extents.size()),
      [this, bytes, on_complete = std::move(on_complete)](SimTime) mutable {
        channel_->transfer(bytes, std::move(on_complete));
      });
  for (auto extent : extents) {
    extent.disk = choose_mirror_read_disk(extent);
    disk_read(extent, DiskPriority::kNormal,
              [this, extent, barrier](SimTime t) {
                for (int i = 0; i < extent.block_count; ++i) {
                  const std::int64_t block = extent.logical_start + i;
                  const auto result = cache_.insert_clean(block);
                  if (result.inserted && result.evicted_dirty) {
                    barrier->expect(1);
                    ++stats_.sync_victim_writes;
                    victim_writeback(result.victim, DiskPriority::kNormal,
                                     [barrier](SimTime tv) {
                                       barrier->arrive(tv);
                                     });
                  }
                }
                barrier->arrive(t);
              });
  }
}

void CachedController::submit_write(const ArrayRequest& request,
                                    std::function<void(SimTime)> on_complete) {
  ++stats_.write_requests;
  bool all_cached = true;
  for (int i = 0; i < request.block_count; ++i)
    all_cached = all_cached && cache_.contains(request.logical_block + i);
  if (all_cached) ++stats_.write_request_hits;

  auto state = std::make_shared<StalledWrite>();
  state->blocks.reserve(static_cast<std::size_t>(request.block_count));
  for (int i = 0; i < request.block_count; ++i)
    state->blocks.push_back(request.logical_block + i);
  state->on_complete = std::move(on_complete);

  // Data cross the channel into the NV cache; the response completes once
  // every block is safely cached (the destage to disk is asynchronous).
  channel_->transfer(block_bytes(request.block_count),
                     [this, state](SimTime) { try_cache_writes(state); });
}

void CachedController::try_cache_writes(std::shared_ptr<StalledWrite> write) {
  while (write->next < write->blocks.size()) {
    const auto result = cache_.write(write->blocks[write->next]);
    if (!result.accepted) {
      ++stats_.write_stalls;
      stalled_.push_back(write);
      return;
    }
    if (result.evicted_dirty) {
      // Asynchronous writeback of the displaced dirty block; write
      // responses do not wait for it.
      ++stats_.sync_victim_writes;
      victim_writeback(result.victim, DiskPriority::kNormal, nullptr);
    }
    ++write->next;
  }
  write->on_complete(eq_.now());
}

void CachedController::pump_stalled() {
  // Retry parked writes in order; try_cache_writes re-appends a write
  // that stalls again, so stop as soon as one fails to finish.
  while (!stalled_.empty()) {
    auto write = stalled_.front();
    stalled_.pop_front();
    try_cache_writes(write);
    if (write->next < write->blocks.size()) break;  // still stalled
  }
}

void CachedController::victim_writeback(std::int64_t block,
                                        DiskPriority priority,
                                        std::function<void(SimTime)> done) {
  // The victim left the cache together with any old-data copy, so the
  // parity update takes the full read-modify-write path. RAID4 victims
  // bypass the spool (the paper's "serviced directly from disk" case).
  auto plans = layout_->map_write(block, 1);
  auto barrier = Barrier::create(
      static_cast<int>(plans.size()),
      done ? std::move(done) : [](SimTime) {});
  auto never_cached = [](const PhysicalExtent&) { return false; };
  for (const auto& plan : plans)
    execute_update(plan, priority, sync_, never_cached,
                   [barrier](SimTime t) { barrier->arrive(t); });
}

bool CachedController::old_cached_extent(const PhysicalExtent& extent) const {
  if (extent.logical_start < 0) return false;
  for (int i = 0; i < extent.block_count; ++i)
    if (!cache_.has_old(extent.logical_start + i)) return false;
  return true;
}

void CachedController::schedule_destage_tick() {
  if (!cache_config_.periodic_destage || shutdown_) return;
  destage_event_ = eq_.schedule_in(cache_config_.destage_period_ms,
                                   [this] { destage_tick(); });
}

void CachedController::destage_tick() {
  destage_event_ = 0;
  auto dirty = cache_.collect_dirty();
  std::sort(dirty.begin(), dirty.end());

  // Group consecutive logical blocks into runs.
  struct Run {
    std::int64_t start;
    int count;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < dirty.size();) {
    std::size_t j = i + 1;
    while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1 &&
           static_cast<int>(j - i) < cache_config_.max_destage_run_blocks)
      ++j;
    runs.push_back(Run{dirty[i], static_cast<int>(j - i)});
    i = j;
  }

  // Spread the destage writes progressively across the period so they
  // interfere minimally with the read traffic (Section 3.4).
  const double period = cache_config_.destage_period_ms;
  const auto n = static_cast<double>(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run run = runs[i];
    const double offset = period * (static_cast<double>(i) + 0.5) / n;
    eq_.schedule_in(offset,
                    [this, run] { issue_destage_run(run.start, run.count); });
  }
  schedule_destage_tick();
}

void CachedController::issue_destage_run(std::int64_t start_block, int count) {
  // Blocks may have been destaged (victim path) or begun flight since the
  // tick; re-derive the eligible sub-runs.
  int i = 0;
  while (i < count) {
    while (i < count && !cache_.destage_eligible(start_block + i)) ++i;
    if (i >= count) return;
    int j = i;
    while (j < count && cache_.destage_eligible(start_block + j)) ++j;

    const std::int64_t sub_start = start_block + i;
    const int sub_count = j - i;
    auto plans = layout_->map_write(sub_start, sub_count);

    bool use_spool = cache_config_.parity_caching && failed_disk_ < 0;
    if (use_spool) {
      // Reserve a spool slot for every parity block across all plans up
      // front (coalescing with an existing entry releases the extra slot
      // later). When the cache has no room for the parity update, this
      // run is serviced directly from disk instead -- the paper's
      // behaviour when the parity queue occupies the entire cache.
      int needed = 0;
      for (const auto& plan : plans)
        if (plan.parity.valid()) needed += plan.parity.block_count;
      int reserved = 0;
      while (reserved < needed && cache_.try_reserve_parity_slot()) ++reserved;
      if (reserved < needed) {
        ++stats_.parity_reservation_failures;
        for (int r = 0; r < reserved; ++r) cache_.release_parity_slot();
        use_spool = false;
      }
    }

    for (int b = 0; b < sub_count; ++b) cache_.begin_destage(sub_start + b);
    stats_.destage_blocks += static_cast<std::uint64_t>(sub_count);

    auto barrier = Barrier::create(
        static_cast<int>(plans.size()),
        [this, sub_start, sub_count](SimTime) {
          for (int b = 0; b < sub_count; ++b) cache_.end_destage(sub_start + b);
          pump_stalled();
        });
    for (const auto& plan : plans) {
      stats_.destage_writes += static_cast<std::uint64_t>(plan.writes.size());
      if (use_spool) {
        execute_update_spooled(plan,
                               [barrier](SimTime t) { barrier->arrive(t); });
      } else {
        execute_update(plan, DiskPriority::kNormal, sync_,
                       [this](const PhysicalExtent& e) {
                         return old_cached_extent(e);
                       },
                       [barrier](SimTime t) { barrier->arrive(t); });
      }
    }
    i = j;
  }
}

void CachedController::execute_update_spooled(
    const StripeUpdate& update, std::function<void(SimTime)> done) {
  // Data writes go to the data disks as in the plain cached path; the
  // parity update is captured in the cache (as a full parity block for
  // full stripes, as the xor of old and new data otherwise) and spooled
  // to the dedicated parity disk asynchronously. The destage of the data
  // is complete once the data are on disk -- the buffered parity is
  // already stable in the NV cache.
  std::vector<PhysicalExtent> pieces;
  for (const auto& w : update.writes)
    for (const auto& piece : split_at_cylinders(w)) pieces.push_back(piece);

  auto completion =
      Barrier::create(static_cast<int>(pieces.size()), std::move(done));

  const PhysicalExtent parity = update.parity;
  const bool full = update.full_stripe;
  auto enqueue_parity = [this, parity, full](SimTime) {
    if (!parity.valid()) return;
    for (int b = 0; b < parity.block_count; ++b)
      add_spool_entry(parity.start_block + b, full);
  };

  if (full) {
    // Full stripe: parity computed from new data, available immediately.
    enqueue_parity(eq_.now());
    for (const auto& piece : pieces)
      disk_write(piece, DiskPriority::kNormal,
                 [completion](SimTime t) { completion->arrive(t); });
    return;
  }

  // Partial update: the xor-delta needs the old data of every modified
  // piece -- either already retained in the cache or read by the data
  // disk's RMW pass.
  int delta_inputs = 0;
  std::vector<bool> piece_old_cached(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    piece_old_cached[i] = old_cached_extent(pieces[i]);
    if (!piece_old_cached[i]) ++delta_inputs;
  }
  auto delta_barrier = Barrier::create(delta_inputs, enqueue_parity);
  if (delta_inputs == 0) enqueue_parity(eq_.now());

  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const auto& piece = pieces[i];
    Disk& disk = *disks_[static_cast<std::size_t>(piece.disk)];
    DiskRequest req;
    req.start_block = piece.start_block;
    req.block_count = piece.block_count;
    req.priority = DiskPriority::kNormal;
    if (piece_old_cached[i]) {
      req.kind = DiskOpKind::kWrite;
    } else {
      req.kind = DiskOpKind::kReadModifyWrite;
      req.gate = WriteGate::already_open();
      req.on_read_done = [delta_barrier](SimTime t) {
        delta_barrier->arrive(t);
      };
    }
    req.on_complete = [completion](SimTime t) { completion->arrive(t); };
    disk.submit(std::move(req));
  }
}

void CachedController::add_spool_entry(std::int64_t parity_block,
                                       bool full_stripe) {
  auto it = spool_.find(parity_block);
  if (it != spool_.end()) {
    // Coalesce: a later full-stripe parity supersedes a pending delta;
    // the reserved slot is shared, so release the extra reservation.
    it->second = it->second || full_stripe;
    cache_.release_parity_slot();
    return;
  }
  spool_.emplace(parity_block, full_stripe);
  stats_.parity_queue_peak = std::max(stats_.parity_queue_peak, spool_.size());
  pump_spooler();
}

void CachedController::pump_spooler() {
  if (spooling_ || spool_.empty()) return;
  // SCAN: continue sweeping upward from the last serviced position,
  // wrapping at the end (parity block number increases with cylinder).
  auto it = spool_.lower_bound(scan_position_);
  if (it == spool_.end()) it = spool_.begin();
  const std::int64_t block = it->first;
  const bool full = it->second;
  spool_.erase(it);
  spooling_ = true;
  scan_position_ = block + 1;

  const int parity_disk_index = layout_->total_disks() - 1;
  Disk& disk = *disks_[static_cast<std::size_t>(parity_disk_index)];
  DiskRequest req;
  req.start_block = block;
  req.block_count = 1;
  req.priority = DiskPriority::kNormal;
  if (full) {
    req.kind = DiskOpKind::kWrite;
  } else {
    // Delta entry: the old parity must be read, xored, and rewritten.
    req.kind = DiskOpKind::kReadModifyWrite;
    req.gate = WriteGate::already_open();
  }
  req.on_complete = [this](SimTime) {
    spooling_ = false;
    cache_.release_parity_slot();
    ++stats_.parity_spools;
    pump_stalled();
    pump_spooler();
  };
  disk.submit(std::move(req));
}

}  // namespace raidsim
