#include "array/intent_journal.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace raidsim {

std::uint64_t IntentJournal::open(const StripeUpdate& update, SimTime now) {
  Intent intent;
  intent.id = next_id_++;
  intent.opened_at = now;
  intent.writes = update.writes;
  intent.parity = update.parity;
  open_.emplace(intent.id, std::move(intent));
  ++stats_.opened;
  stats_.peak_open = std::max(stats_.peak_open, open_.size());
  return next_id_ - 1;
}

void IntentJournal::close(std::uint64_t id, SimTime /*now*/) {
  if (open_.erase(id) > 0) ++stats_.closed;
}

void IntentJournal::power_loss(bool nvram_survives) {
  if (nvram_survives) return;  // battery held; the intents are still there
  open_.clear();
  wiped_ = true;
  ++stats_.wipes;
}

void IntentJournal::clear() {
  open_.clear();
  wiped_ = false;
}

std::vector<IntentJournal::Intent> IntentJournal::snapshot() const {
  std::vector<Intent> intents;
  intents.reserve(open_.size());
  for (const auto& [id, intent] : open_) intents.push_back(intent);
  return intents;
}

std::vector<PhysicalExtent> IntentJournal::dirty_stripe_extents() const {
  // The "bitmap" keys a stripe by its parity extent's location; one data
  // extent per key is enough -- resync_stripe rebuilds the whole group.
  std::set<std::pair<int, std::int64_t>> seen;
  std::vector<PhysicalExtent> extents;
  for (const auto& [id, intent] : open_) {
    if (intent.writes.empty()) continue;
    const auto key = intent.parity.valid()
                         ? std::make_pair(intent.parity.disk,
                                          intent.parity.start_block)
                         : std::make_pair(intent.writes.front().disk,
                                          intent.writes.front().start_block);
    if (seen.insert(key).second) extents.push_back(intent.writes.front());
  }
  return extents;
}

}  // namespace raidsim
