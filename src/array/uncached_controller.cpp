#include "array/uncached_controller.hpp"

namespace raidsim {

UncachedController::UncachedController(EventQueue& eq, const Config& config)
    : ArrayController(eq, config) {}

void UncachedController::submit(const ArrayRequest& request,
                                Completion on_complete) {
  if (crashed()) return;  // controller down: the request dies unanswered
  if (!on_complete) on_complete = [](SimTime) {};
  if (request.is_write) {
    submit_write(request, std::move(on_complete));
  } else {
    submit_read(request, std::move(on_complete));
  }
}

void UncachedController::submit_read(const ArrayRequest& request,
                                     Completion on_complete) {
  ++stats_.read_requests;
  auto extents = layout_->map_read(request.logical_block, request.block_count);
  auto barrier =
      Barrier::create(eq_.op_arena(), static_cast<int>(extents.size()), std::move(on_complete));
  for (auto extent : extents) {
    extent.disk = choose_mirror_read_disk(extent);
    const std::int64_t bytes = block_bytes(extent.block_count);
    // Track buffer held from the start of the disk transfer until the
    // data have drained onto the channel.
    buffers_->acquire([this, extent, bytes, barrier] {
      tail_read(extent, DiskPriority::kNormal,
                [this, bytes, barrier](SimTime) {
                  channel_->transfer(bytes, [this, barrier](SimTime t) {
                    buffers_->release();
                    barrier->arrive(t);
                  });
                });
    });
  }
}

void UncachedController::submit_write(const ArrayRequest& request,
                                      Completion on_complete) {
  ++stats_.write_requests;
  const std::int64_t bytes = block_bytes(request.block_count);
  const ArrayRequest req = request;
  auto done = std::move(on_complete);
  // The write data first cross the channel into controller buffers; the
  // disk (and parity) accesses follow. The response is complete when all
  // of them are on disk. In the uncached organizations old data are never
  // buffered ahead of time, so every small parity write takes the
  // read-modify-write path.
  buffers_->acquire([this, req, bytes, done = std::move(done)]() mutable {
    channel_->transfer(bytes, [this, req, done = std::move(done)](
                                  SimTime) mutable {
      if (crashed()) {  // crash raced the channel transfer
        buffers_->release();
        return;
      }
      // Audit bookkeeping: the host content exists only in volatile
      // controller buffers until the disk writes land, and the host is
      // acknowledged only after they all have -- so the uncached
      // controller has no lost-write window, just the write hole.
      std::vector<std::uint64_t> gens;
      if (auditor_) {
        gens.reserve(static_cast<std::size_t>(req.block_count));
        for (int i = 0; i < req.block_count; ++i)
          gens.push_back(auditor_->host_write(req.logical_block + i));
      }
      auto plans = layout_->map_write(req.logical_block, req.block_count);
      auto barrier = Barrier::create(eq_.op_arena(),
          static_cast<int>(plans.size()),
          [this, req, gens = std::move(gens),
           done = std::move(done)](SimTime t) {
            if (auditor_)
              for (int i = 0; i < req.block_count; ++i)
                auditor_->acknowledge(req.logical_block + i,
                                      gens[static_cast<std::size_t>(i)]);
            buffers_->release();
            done(t);
          });
      auto never_cached = [](const PhysicalExtent&) { return false; };
      for (const auto& plan : plans) {
        execute_update(plan, DiskPriority::kNormal, sync_, never_cached,
                       [barrier](SimTime t) { barrier->arrive(t); });
      }
    });
  });
}

}  // namespace raidsim
