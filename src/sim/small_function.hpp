#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace raidsim {

/// Move-only callable with inline storage, generalized over the call
/// signature. The event kernel's schedule path stores callbacks in slot
/// memory it owns, and the disk layer stores per-request completion
/// callbacks inside the request itself; captures up to `InlineBytes`
/// (enough for the simulator's completion lambdas, which carry a `this`,
/// a few scalars, and a continuation) live inline, so the common
/// schedule/submit path performs zero heap allocations. Larger callables
/// fall back to one heap allocation, same as std::function.
///
/// Like std::function, operator() is const-callable regardless of the
/// wrapped callable's constness (the target is treated as mutable state
/// owned by the wrapper).
template <typename Signature, std::size_t InlineBytes = 64>
class SmallFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& fn) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &SmallOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &BigOps<Fn>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(buf_, other.buf_);
    other.ops_ = nullptr;
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(const_cast<unsigned char*>(buf_),
                        std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args...);
    /// Move-construct into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct SmallOps {
    static R invoke(void* p, Args... args) {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct BigOps {
    static Fn* get(void* p) { return *static_cast<Fn**>(p); }
    static R invoke(void* p, Args... args) {
      return (*get(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      ::new (dst) Fn*(get(src));
    }
    static void destroy(void* p) { delete get(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace raidsim
