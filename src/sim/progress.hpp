#pragma once

#include <cstdint>
#include <functional>

namespace raidsim {

/// One progress observation from a running engine. Emitted at the
/// existing cancel-poll batch boundary (Simulator::kCancelCheckBatch
/// events), so observing progress costs nothing on the per-event hot
/// path -- and, like tracing, never perturbs the simulation: hooked
/// runs are bit-identical to unhooked ones (asserted by
/// tests/runner/progress_test.cpp).
struct ProgressSnapshot {
  std::uint64_t events = 0;  // kernel events executed so far (cumulative)
  double sim_ms = 0.0;       // simulated time reached
  std::uint64_t done = 0;    // host requests completed
  std::uint64_t total = 0;   // host requests in the trace (0 = unknown)
  /// True exactly once, on the last snapshot after the run completes
  /// normally (a cancelled run ends with no final frame).
  bool final_frame = false;
};

/// Progress observer. The sharded engine invokes it from shard worker
/// threads (one call at a time, but the calling thread varies), so
/// implementations must be thread-safe. Successive snapshots are
/// monotone in `events` and `sim_ms`.
using ProgressFn = std::function<void(const ProgressSnapshot&)>;

}  // namespace raidsim
