#include "sim/event_queue.hpp"

#include <cassert>

namespace raidsim {

EventId EventQueue::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId EventQueue::schedule_in(SimTime delay, Callback cb) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) { return live_.erase(id) > 0; }

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (live_.erase(e.id) == 0) continue;  // cancelled
    assert(e.time >= now_);
    now_ = e.time;
    ++executed_;
    e.cb();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t count = 0;
  while ((limit == 0 || count < limit) && step()) ++count;
  return count;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t count = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (live_.find(top.id) == live_.end()) {  // cancelled, drop silently
      heap_.pop();
      continue;
    }
    if (top.time > until) break;
    step();
    ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace raidsim
