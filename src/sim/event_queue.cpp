#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace raidsim {

namespace {

constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

/// Width policy: on rebuild, size buckets so the live population spreads
/// ~this many events per bucket. Batched dispatch drains a bucket's due
/// slice at a time, so a handful per bucket amortizes the refill/sort
/// overhead without making the per-bucket sort significant.
constexpr double kWidthEventsPerBucket = 8.0;

/// Grow (double the bucket count, re-estimating width) when occupancy
/// exceeds this multiple of the bucket count. Twice the width target, so
/// a freshly rebuilt calendar has headroom before the next rebuild.
constexpr std::size_t kGrowOccupancy = 16;

/// Events further out than this many bucket widths go to the overflow
/// ladder: beyond 2^52 buckets the absolute index arithmetic would lose
/// integer precision (and the snapped boundaries their meaning).
constexpr double kMaxBucketIndex = 4503599627370496.0;  // 2^52

}  // namespace

const char* to_string(EventKernel kernel) {
  switch (kernel) {
    case EventKernel::kCalendar: return "calendar";
    case EventKernel::kHeap: return "heap";
  }
  return "?";
}

EventQueue::EventQueue(EventKernel kernel, OpAlloc op_alloc)
    : arena_(op_alloc), kernel_(kernel) {
  if (kernel_ == EventKernel::kCalendar) {
    nbuckets_ = kMinBuckets;
    mask_ = nbuckets_ - 1;
    buckets_.resize(nbuckets_);
  }
}

void EventQueue::reserve(std::size_t expected_pending) {
  slots_.reserve(expected_pending);
  free_.reserve(expected_pending);
  if (kernel_ == EventKernel::kHeap) {
    heap_.reserve(expected_pending);
  } else {
    scratch_.reserve(expected_pending);
    batch_.reserve(256);
    for (std::vector<HeapEntry>& b : buckets_) b.reserve(16);
  }
}

EventId EventQueue::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.gen += 1;  // even -> odd: occupied
  s.cb = std::move(cb);
  ++live_;

  const HeapEntry e{when, seq_++, slot, s.gen};
  if (kernel_ == EventKernel::kHeap) {
    heap_.push_back(e);
    sift_up(heap_, heap_.size() - 1);
  } else {
    insert_entry(e);
  }
  return make_id(slot, s.gen);
}

EventId EventQueue::schedule_in(SimTime delay, Callback cb) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen || (gen & 1u) == 0)
    return false;
  Slot& s = slots_[slot];
  s.gen += 1;  // odd -> even: freed; the priority entry is now stale
  s.cb.reset();
  free_.push_back(slot);
  --live_;
  return true;
}

EventQueue::Callback EventQueue::take_slot(const HeapEntry& e) {
  Slot& s = slots_[e.slot];
  Callback cb = std::move(s.cb);
  // odd -> even: freed before the callback runs, so the event cannot
  // cancel itself and its slot is immediately reusable.
  s.gen += 1;
  free_.push_back(e.slot);
  --live_;
  return cb;
}

void EventQueue::execute(const HeapEntry& e) {
  assert(e.time >= now_);
  now_ = e.time;
  Callback cb = take_slot(e);
  ++executed_;
  cb();
}

bool EventQueue::step() {
  if (kernel_ == EventKernel::kHeap) return step_heap();
  return step_calendar();
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  if (kernel_ == EventKernel::kHeap) return run_heap(limit);
  return run_calendar(limit);
}

std::uint64_t EventQueue::run_until(SimTime until) {
  if (kernel_ == EventKernel::kHeap) return run_until_heap(until);
  return run_until_calendar(until);
}

// ---------------------------------------------------------------------------
// Heap kernel.

bool EventQueue::step_heap() {
  while (!heap_.empty()) {
    const HeapEntry e = heap_.front();
    pop_root(heap_);
    if (stale(e)) continue;  // cancelled
    execute(e);
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run_heap(std::uint64_t limit) {
  std::uint64_t count = 0;
  while ((limit == 0 || count < limit) && step_heap()) ++count;
  return count;
}

std::uint64_t EventQueue::run_until_heap(SimTime until) {
  std::uint64_t count = 0;
  while (!heap_.empty()) {
    const HeapEntry e = heap_.front();
    if (stale(e)) {  // cancelled, drop silently
      pop_root(heap_);
      continue;
    }
    if (e.time > until) break;
    pop_root(heap_);
    execute(e);
    ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

void EventQueue::sift_up(std::vector<HeapEntry>& h, std::size_t i) const {
  const HeapEntry e = h[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = e;
}

void EventQueue::sift_down(std::vector<HeapEntry>& h, std::size_t i) const {
  const HeapEntry e = h[i];
  const std::size_t n = h.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(h[c], h[best])) best = c;
    if (!earlier(h[best], e)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = e;
}

void EventQueue::pop_root(std::vector<HeapEntry>& h) const {
  h.front() = h.back();
  h.pop_back();
  if (!h.empty()) sift_down(h, 0);
}

// ---------------------------------------------------------------------------
// Calendar kernel (circular).
//
// Ordering invariants the batched dispatch rests on:
//
//  1. An entry stored unclamped sits at its absolute bucket B(t), whose
//     window [start(B), start(B+1)) contains t (insertion snaps to the
//     canonical boundaries, so floating-point rounding cannot leak an
//     entry across an edge).
//  2. An entry clamped *up* to the cursor (t already inside or before
//     the cursor's window) is due immediately, so the next scan of the
//     cursor bucket always consumes it: the cursor never advances past
//     a bucket holding a due entry.
//  3. Bucket residents are strictly earlier than every ladder entry:
//     inserts at or past the ladder minimum are routed to the ladder
//     (equal times must go there too — the ladder may hold an
//     equal-time entry with a smaller seq), and the ladder minimum
//     never decreases, so the invariant survives rebuilds that widen
//     the bucketed horizon.
//
// Together these mean the due slice of the first eligible cursor bucket
// is exactly the global minimum run: everything else in buckets is at
// or past the next bucket boundary, and everything in the ladder is
// later still. Sorting that slice by (time, seq) yields dispatch order
// identical to the heap kernel's.

void EventQueue::insert_entry(const HeapEntry& e) {
  // An insert that undercuts the pending tail of the batch belongs *in*
  // the batch: it precedes everything outside it (bucket residents are
  // at or past the next boundary, which is past the batch tail), so an
  // ordered insert preserves the exact dispatch order. Equal times take
  // the bucket path: the new entry's seq is larger than every batched
  // seq, so it belongs after the batch.
  if (batch_pos_ < batch_.size() && e.time < batch_limit_) {
    batch_.insert(
        std::upper_bound(batch_.begin() + batch_pos_, batch_.end(), e,
                         earlier),
        e);
    return;
  }
  if (!ladder_.empty() && e.time >= ladder_.front().time) {
    ladder_.push_back(e);
    sift_up(ladder_, ladder_.size() - 1);
    return;
  }
  place_in_bucket(e);
}

void EventQueue::place_in_bucket(const HeapEntry& e) {
  std::uint64_t idx = cursor_;
  if (e.time > epoch_) {
    const double raw = (e.time - epoch_) * inv_width_;
    if (raw >= kMaxBucketIndex) {  // beyond index precision: overflow
      ladder_.push_back(e);
      sift_up(ladder_, ladder_.size() - 1);
      return;
    }
    idx = static_cast<std::uint64_t>(raw);
    // Snap to the canonical boundaries so bucket j holds exactly
    // [start(j), start(j+1)); the multiply can round across an edge.
    while (e.time >= bucket_start(idx + 1)) ++idx;
    while (idx > 0 && e.time < bucket_start(idx)) --idx;
    // Times at or before the cursor's window land in the cursor bucket;
    // they are due immediately and consumed by the next scan.
    if (idx < cursor_) idx = cursor_;
  }
  buckets_[idx & mask_].push_back(e);
  ++in_buckets_;
  if (!rebuilding_ && in_buckets_ > kGrowOccupancy * nbuckets_)
    rebuild(nbuckets_ * 2);
}

std::uint64_t EventQueue::abs_bucket_of(SimTime t) const {
  if (t <= epoch_) return 0;
  std::uint64_t idx = static_cast<std::uint64_t>((t - epoch_) * inv_width_);
  while (t >= bucket_start(idx + 1)) ++idx;
  while (idx > 0 && t < bucket_start(idx)) --idx;
  return idx;
}

void EventQueue::rebuild(std::size_t new_nbuckets) {
  rebuilding_ = true;
  scratch_.clear();
  for (std::vector<HeapEntry>& b : buckets_) {
    for (const HeapEntry& e : b)
      if (!stale(e)) scratch_.push_back(e);
    b.clear();
  }
  in_buckets_ = 0;
  pops_since_rebuild_ = 0;
  nbuckets_ = new_nbuckets;
  mask_ = nbuckets_ - 1;
  if (buckets_.size() < nbuckets_) buckets_.resize(nbuckets_);

  // Re-anchor the epoch at the earliest live entry and re-estimate the
  // width so the live population spreads out at the batch-friendly
  // target occupancy. A degenerate span (all entries at one instant)
  // keeps the old width: no finite width can separate them, and they
  // dispatch as a single sorted batch anyway.
  double lo = now_;
  if (!scratch_.empty()) {
    lo = scratch_.front().time;
    double hi = lo;
    for (const HeapEntry& e : scratch_) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    const double span = hi - lo;
    if (span > 0.0) {
      const double w = kWidthEventsPerBucket * span /
                       static_cast<double>(scratch_.size());
      if (std::isfinite(w) && w > 0.0) {
        width_ = w;
        inv_width_ = 1.0 / w;
      }
    }
  }
  epoch_ = lo;
  cursor_ = 0;
  // Re-place through insert_entry: a narrower width can push an entry
  // past the precision horizon (overflow routing), and the ladder-min
  // routing keeps invariant 3 — bucket residents are strictly earlier
  // than the ladder, so no scratch entry can tie with the ladder front
  // except one the overflow drain just popped, which the heap reorders
  // correctly by (time, seq) if it bounces back.
  for (const HeapEntry& e : scratch_) insert_entry(e);
  rebuilding_ = false;
}

void EventQueue::maybe_shrink() {
  // Occupancy has fallen an order of magnitude below target: halve.
  // Rate-limited so a transient dip cannot thrash the geometry.
  if (nbuckets_ > kMinBuckets && in_buckets_ < nbuckets_ &&
      pops_since_rebuild_ > nbuckets_)
    rebuild(nbuckets_ / 2);
}

bool EventQueue::drain_overflow() {
  while (!ladder_.empty() && stale(ladder_.front())) pop_root(ladder_);
  if (ladder_.empty()) return false;
  // Only stale husks can remain in the buckets here; drop them wholesale.
  if (in_buckets_ > 0) {
    for (std::vector<HeapEntry>& b : buckets_) b.clear();
    in_buckets_ = 0;
  }
  epoch_ = ladder_.front().time;
  cursor_ = 0;
  // Move entries inside the new precision horizon into buckets, in heap
  // order. place_in_bucket bypasses insert_entry's ladder-min routing:
  // a popped entry may tie the new front's time with a smaller seq and
  // must still land in a bucket (it dispatches first). A grow-rebuild
  // mid-loop can change the geometry; the conditions re-read it.
  for (;;) {
    while (!ladder_.empty() && stale(ladder_.front())) pop_root(ladder_);
    if (ladder_.empty()) break;
    const HeapEntry e = ladder_.front();
    if (e.time > epoch_ && (e.time - epoch_) * inv_width_ >= kMaxBucketIndex)
      break;  // still beyond the horizon; stays in the ladder
    pop_root(ladder_);
    place_in_bucket(e);
  }
  return true;
}

bool EventQueue::refill_batch() {
  batch_.clear();
  batch_pos_ = 0;
  if (live_ == 0) return false;  // exact: executed/cancelled all decrement
  for (;;) {
    // One full wrap visits every residue, i.e. every stored entry.
    double min_future = std::numeric_limits<double>::infinity();
    for (std::size_t scanned = 0; scanned < nbuckets_; ++scanned) {
      std::vector<HeapEntry>& b = buckets_[cursor_ & mask_];
      if (!b.empty()) {
        const double deadline = bucket_start(cursor_ + 1);
        std::size_t keep = 0;
        for (std::size_t i = 0; i < b.size(); ++i) {
          const HeapEntry e = b[i];
          if (stale(e)) continue;  // cancelled: reclaim lazily
          if (e.time < deadline) {
            batch_.push_back(e);  // due in this bucket's window
            continue;
          }
          if (e.time < min_future) min_future = e.time;
          b[keep++] = e;  // future wrap of this residue: stays put
        }
        in_buckets_ -= b.size() - keep;
        b.resize(keep);
      }
      ++cursor_;
      if (!batch_.empty()) {
        std::sort(batch_.begin(), batch_.end(), earlier);
        batch_limit_ = batch_.back().time;
        pops_since_rebuild_ += batch_.size();
        maybe_shrink();  // safe: the batch is already extracted
        return true;
      }
    }
    if (min_future == std::numeric_limits<double>::infinity()) {
      // Nothing lives in any bucket; live_ > 0 means the overflow
      // ladder holds everything that remains.
      if (!drain_overflow()) return false;
    } else {
      // A whole empty year: jump the cursor straight to the earliest
      // live entry's bucket. The jump is always forward — an entry that
      // survived a scan is at least a full wrap ahead of it.
      cursor_ = abs_bucket_of(min_future);
    }
  }
}

bool EventQueue::step_calendar() {
  for (;;) {
    if (batch_pos_ >= batch_.size() && !refill_batch()) return false;
    const HeapEntry e = batch_[batch_pos_++];
    if (stale(e)) continue;  // cancelled after batching
    execute(e);
    return true;
  }
}

std::uint64_t EventQueue::run_calendar(std::uint64_t limit) {
  std::uint64_t count = 0;
  while (limit == 0 || count < limit) {
    if (batch_pos_ >= batch_.size() && !refill_batch()) break;
    const HeapEntry e = batch_[batch_pos_++];
    if (stale(e)) continue;  // cancelled after batching
    execute(e);
    ++count;
  }
  return count;
}

std::uint64_t EventQueue::run_until_calendar(SimTime until) {
  std::uint64_t count = 0;
  for (;;) {
    if (batch_pos_ >= batch_.size() && !refill_batch()) break;
    const HeapEntry e = batch_[batch_pos_];
    if (stale(e)) {  // cancelled after batching
      ++batch_pos_;
      continue;
    }
    if (e.time > until) break;  // stays batched for the next call
    ++batch_pos_;
    execute(e);
    ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace raidsim
