#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace raidsim {

namespace {

constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

EventId EventQueue::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.gen += 1;  // even -> odd: occupied
  s.cb = std::move(cb);

  heap_.push_back(HeapEntry{when, seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(slot, s.gen);
}

EventId EventQueue::schedule_in(SimTime delay, Callback cb) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen || (gen & 1u) == 0)
    return false;
  Slot& s = slots_[slot];
  s.gen += 1;  // odd -> even: freed; the heap entry is now stale
  s.cb.reset();
  free_.push_back(slot);
  --live_;
  return true;
}

EventQueue::Callback EventQueue::take_slot(const HeapEntry& e) {
  Slot& s = slots_[e.slot];
  Callback cb = std::move(s.cb);
  // odd -> even: freed before the callback runs, so the event cannot
  // cancel itself and its slot is immediately reusable.
  s.gen += 1;
  free_.push_back(e.slot);
  --live_;
  return cb;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const HeapEntry e = heap_.front();
    pop_root();
    if (stale(e)) continue;  // cancelled
    assert(e.time >= now_);
    now_ = e.time;
    Callback cb = take_slot(e);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t count = 0;
  while ((limit == 0 || count < limit) && step()) ++count;
  return count;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t count = 0;
  while (!heap_.empty()) {
    const HeapEntry e = heap_.front();
    if (stale(e)) {  // cancelled, drop silently
      pop_root();
      continue;
    }
    if (e.time > until) break;
    pop_root();
    assert(e.time >= now_);
    now_ = e.time;
    Callback cb = take_slot(e);
    ++executed_;
    cb();
    ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

}  // namespace raidsim
