#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace raidsim {

/// Why a cooperative cancellation was requested. The first request wins;
/// later requests with a different reason are ignored, so the reported
/// reason is always the one that actually stopped the run.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline,   // per-job deadline expired
  kWatchdog,   // supervisor declared the job stuck
  kShutdown,   // service drain cancelled in-flight work
  kClient,     // explicit caller request
};

const char* to_string(CancelReason reason);

/// Cooperative cancellation flag shared between a controller thread (the
/// service supervisor, a test harness) and a running simulation. The
/// simulation polls `cancelled()` at event-batch boundaries -- a relaxed
/// atomic load, so the check costs nothing on the replay hot path -- and
/// unwinds with CancelledError when it fires. Tokens are reusable across
/// sequential runs via reset(), but must outlive any run holding them.
class CancelToken {
 public:
  /// Request cancellation. Only the first reason sticks.
  void cancel(CancelReason reason = CancelReason::kClient) {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason));
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Re-arm for another run. Only safe between runs.
  void reset() { reason_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint8_t> reason_{0};
};

/// Thrown out of Simulator/ShardedSimulator::run when the attached token
/// fires. Partially-simulated state is discarded by normal destruction;
/// no metrics are produced.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(std::string("simulation cancelled: ") +
                           to_string(reason)),
        reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

inline const char* to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kWatchdog: return "watchdog";
    case CancelReason::kShutdown: return "shutdown";
    case CancelReason::kClient: return "client";
  }
  return "unknown";
}

}  // namespace raidsim
