#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace raidsim {

/// Simulation time in milliseconds since the start of the run.
using SimTime = double;

/// Opaque handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Discrete-event simulation kernel. Events are (time, callback) pairs;
/// ties are broken by schedule order so that runs are fully deterministic.
/// Cancellation is lazy: cancelled ids are skipped on pop.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (clamped to now()).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` `delay` ms from now.
  EventId schedule_in(SimTime delay, Callback cb);

  /// Cancel a pending event. Returns true if it had not yet run or been
  /// cancelled; cancelling an already-run or unknown id is a no-op.
  bool cancel(EventId id);

  /// True when no runnable (non-cancelled) events remain.
  bool empty() const { return live_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_.size(); }

  /// Run the next event; returns false if none remain.
  bool step();

  /// Run until the queue drains or `limit` events have executed
  /// (limit == 0 means unbounded). Returns the number executed.
  std::uint64_t run(std::uint64_t limit = 0);

  /// Run events until simulation time would exceed `until`; events at
  /// exactly `until` are executed, and now() advances to `until`.
  /// Returns the number executed.
  std::uint64_t run_until(SimTime until);

  /// Total events executed over the lifetime of the queue.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;  // scheduled, not yet run or cancelled
};

}  // namespace raidsim
