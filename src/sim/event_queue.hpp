#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_callback.hpp"
#include "util/arena.hpp"

namespace raidsim {

/// Simulation time in milliseconds since the start of the run.
using SimTime = double;

/// Completion continuation threaded through the controller/channel/disk
/// stack (the `done` / `on_complete` parameters). Inline storage is sized
/// for the largest hot-path capture -- the simulator's host-completion
/// lambda (a `this`, a few scalars, and a wrapped host callback) -- so
/// the per-request completion chain performs zero heap allocations;
/// larger captures fall back to one allocation, like std::function.
using Completion = SmallFunction<void(SimTime), 80>;

/// Power-fail continuation of a disk write: invoked instead of the
/// completion when a crash kills the op, with the durable leading-block
/// count. Captures are small (an op-state handle or a `this` + extent).
using PowerFail = SmallFunction<void(SimTime, int), 48>;

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Never zero, so zero is a safe "no event" sentinel for callers.
using EventId = std::uint64_t;

/// Which priority structure backs an EventQueue. Both kernels produce
/// bit-identical executions (ordering is decided solely by exact
/// (time, seq) comparisons); they differ only in speed. The calendar is
/// the default; the heap is retained as the differential-testing
/// yardstick and as a fallback for adversarial time distributions.
enum class EventKernel {
  kCalendar,  ///< Circular bucketed calendar, O(1) amortized.
  kHeap,      ///< Indexed 4-ary min-heap, O(log n), distribution-immune.
};

const char* to_string(EventKernel kernel);

/// Discrete-event simulation kernel. Events are (time, callback) pairs;
/// ties are broken by schedule order so that runs are fully deterministic.
///
/// Two interchangeable priority structures sit over a shared slot table
/// holding the callbacks:
///
///  - **Circular calendar queue** (default): an event at time t has the
///    absolute bucket index B(t) = floor((t - epoch_) / width_) and is
///    stored at B(t) mod nbuckets_ — buckets wrap around like days of a
///    calendar year. An in-horizon schedule is therefore O(1): one
///    multiply plus a push_back, no heap sift. The dispatch cursor walks
///    absolute indices; a bucket scan consumes the entries due in the
///    cursor's time window [start(B), start(B+1)) and leaves future-year
///    residents in place (an entry is re-scanned once per wrap, and a
///    wrap covers the whole live population's span, so that is O(1)
///    amortized). When a full wrap finds nothing due, the cursor jumps
///    straight to the bucket of the earliest live entry. The bucket
///    count and width resize automatically on occupancy. A tiny 4-ary
///    "overflow ladder" heap holds only events beyond 2^52 bucket
///    widths, where absolute indices would lose integer precision —
///    unreachable in simulation workloads.
///  - **4-ary indexed min-heap**: the PR-3 kernel, kept as the
///    differential yardstick.
///
/// Slots are reused through a free list and generation-tagged, so
/// liveness/cancellation checks are a single integer compare (no
/// hash-set lookups), and the callback storage is inline
/// (InlineCallback), so the common schedule path allocates nothing.
/// Cancellation is lazy in the priority structure (stale entries are
/// dropped on pop or bucket scan) but eager in the slot table: the
/// callback is destroyed and its slot recycled immediately, which keeps
/// pending()/empty() exact under any cancellation pattern.
///
/// Dispatch is **batched**: the due slice of the cursor bucket is
/// drained into a sorted batch and executed without re-touching the
/// priority structure per event (the batch persists across
/// step()/run()/run_until() calls, so single-stepped drains get the
/// same amortization). A callback that schedules work *earlier* than
/// the batch tail is ordered-inserted directly into the batch — any
/// such event provably precedes everything outside the batch — so the
/// exact (time, seq) order is always preserved.
class EventQueue {
 public:
  using Callback = InlineCallback;

  explicit EventQueue(EventKernel kernel = EventKernel::kCalendar,
                      OpAlloc op_alloc = OpAlloc::kArena);

  EventKernel kernel() const { return kernel_; }

  /// Per-engine allocator for op state (util/arena.hpp). Owned here so
  /// every OpRef captured in a pending callback is freed before the
  /// arena dies: arena_ is the first member, hence destroyed last.
  OpArena& op_arena() { return arena_; }

  /// Pre-size the slot table (and heap, for the heap kernel) for an
  /// expected number of concurrently pending events. Purely an
  /// allocation warm-up; per-shard engines call this so steady-state
  /// scheduling never touches the global allocator.
  void reserve(std::size_t expected_pending);

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (clamped to now()).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` `delay` ms from now.
  EventId schedule_in(SimTime delay, Callback cb);

  /// Cancel a pending event. Returns true if it had not yet run or been
  /// cancelled; cancelling an already-run or unknown id is a no-op.
  bool cancel(EventId id);

  /// True when no runnable (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  /// Run the next event; returns false if none remain.
  bool step();

  /// Run until the queue drains or `limit` events have executed
  /// (limit == 0 means unbounded). Returns the number executed.
  std::uint64_t run(std::uint64_t limit = 0);

  /// Run events until simulation time would exceed `until`; events at
  /// exactly `until` are executed, and now() advances to `until`.
  /// Returns the number executed.
  std::uint64_t run_until(SimTime until);

  /// Total events executed over the lifetime of the queue.
  std::uint64_t executed() const { return executed_; }

  /// Calendar geometry constants, public so boundary tests can place
  /// events exactly on bucket and year edges.
  static constexpr std::size_t kMinBuckets = 32;
  static constexpr double kInitialBucketWidthMs = 1.0;

  /// Current bucket width (ms). Test/introspection only; changes as the
  /// calendar resizes. Meaningless for the heap kernel.
  double bucket_width() const { return width_; }
  std::size_t bucket_count() const { return nbuckets_; }

 private:
  static constexpr std::size_t kArity = 4;

  /// Priority entries carry everything the ordering needs by value, so
  /// moving them between buckets/heap never touches the slot table.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;   // schedule order; FIFO tie-break at equal times
    std::uint32_t slot;
    std::uint32_t gen;   // must match the slot's generation to be live
  };

  /// Generation protocol: a slot's generation is odd while an event
  /// occupies it and even while it is free. Scheduling bumps it odd (the
  /// id captures that value); cancel/execute bumps it even, so any stale
  /// id or priority entry mis-compares in O(1).
  struct Slot {
    std::uint32_t gen = 0;
    Callback cb;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Shared slot machinery.
  HeapEntry new_entry(SimTime when, Callback cb);
  /// Retire the live event behind `e` (slot freed, callback moved out).
  Callback take_slot(const HeapEntry& e);
  bool stale(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }
  void execute(const HeapEntry& e);

  // 4-ary min-heap primitives, shared by the heap kernel (over heap_)
  // and the calendar's far-future ladder (over ladder_).
  void sift_up(std::vector<HeapEntry>& h, std::size_t i) const;
  void sift_down(std::vector<HeapEntry>& h, std::size_t i) const;
  void pop_root(std::vector<HeapEntry>& h) const;

  // Heap kernel.
  bool step_heap();
  std::uint64_t run_heap(std::uint64_t limit);
  std::uint64_t run_until_heap(SimTime until);

  // Calendar kernel. Bucket indices are *absolute* (bucket j covers
  // [start(j), start(j+1)) for all time); storage wraps at j & mask_.
  double bucket_start(std::uint64_t j) const {
    return epoch_ + width_ * static_cast<double>(j);
  }
  /// Absolute bucket index of time t, snapped to the canonical bucket
  /// boundaries (the multiply can round across an edge).
  std::uint64_t abs_bucket_of(SimTime t) const;
  void insert_entry(const HeapEntry& e);
  /// Bucket placement without the batch/overflow routing of
  /// insert_entry; used when redistributing entries that are already
  /// ordered correctly relative to the ladder.
  void place_in_bucket(const HeapEntry& e);
  /// Scan buckets in cursor order and move the due slice of the first
  /// eligible one into batch_, sorted. Returns false when nothing
  /// remains anywhere.
  bool refill_batch();
  /// Re-anchor the epoch at the overflow-ladder minimum and move the
  /// now-representable entries into buckets. Pre: buckets hold no live
  /// entries. Returns false if the ladder is empty too.
  bool drain_overflow();
  void rebuild(std::size_t new_nbuckets);
  void maybe_shrink();
  bool step_calendar();
  std::uint64_t run_calendar(std::uint64_t limit);
  std::uint64_t run_until_calendar(SimTime until);

  OpArena arena_;  // must precede everything that can hold OpRefs
  EventKernel kernel_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;

  // Heap kernel state.
  std::vector<HeapEntry> heap_;

  // Calendar kernel state.
  std::vector<std::vector<HeapEntry>> buckets_;
  std::vector<HeapEntry> ladder_;   // overflow only: t beyond 2^52 buckets
  std::vector<HeapEntry> scratch_;  // rebuild staging, capacity reused
  double width_ = kInitialBucketWidthMs;
  double inv_width_ = 1.0 / kInitialBucketWidthMs;
  double epoch_ = 0.0;           // time of absolute bucket 0
  std::size_t nbuckets_ = 0;     // always a power of two
  std::size_t mask_ = 0;         // nbuckets_ - 1
  std::uint64_t cursor_ = 0;     // absolute index of the current bucket
  std::size_t in_buckets_ = 0;   // entries resident in buckets (incl. stale)
  std::uint64_t pops_since_rebuild_ = 0;
  bool rebuilding_ = false;

  // Batched-dispatch state. The batch persists across public calls:
  // step()/run()/run_until() all dispatch from it, refilling a bucket's
  // due slice at a time. Entries not yet dispatched live here instead of
  // in a bucket; cancellation still works through the slot generations.
  std::vector<HeapEntry> batch_;
  std::size_t batch_pos_ = 0;
  double batch_limit_ = 0.0;  // max time in batch; valid iff batch nonempty
};

}  // namespace raidsim
