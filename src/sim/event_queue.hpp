#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_callback.hpp"

namespace raidsim {

/// Simulation time in milliseconds since the start of the run.
using SimTime = double;

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Never zero, so zero is a safe "no event" sentinel for callers.
using EventId = std::uint64_t;

/// Discrete-event simulation kernel. Events are (time, callback) pairs;
/// ties are broken by schedule order so that runs are fully deterministic.
///
/// Implementation: an indexed 4-ary min-heap of 24-byte entries over a
/// slot table holding the callbacks. Slots are reused through a free list
/// and generation-tagged, so liveness/cancellation checks are a single
/// integer compare (no hash-set lookups), and the callback storage is
/// inline (InlineCallback), so the common schedule path allocates nothing.
/// Cancellation is lazy in the heap (stale entries are dropped on pop)
/// but eager in the slot table: the callback is destroyed and its slot
/// recycled immediately.
class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (clamped to now()).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` `delay` ms from now.
  EventId schedule_in(SimTime delay, Callback cb);

  /// Cancel a pending event. Returns true if it had not yet run or been
  /// cancelled; cancelling an already-run or unknown id is a no-op.
  bool cancel(EventId id);

  /// True when no runnable (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  /// Run the next event; returns false if none remain.
  bool step();

  /// Run until the queue drains or `limit` events have executed
  /// (limit == 0 means unbounded). Returns the number executed.
  std::uint64_t run(std::uint64_t limit = 0);

  /// Run events until simulation time would exceed `until`; events at
  /// exactly `until` are executed, and now() advances to `until`.
  /// Returns the number executed.
  std::uint64_t run_until(SimTime until);

  /// Total events executed over the lifetime of the queue.
  std::uint64_t executed() const { return executed_; }

 private:
  static constexpr std::size_t kArity = 4;

  /// Heap entries carry everything the ordering needs by value, so
  /// reheapification never touches the slot table.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;   // schedule order; FIFO tie-break at equal times
    std::uint32_t slot;
    std::uint32_t gen;   // must match the slot's generation to be live
  };

  /// Generation protocol: a slot's generation is odd while an event
  /// occupies it and even while it is free. Scheduling bumps it odd (the
  /// id captures that value); cancel/execute bumps it even, so any stale
  /// id or heap entry mis-compares in O(1).
  struct Slot {
    std::uint32_t gen = 0;
    Callback cb;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_root();
  /// Retire the live event behind `e` (slot freed, callback moved out).
  Callback take_slot(const HeapEntry& e);
  bool stale(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace raidsim
