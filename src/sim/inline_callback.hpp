#pragma once

#include "sim/small_function.hpp"

namespace raidsim {

/// Move-only `void()` callable with inline storage — the event kernel's
/// callback type. Sized to hold the pump/dispatch lambdas (this +
/// TraceRecord + stream pointer, or this + time + continuation) without
/// touching the heap. An alias of the general SmallFunction template; the
/// disk layer uses wider signatures of the same machinery for per-request
/// completion callbacks.
using InlineCallback = SmallFunction<void()>;

}  // namespace raidsim
