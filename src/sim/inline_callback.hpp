#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace raidsim {

/// Move-only `void()` callable with inline storage. The event kernel's
/// schedule path stores callbacks in slot memory it owns; captures up to
/// kInlineBytes (enough for the simulator's completion lambdas, which
/// carry a `this`, a few scalars, and a std::function continuation) live
/// in the slot itself, so the common schedule path performs zero heap
/// allocations. Larger callables fall back to one heap allocation, same
/// as std::function.
class InlineCallback {
 public:
  /// Sized to hold the pump/dispatch lambdas (this + TraceRecord +
  /// stream pointer, or this + time + std::function continuation).
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &SmallOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &BigOps<Fn>::ops;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(buf_, other.buf_);
    other.ops_ = nullptr;
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct SmallOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct BigOps {
    static Fn* get(void* p) { return *static_cast<Fn**>(p); }
    static void invoke(void* p) { (*get(p))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) Fn*(get(src));
    }
    static void destroy(void* p) { delete get(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace raidsim
