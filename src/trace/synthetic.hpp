#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/lru_stack.hpp"
#include "trace/record.hpp"
#include "util/mixture.hpp"
#include "util/rng.hpp"

namespace raidsim {

/// Tunable statistical profile of a synthetic OLTP I/O trace. The two
/// presets reproduce the published characteristics of the paper's
/// proprietary DB2 traces (Table 2 plus the skew/locality properties
/// described in Sections 3.1 and 4.3):
///
///  * trace1(): 130 data disks, 3hr3min, 3.36 M requests, 10% writes,
///    98% single-block, moderate disk skew, high temporal locality
///    (read hit ratio ~9% at 8 MB/array rising to ~54% at 256 MB/array;
///    write hit ratio near 1 because blocks are read before update).
///  * trace2(): 10 data disks, 1hr40min, 69.5 k requests, 28% writes,
///    95% single-block, heavy disk skew, weak locality with large
///    working sets (read hit < 1% at 8 MB, ~40% at 256 MB; write hit
///    20% -> 60%).
struct TraceProfile {
  std::string name = "custom";
  TraceGeometry geometry;
  double duration_s = 6000.0;
  std::uint64_t requests = 100000;

  // Request mix.
  double single_write_fraction = 0.10;  // writes among single-block requests
  double multi_write_fraction = 0.34;   // writes among multiblock requests
  double multiblock_fraction = 0.02;    // multiblock requests
  double multiblock_mean_blocks = 16.0;
  int multiblock_max_blocks = 64;

  // Temporal locality: probability that an access reuses a block from the
  // LRU stack, and the stack-depth distribution of such reuses.
  double read_reuse_prob = 0.6;
  LognormalMixture read_depth{{{1.0, 12000.0, 1.8}}};
  double write_reuse_prob = 0.95;
  LognormalMixture write_depth{{{1.0, 1000.0, 1.5}}};

  // Disk access skew: per-disk weights drawn from lognormal(0, sigma).
  double disk_skew_sigma = 0.8;

  // Spatial locality within a disk: probability that a fresh (non-reuse)
  // access continues the current sequential run, and the hot-zone profile
  // for new run starts.
  double sequential_prob = 0.3;
  int zones_per_disk = 64;
  double zone_zipf_theta = 0.6;

  // Arrival process: transactions issue bursts of closely spaced I/Os.
  // OLTP arrivals are highly bursty; the burst intensity (together with
  // the disk skew) determines how much queueing the trace produces, which
  // drives the paper's load-balancing effects.
  double burst_mean_requests = 4.0;
  double intra_burst_gap_ms = 2.0;
  /// Probability that a fresh access within a burst targets the same
  /// original disk as the previous one (transactions touch related data).
  double burst_disk_affinity = 0.0;
  /// Bursts arrive in clusters (busy periods): a cluster contains a
  /// geometric number of bursts separated by `intra_cluster_gap_ms`;
  /// clusters are separated by idle gaps computed so the trace fills its
  /// duration. cluster_mean_bursts == 1 disables clustering.
  double cluster_mean_bursts = 1.0;
  double intra_cluster_gap_ms = 5.0;

  std::uint64_t seed = 42;

  /// Mean arrival rate implied by `requests` and `duration_s` (IO/s).
  double arrival_rate_per_s() const {
    return static_cast<double>(requests) / duration_s;
  }

  /// Preset matching the paper's Trace 1 (large installation).
  static TraceProfile trace1();
  /// Preset matching the paper's Trace 2 (small installation).
  static TraceProfile trace2();
  /// Preset lookup by name ("trace1"/"trace2").
  static TraceProfile by_name(const std::string& name);
};

/// Synthetic trace generator: a TraceStream producing `profile.requests`
/// records whose aggregate statistics match the profile. Deterministic
/// for a fixed seed.
class SyntheticTrace : public TraceStream {
 public:
  explicit SyntheticTrace(TraceProfile profile);

  const TraceGeometry& geometry() const override {
    return profile_.geometry;
  }
  std::optional<TraceRecord> next() override;
  std::uint64_t size_hint() const override {
    return profile_.requests - emitted_;
  }

  const TraceProfile& profile() const { return profile_; }

 private:
  std::int64_t pick_block(bool is_write, int count);
  std::int64_t fresh_block(int count);

  TraceProfile profile_;
  Rng rng_;
  LruStack stack_;
  std::unique_ptr<AliasSampler> disk_weights_;
  std::unique_ptr<ZipfSampler> zone_sampler_;
  std::vector<std::int64_t> cursor_;       // per-disk sequential cursor
  std::uint64_t emitted_ = 0;
  std::uint64_t burst_remaining_ = 0;
  std::uint64_t cluster_bursts_remaining_ = 0;
  double inter_cluster_gap_ms_ = 0.0;
  int last_disk_ = -1;
  bool in_burst_ = false;
};

}  // namespace raidsim
