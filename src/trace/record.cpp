#include "trace/record.hpp"

#include <algorithm>
#include <stdexcept>

namespace raidsim {

SpeedAdapter::SpeedAdapter(std::unique_ptr<TraceStream> inner, double speed)
    : inner_(std::move(inner)), speed_(speed) {
  if (!inner_) throw std::invalid_argument("SpeedAdapter: null stream");
  if (speed <= 0.0) throw std::invalid_argument("SpeedAdapter: speed <= 0");
}

std::optional<TraceRecord> SpeedAdapter::next() {
  auto rec = inner_->next();
  if (rec) rec->delta_ms /= speed_;
  return rec;
}

PrefixAdapter::PrefixAdapter(std::unique_ptr<TraceStream> inner,
                             std::uint64_t limit)
    : inner_(std::move(inner)), remaining_(limit) {
  if (!inner_) throw std::invalid_argument("PrefixAdapter: null stream");
}

std::optional<TraceRecord> PrefixAdapter::next() {
  if (remaining_ == 0) return std::nullopt;
  --remaining_;
  return inner_->next();
}

std::uint64_t PrefixAdapter::size_hint() const {
  const std::uint64_t inner = inner_->size_hint();
  return inner == 0 ? remaining_ : std::min(inner, remaining_);
}

}  // namespace raidsim
