#include "trace/lru_stack.hpp"

#include <cassert>

namespace raidsim {

LruStack::LruStack(std::size_t initial_slots)
    : capacity_(initial_slots < 16 ? 16 : initial_slots),
      live_(capacity_),
      block_at_slot_(capacity_, -1) {}

void LruStack::touch(std::int64_t block) {
  if (next_slot_ == capacity_) compact();
  auto it = slot_of_.find(block);
  if (it != slot_of_.end()) {
    live_.add(it->second, -1);
    block_at_slot_[it->second] = -1;
    it->second = next_slot_;
  } else {
    slot_of_.emplace(block, next_slot_);
  }
  block_at_slot_[next_slot_] = block;
  live_.add(next_slot_, +1);
  ++next_slot_;
}

std::optional<std::int64_t> LruStack::at_depth(std::size_t d) const {
  const std::size_t n = slot_of_.size();
  if (d >= n) return std::nullopt;
  // Depth d from the top == rank (n - d) from the bottom.
  const auto rank = static_cast<std::int64_t>(n - d);
  const std::size_t slot = live_.select(rank);
  assert(block_at_slot_[slot] >= 0);
  return block_at_slot_[slot];
}

std::optional<std::size_t> LruStack::depth_of(std::int64_t block) const {
  auto it = slot_of_.find(block);
  if (it == slot_of_.end()) return std::nullopt;
  // Number of live slots strictly above (newer than) this one.
  const std::int64_t newer =
      live_.total() - live_.prefix_sum(it->second);
  return static_cast<std::size_t>(newer);
}

void LruStack::compact() {
  // Rebuild the slot array with live blocks packed in stack order.
  const std::size_t n = slot_of_.size();
  std::size_t new_capacity = capacity_;
  while (new_capacity < 2 * n + 16) new_capacity *= 2;

  std::vector<std::int64_t> packed;
  packed.reserve(n);
  for (std::size_t slot = 0; slot < capacity_; ++slot) {
    if (block_at_slot_[slot] >= 0) packed.push_back(block_at_slot_[slot]);
  }
  assert(packed.size() == n);

  capacity_ = new_capacity;
  block_at_slot_.assign(capacity_, -1);
  live_.reset(capacity_);
  for (std::size_t i = 0; i < n; ++i) {
    block_at_slot_[i] = packed[i];
    slot_of_[packed[i]] = i;
    live_.add(i, +1);
  }
  next_slot_ = n;
}

}  // namespace raidsim
