#include "trace/lru_stack.hpp"

#include <cassert>

namespace raidsim {

namespace {

std::size_t index_size_for(std::size_t keys) {
  // Power of two holding `keys` at no more than 50% load.
  std::size_t size = 16;
  while (size < 2 * keys) size *= 2;
  return size;
}

}  // namespace

LruStack::LruStack(std::size_t initial_slots)
    : capacity_(initial_slots < 16 ? 16 : initial_slots),
      live_(capacity_),
      block_at_slot_(capacity_, -1),
      index_keys_(index_size_for(capacity_), kEmptyKey),
      index_vals_(index_size_for(capacity_), 0),
      index_mask_(index_size_for(capacity_) - 1) {}

const std::size_t* LruStack::find_slot(std::int64_t block) const {
  std::size_t i = hash_block(block) & index_mask_;
  while (index_keys_[i] != kEmptyKey) {
    if (index_keys_[i] == block) return &index_vals_[i];
    i = (i + 1) & index_mask_;
  }
  return nullptr;
}

void LruStack::insert_slot(std::int64_t block, std::size_t slot) {
  if (2 * (count_ + 1) > index_keys_.size()) grow_table();
  std::size_t i = hash_block(block) & index_mask_;
  while (index_keys_[i] != kEmptyKey) i = (i + 1) & index_mask_;
  index_keys_[i] = block;
  index_vals_[i] = slot;
  ++count_;
}

void LruStack::grow_table() {
  std::vector<std::int64_t> old_keys = std::move(index_keys_);
  std::vector<std::size_t> old_vals = std::move(index_vals_);
  const std::size_t new_size = old_keys.size() * 2;
  index_keys_.assign(new_size, kEmptyKey);
  index_vals_.assign(new_size, 0);
  index_mask_ = new_size - 1;
  for (std::size_t j = 0; j < old_keys.size(); ++j) {
    if (old_keys[j] == kEmptyKey) continue;
    std::size_t i = hash_block(old_keys[j]) & index_mask_;
    while (index_keys_[i] != kEmptyKey) i = (i + 1) & index_mask_;
    index_keys_[i] = old_keys[j];
    index_vals_[i] = old_vals[j];
  }
}

void LruStack::touch(std::int64_t block) {
  assert(block >= 0);
  if (next_slot_ == capacity_) compact();
  if (std::size_t* slot = find_slot(block)) {
    live_.add(*slot, -1);
    block_at_slot_[*slot] = -1;
    *slot = next_slot_;
  } else {
    insert_slot(block, next_slot_);
  }
  block_at_slot_[next_slot_] = block;
  live_.add(next_slot_, +1);
  ++next_slot_;
}

std::optional<std::int64_t> LruStack::at_depth(std::size_t d) const {
  const std::size_t n = count_;
  if (d >= n) return std::nullopt;
  // Depth d from the top == rank (n - d) from the bottom.
  const auto rank = static_cast<std::int64_t>(n - d);
  const std::size_t slot = live_.select(rank);
  assert(block_at_slot_[slot] >= 0);
  return block_at_slot_[slot];
}

std::optional<std::size_t> LruStack::depth_of(std::int64_t block) const {
  const std::size_t* slot = find_slot(block);
  if (!slot) return std::nullopt;
  // Number of live slots strictly above (newer than) this one.
  const std::int64_t newer = live_.total() - live_.prefix_sum(*slot);
  return static_cast<std::size_t>(newer);
}

void LruStack::compact() {
  // Rebuild the slot array with live blocks packed in stack order.
  const std::size_t n = count_;
  std::size_t new_capacity = capacity_;
  while (new_capacity < 2 * n + 16) new_capacity *= 2;

  std::vector<std::int64_t> packed;
  packed.reserve(n);
  for (std::size_t slot = 0; slot < capacity_; ++slot) {
    if (block_at_slot_[slot] >= 0) packed.push_back(block_at_slot_[slot]);
  }
  assert(packed.size() == n);

  capacity_ = new_capacity;
  block_at_slot_.assign(capacity_, -1);
  live_.reset(capacity_);
  for (std::size_t i = 0; i < n; ++i) {
    block_at_slot_[i] = packed[i];
    std::size_t* slot = find_slot(packed[i]);
    assert(slot != nullptr);
    *slot = i;
    live_.add(i, +1);
  }
  next_slot_ = n;
}

}  // namespace raidsim
