#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/fenwick.hpp"

namespace raidsim {

/// LRU stack with O(log n) depth queries, used by the synthetic trace
/// generator to realise a target stack-distance distribution (the
/// standard model of temporal locality: an access at stack distance d
/// hits in any LRU cache of size > d).
///
/// Implementation: each block occupies a timestamp slot; a Fenwick tree
/// counts live slots, so "the block at depth d" is an order-statistics
/// query. The slot array is compacted geometrically, giving amortised
/// O(log n) per operation.
class LruStack {
 public:
  explicit LruStack(std::size_t initial_slots = 4096);

  /// Insert `block` at the top (most recently used), moving it if present.
  void touch(std::int64_t block);

  /// Block at depth d (0 = most recent). nullopt when d >= size().
  std::optional<std::int64_t> at_depth(std::size_t d) const;

  /// Depth of `block`, or nullopt when absent.
  std::optional<std::size_t> depth_of(std::int64_t block) const;

  bool contains(std::int64_t block) const {
    return slot_of_.find(block) != slot_of_.end();
  }

  std::size_t size() const { return slot_of_.size(); }

 private:
  void compact();

  std::size_t capacity_;
  std::size_t next_slot_ = 0;
  FenwickTree live_;
  std::vector<std::int64_t> block_at_slot_;
  std::unordered_map<std::int64_t, std::size_t> slot_of_;
};

}  // namespace raidsim
