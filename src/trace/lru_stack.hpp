#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/fenwick.hpp"

namespace raidsim {

/// LRU stack with O(log n) depth queries, used by the synthetic trace
/// generator to realise a target stack-distance distribution (the
/// standard model of temporal locality: an access at stack distance d
/// hits in any LRU cache of size > d).
///
/// Implementation: each block occupies a timestamp slot; a Fenwick tree
/// counts live slots, so "the block at depth d" is an order-statistics
/// query. The slot array is compacted geometrically, giving amortised
/// O(log n) per operation.
///
/// The block -> slot index is an open-addressed flat table (splitmix64
/// finalizer hash, linear probing, grown at 50% load) rather than
/// std::unordered_map: the stack sits on the trace generator's per-access
/// path, and the node-per-key map made every cold block a heap
/// allocation -- about a quarter of all allocations in a cached-replay
/// run. Keys are never erased (touch only inserts or moves), so the
/// table needs no tombstones.
class LruStack {
 public:
  explicit LruStack(std::size_t initial_slots = 4096);

  /// Insert `block` at the top (most recently used), moving it if present.
  void touch(std::int64_t block);

  /// Block at depth d (0 = most recent). nullopt when d >= size().
  std::optional<std::int64_t> at_depth(std::size_t d) const;

  /// Depth of `block`, or nullopt when absent.
  std::optional<std::size_t> depth_of(std::int64_t block) const;

  bool contains(std::int64_t block) const {
    return find_slot(block) != nullptr;
  }

  std::size_t size() const { return count_; }

 private:
  static constexpr std::int64_t kEmptyKey = -1;

  static std::uint64_t hash_block(std::int64_t block) {
    // splitmix64 finalizer: full-avalanche mix of the block number.
    auto x = static_cast<std::uint64_t>(block);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Pointer to the slot value of `block`, or nullptr when absent.
  const std::size_t* find_slot(std::int64_t block) const;
  std::size_t* find_slot(std::int64_t block) {
    return const_cast<std::size_t*>(
        static_cast<const LruStack*>(this)->find_slot(block));
  }
  /// Insert an absent block (doubling the table at 50% load).
  void insert_slot(std::int64_t block, std::size_t slot);
  void grow_table();

  void compact();

  std::size_t capacity_;
  std::size_t next_slot_ = 0;
  FenwickTree live_;
  std::vector<std::int64_t> block_at_slot_;

  // Open-addressed index: parallel key/value arrays, power-of-two size.
  std::vector<std::int64_t> index_keys_;
  std::vector<std::size_t> index_vals_;
  std::size_t index_mask_;
  std::size_t count_ = 0;
};

}  // namespace raidsim
