#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace raidsim {

/// Aggregate trace characteristics in the shape of the paper's Table 2,
/// plus per-disk access counts (Figures 6 and 7) and simple skew and
/// locality diagnostics.
struct TraceStats {
  TraceGeometry geometry;
  double duration_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t blocks_transferred = 0;
  std::uint64_t single_block_reads = 0;
  std::uint64_t single_block_writes = 0;
  std::uint64_t multiblock_reads = 0;
  std::uint64_t multiblock_writes = 0;
  std::vector<std::uint64_t> accesses_per_disk;

  double write_fraction() const;
  double single_block_fraction() const;
  /// Coefficient of variation of per-disk access counts (skew measure).
  double disk_skew_cv() const;

  /// Consume `stream` and accumulate statistics.
  static TraceStats collect(TraceStream& stream);

  /// Paper-style Table 2 rendering (one column per stats object).
  static std::string table(const std::vector<const TraceStats*>& columns,
                           const std::vector<std::string>& names);
};

}  // namespace raidsim
