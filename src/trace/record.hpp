#pragma once

#include <cstdint>
#include <memory>
#include <optional>

namespace raidsim {

/// One I/O request from a trace. Mirrors the paper's trace format
/// (Section 3.1): absolute database block address, access type, and time
/// since the previous request; multiblock requests are a single record
/// with `block_count` > 1 (equivalent to the paper's chained zero-delta
/// entries).
struct TraceRecord {
  double delta_ms = 0.0;        // time since the previous request
  std::int64_t block = 0;       // absolute database block address
  int block_count = 1;
  bool is_write = false;
};

/// Static description of the traced database (how absolute block
/// addresses decompose into original data disks).
struct TraceGeometry {
  int data_disks = 10;
  std::int64_t blocks_per_disk = 226000;

  std::int64_t total_blocks() const {
    return static_cast<std::int64_t>(data_disks) * blocks_per_disk;
  }
  int disk_of(std::int64_t block) const {
    return static_cast<int>(block / blocks_per_disk);
  }
  std::int64_t offset_of(std::int64_t block) const {
    return block % blocks_per_disk;
  }
};

/// Pull-based stream of trace records.
class TraceStream {
 public:
  virtual ~TraceStream() = default;

  virtual const TraceGeometry& geometry() const = 0;

  /// Next record, or nullopt at end of trace.
  virtual std::optional<TraceRecord> next() = 0;

  /// True when every record this stream will yield has already been
  /// bounds-checked against geometry() (e.g. at binary-trace conversion
  /// time, stamped in the file header). Consumers may then skip their
  /// per-record validation on the replay hot path.
  virtual bool prevalidated() const { return false; }

  /// Number of records this stream will yield, when known up front
  /// (0 = unknown). Purely a pre-sizing hint for replay buffers.
  virtual std::uint64_t size_hint() const { return 0; }
};

/// Adapter scaling the arrival rate (Sections 4.2.4, 4.4.3: "modifying
/// trace speed"). speed > 1 compresses inter-arrival times.
class SpeedAdapter : public TraceStream {
 public:
  SpeedAdapter(std::unique_ptr<TraceStream> inner, double speed);

  const TraceGeometry& geometry() const override {
    return inner_->geometry();
  }
  std::optional<TraceRecord> next() override;
  // Scaling inter-arrival times never moves a block out of bounds.
  bool prevalidated() const override { return inner_->prevalidated(); }
  std::uint64_t size_hint() const override { return inner_->size_hint(); }

 private:
  std::unique_ptr<TraceStream> inner_;
  double speed_;
};

/// Adapter truncating a trace to its first `limit` requests (used by the
/// --scale option of the reproduction benches).
class PrefixAdapter : public TraceStream {
 public:
  PrefixAdapter(std::unique_ptr<TraceStream> inner, std::uint64_t limit);

  const TraceGeometry& geometry() const override {
    return inner_->geometry();
  }
  std::optional<TraceRecord> next() override;
  bool prevalidated() const override { return inner_->prevalidated(); }
  std::uint64_t size_hint() const override;

 private:
  std::unique_ptr<TraceStream> inner_;
  std::uint64_t remaining_;
};

}  // namespace raidsim
