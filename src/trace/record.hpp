#pragma once

#include <cstdint>
#include <memory>
#include <optional>

namespace raidsim {

/// One I/O request from a trace. Mirrors the paper's trace format
/// (Section 3.1): absolute database block address, access type, and time
/// since the previous request; multiblock requests are a single record
/// with `block_count` > 1 (equivalent to the paper's chained zero-delta
/// entries).
struct TraceRecord {
  double delta_ms = 0.0;        // time since the previous request
  std::int64_t block = 0;       // absolute database block address
  int block_count = 1;
  bool is_write = false;
};

/// Static description of the traced database (how absolute block
/// addresses decompose into original data disks).
struct TraceGeometry {
  int data_disks = 10;
  std::int64_t blocks_per_disk = 226000;

  std::int64_t total_blocks() const {
    return static_cast<std::int64_t>(data_disks) * blocks_per_disk;
  }
  int disk_of(std::int64_t block) const {
    return static_cast<int>(block / blocks_per_disk);
  }
  std::int64_t offset_of(std::int64_t block) const {
    return block % blocks_per_disk;
  }
};

/// Pull-based stream of trace records.
class TraceStream {
 public:
  virtual ~TraceStream() = default;

  virtual const TraceGeometry& geometry() const = 0;

  /// Next record, or nullopt at end of trace.
  virtual std::optional<TraceRecord> next() = 0;
};

/// Adapter scaling the arrival rate (Sections 4.2.4, 4.4.3: "modifying
/// trace speed"). speed > 1 compresses inter-arrival times.
class SpeedAdapter : public TraceStream {
 public:
  SpeedAdapter(std::unique_ptr<TraceStream> inner, double speed);

  const TraceGeometry& geometry() const override {
    return inner_->geometry();
  }
  std::optional<TraceRecord> next() override;

 private:
  std::unique_ptr<TraceStream> inner_;
  double speed_;
};

/// Adapter truncating a trace to its first `limit` requests (used by the
/// --scale option of the reproduction benches).
class PrefixAdapter : public TraceStream {
 public:
  PrefixAdapter(std::unique_ptr<TraceStream> inner, std::uint64_t limit);

  const TraceGeometry& geometry() const override {
    return inner_->geometry();
  }
  std::optional<TraceRecord> next() override;

 private:
  std::unique_ptr<TraceStream> inner_;
  std::uint64_t remaining_;
};

}  // namespace raidsim
