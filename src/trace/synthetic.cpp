#include "trace/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace raidsim {

TraceProfile TraceProfile::trace1() {
  TraceProfile p;
  p.name = "trace1";
  p.geometry.data_disks = 130;
  p.geometry.blocks_per_disk = 226000;
  p.duration_s = 3.0 * 3600.0 + 3.0 * 60.0;  // 3 hr 3 min
  p.requests = 3362505;
  p.single_write_fraction = 0.095;
  p.multi_write_fraction = 0.34;
  p.multiblock_fraction = 0.0213;
  p.multiblock_mean_blocks = 16.4;
  p.multiblock_max_blocks = 64;
  // High temporal locality. Depth medians are calibrated for the default
  // N = 10 configuration (13 arrays share the load, so a per-array cache
  // of C blocks corresponds to a global stack depth of roughly 13 C):
  // read hit ~10% at 8 MB/array rising past 40% at 256 MB/array; write
  // hit ~0.8-0.9 because blocks are usually read by the transaction
  // before being updated (the paper reports ~1; a cold-write residue is
  // kept so the destage pipeline stays exercised -- see EXPERIMENTS.md).
  p.read_reuse_prob = 0.62;
  p.read_depth = LognormalMixture{{{1.0, 155000.0, 1.8}}};
  p.write_reuse_prob = 0.97;
  p.write_depth = LognormalMixture{{{1.0, 4000.0, 1.6}}};
  p.disk_skew_sigma = 0.5;
  p.sequential_prob = 0.55;
  p.zones_per_disk = 96;
  p.zone_zipf_theta = 0.92;
  p.burst_mean_requests = 16.0;
  p.intra_burst_gap_ms = 0.35;
  p.burst_disk_affinity = 0.35;
  p.cluster_mean_bursts = 48.0;
  p.intra_cluster_gap_ms = 2.0;
  p.seed = 20130901;
  return p;
}

TraceProfile TraceProfile::trace2() {
  TraceProfile p;
  p.name = "trace2";
  p.geometry.data_disks = 10;
  p.geometry.blocks_per_disk = 226000;
  p.duration_s = 100.0 * 60.0;  // 1 hr 40 min
  p.requests = 69539;
  p.single_write_fraction = 0.266;
  p.multi_write_fraction = 0.51;
  p.multiblock_fraction = 0.0593;
  p.multiblock_mean_blocks = 18.7;
  p.multiblock_max_blocks = 64;
  // Weak locality, large working sets (ad-hoc queries in the mix):
  // read hit < 1% at 8 MB rising to ~40% at 256 MB; write hit ~20%
  // rising past 60%.
  p.read_reuse_prob = 0.50;
  p.read_depth = LognormalMixture{{{1.0, 30000.0, 1.3}}};
  p.write_reuse_prob = 0.80;
  p.write_depth =
      LognormalMixture{{{0.3, 500.0, 1.2}, {0.7, 25000.0, 1.3}}};
  p.disk_skew_sigma = 0.95;
  p.sequential_prob = 0.15;
  p.zones_per_disk = 64;
  p.zone_zipf_theta = 0.8;
  p.burst_mean_requests = 20.0;
  p.intra_burst_gap_ms = 2.2;
  p.burst_disk_affinity = 0.5;
  p.cluster_mean_bursts = 10.0;
  p.intra_cluster_gap_ms = 70.0;
  p.seed = 19931609;
  return p;
}

TraceProfile TraceProfile::by_name(const std::string& name) {
  if (name == "trace1") return trace1();
  if (name == "trace2") return trace2();
  throw std::invalid_argument("TraceProfile: unknown preset '" + name + "'");
}

SyntheticTrace::SyntheticTrace(TraceProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed) {
  const auto& geo = profile_.geometry;
  if (geo.data_disks < 1 || geo.blocks_per_disk < 1)
    throw std::invalid_argument("SyntheticTrace: bad geometry");
  if (profile_.requests == 0)
    throw std::invalid_argument("SyntheticTrace: zero requests");

  std::vector<double> weights(static_cast<std::size_t>(geo.data_disks));
  for (auto& w : weights)
    w = rng_.lognormal(0.0, profile_.disk_skew_sigma);
  disk_weights_ = std::make_unique<AliasSampler>(weights);
  zone_sampler_ = std::make_unique<ZipfSampler>(
      static_cast<std::uint64_t>(profile_.zones_per_disk),
      profile_.zone_zipf_theta);
  cursor_.assign(static_cast<std::size_t>(geo.data_disks), -1);

  // Arrival process: requests come in bursts (transactions), bursts come
  // in clusters (busy periods), and clusters are separated by idle gaps
  // sized so the trace fills its duration:
  //   duration = n_clusters * (cluster_busy + G)
  //   cluster_busy = c * ((m - 1) * g_request + g_burst)
  const double m = std::max(1.0, profile_.burst_mean_requests);
  const double c = std::max(1.0, profile_.cluster_mean_bursts);
  const double n_clusters =
      static_cast<double>(profile_.requests) / (m * c);
  const double cluster_busy =
      c * ((m - 1.0) * profile_.intra_burst_gap_ms +
           profile_.intra_cluster_gap_ms);
  const double duration_ms = profile_.duration_s * 1000.0;
  inter_cluster_gap_ms_ =
      std::max(0.01, duration_ms / n_clusters - cluster_busy);
}

std::int64_t SyntheticTrace::fresh_block(int count) {
  const auto& geo = profile_.geometry;
  int disk;
  if (in_burst_ && last_disk_ >= 0 &&
      rng_.bernoulli(profile_.burst_disk_affinity)) {
    disk = last_disk_;  // transaction touches related data
  } else {
    disk = static_cast<int>(disk_weights_->sample(rng_));
  }
  last_disk_ = disk;
  const std::int64_t base = static_cast<std::int64_t>(disk) *
                            geo.blocks_per_disk;
  auto& cursor = cursor_[static_cast<std::size_t>(disk)];
  if (cursor >= 0 && rng_.bernoulli(profile_.sequential_prob) &&
      cursor + count < geo.blocks_per_disk) {
    const std::int64_t block = base + cursor + 1;
    cursor += count;
    return block;
  }
  // Start a new run inside a hot zone. Hot zones are permuted per disk so
  // different disks have different hot regions.
  const int zones = profile_.zones_per_disk;
  const auto zone = static_cast<int>(
      (zone_sampler_->sample(rng_) + static_cast<std::uint64_t>(disk) * 7) %
      static_cast<std::uint64_t>(zones));
  const std::int64_t zone_blocks = geo.blocks_per_disk / zones;
  const std::int64_t zone_start = zone * zone_blocks;
  const std::int64_t room = std::max<std::int64_t>(1, zone_blocks - count);
  const std::int64_t offset =
      zone_start + static_cast<std::int64_t>(rng_.uniform_u64(
                       static_cast<std::uint64_t>(room)));
  cursor = offset + count - 1;
  return base + offset;
}

std::int64_t SyntheticTrace::pick_block(bool is_write, int count) {
  const auto& geo = profile_.geometry;
  if (count == 1) {
    const double reuse_prob =
        is_write ? profile_.write_reuse_prob : profile_.read_reuse_prob;
    if (stack_.size() > 0 && rng_.bernoulli(reuse_prob)) {
      const auto& depth_dist =
          is_write ? profile_.write_depth : profile_.read_depth;
      const auto depth = static_cast<std::size_t>(depth_dist.sample(rng_));
      if (auto block = stack_.at_depth(depth)) return *block;
      // Sampled deeper than the current stack: treat as a cold access.
    }
    return fresh_block(1);
  }
  // Multiblock requests model scans/batch updates: sequential, cold.
  std::int64_t block = fresh_block(count);
  // Clamp so the request does not cross the original disk boundary
  // (trace addresses are per-disk in the source systems).
  const std::int64_t disk_end =
      (block / geo.blocks_per_disk + 1) * geo.blocks_per_disk;
  if (block + count > disk_end) block = disk_end - count;
  return block;
}

std::optional<TraceRecord> SyntheticTrace::next() {
  if (emitted_ >= profile_.requests) return std::nullopt;
  ++emitted_;

  TraceRecord rec;
  if (burst_remaining_ == 0) {
    burst_remaining_ = rng_.geometric(1.0 / profile_.burst_mean_requests);
    if (cluster_bursts_remaining_ == 0) {
      cluster_bursts_remaining_ =
          rng_.geometric(1.0 / std::max(1.0, profile_.cluster_mean_bursts));
      rec.delta_ms = rng_.exponential(inter_cluster_gap_ms_);
    } else {
      rec.delta_ms = rng_.exponential(profile_.intra_cluster_gap_ms);
    }
    --cluster_bursts_remaining_;
    in_burst_ = false;  // the first access of a burst picks a fresh disk
  } else {
    rec.delta_ms = rng_.exponential(profile_.intra_burst_gap_ms);
    in_burst_ = true;
  }
  --burst_remaining_;

  const bool multi = rng_.bernoulli(profile_.multiblock_fraction);
  if (multi) {
    const double mean_extra = std::max(1.0, profile_.multiblock_mean_blocks - 1.0);
    const auto extra = rng_.geometric(1.0 / mean_extra);
    rec.block_count = static_cast<int>(
        std::min<std::uint64_t>(1 + extra,
                                static_cast<std::uint64_t>(
                                    profile_.multiblock_max_blocks)));
    if (rec.block_count < 2) rec.block_count = 2;
    rec.is_write = rng_.bernoulli(profile_.multi_write_fraction);
  } else {
    rec.block_count = 1;
    rec.is_write = rng_.bernoulli(profile_.single_write_fraction);
  }

  rec.block = pick_block(rec.is_write, rec.block_count);
  for (int i = 0; i < rec.block_count; ++i) stack_.touch(rec.block + i);
  return rec;
}

}  // namespace raidsim
