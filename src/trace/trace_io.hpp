#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace raidsim {

/// Text trace format, one request per line:
///
///   # comment
///   disks <n>
///   blocks_per_disk <b>
///   <delta_us> <block> <count> <R|W>
///
/// The two header directives must precede the first record (the geometry
/// is needed to bounds-check every record). This lets users replay real
/// traces (converted to this format) through the simulator in place of
/// the synthetic workloads. Malformed input -- records before the header,
/// unknown directives, non-numeric fields, negative or overflowing
/// deltas/addresses/counts, trailing garbage -- throws std::runtime_error
/// naming the offending line; CRLF line endings are accepted.
class TraceWriter {
 public:
  /// Serialise everything remaining in `stream` to `os`.
  static void write(TraceStream& stream, std::ostream& os);
};

/// Streaming reader for the text trace format.
class TraceReader : public TraceStream {
 public:
  /// Reads from an owned istream (e.g. std::ifstream moved in via
  /// unique_ptr). Throws std::runtime_error on malformed input.
  explicit TraceReader(std::unique_ptr<std::istream> input);

  /// Convenience: open a file by path.
  static std::unique_ptr<TraceReader> open(const std::string& path);

  const TraceGeometry& geometry() const override { return geometry_; }
  std::optional<TraceRecord> next() override;

 private:
  void parse_header();

  std::unique_ptr<std::istream> input_;
  TraceGeometry geometry_;
  std::uint64_t line_number_ = 0;
};

/// Compact binary trace format ("RSTB"): a 32-byte little-endian header
/// followed by fixed 24-byte records, so repeated replays of large
/// synthetic traces skip text parsing entirely.
///
///   header: magic "RSTB" | u32 version (=1) | u32 flags | i32 data_disks
///           | i64 blocks_per_disk | u64 record_count
///   record: f64 delta_ms | i64 block | i32 block_count | u8 is_write | pad
///
/// Flag bit 0 (`kPrevalidated`) records that every record was
/// bounds-checked against the header geometry when the file was written;
/// BinaryTraceReader then reports prevalidated() and the simulator skips
/// its per-record bounds check.
struct BinaryTraceHeader {
  static constexpr char kMagic[4] = {'R', 'S', 'T', 'B'};
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kPrevalidated = 1u << 0;

  char magic[4] = {'R', 'S', 'T', 'B'};
  std::uint32_t version = kVersion;
  std::uint32_t flags = 0;
  std::int32_t data_disks = 0;
  std::int64_t blocks_per_disk = 0;
  std::uint64_t record_count = 0;
};
static_assert(sizeof(BinaryTraceHeader) == 32, "header layout is the format");

struct BinaryTraceRecord {
  double delta_ms = 0.0;
  std::int64_t block = 0;
  std::int32_t block_count = 1;
  std::uint8_t is_write = 0;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(BinaryTraceRecord) == 24, "record layout is the format");

class BinaryTraceWriter {
 public:
  /// Serialise everything remaining in `stream` to `os`, validating each
  /// record against the stream geometry (malformed records throw
  /// std::runtime_error) so the file can be stamped kPrevalidated. The
  /// record count is back-patched, so `os` must be seekable.
  static std::uint64_t write(TraceStream& stream, std::ostream& os);

  /// Convenience: write to a file by path.
  static std::uint64_t write_file(TraceStream& stream,
                                  const std::string& path);
};

/// Reader for the binary trace format. Maps the file read-only (mmap)
/// where the platform supports it, falling back to one buffered read;
/// either way next() is a bounds-free pointer walk.
class BinaryTraceReader : public TraceStream {
 public:
  /// Throws std::runtime_error on a bad magic, unsupported version, or a
  /// truncated file.
  static std::unique_ptr<BinaryTraceReader> open(const std::string& path);

  /// Parse an in-memory image (testing, non-file transports). Copies.
  static std::unique_ptr<BinaryTraceReader> from_buffer(
      const void* data, std::size_t bytes);

  ~BinaryTraceReader() override;

  const TraceGeometry& geometry() const override { return geometry_; }
  std::optional<TraceRecord> next() override;
  bool prevalidated() const override { return prevalidated_; }
  std::uint64_t size_hint() const override { return count_ - cursor_; }

  std::uint64_t record_count() const { return count_; }
  bool mapped() const { return mapped_ != nullptr; }

 private:
  BinaryTraceReader() = default;
  void parse(const unsigned char* data, std::size_t bytes);

  TraceGeometry geometry_;
  bool prevalidated_ = false;
  std::uint64_t count_ = 0;
  std::uint64_t cursor_ = 0;
  const unsigned char* records_ = nullptr;  // into mapped_ or owned_
  void* mapped_ = nullptr;                  // mmap base (munmap on destroy)
  std::size_t mapped_bytes_ = 0;
  std::vector<unsigned char> owned_;
};

/// Open a trace file of either format, sniffing the binary magic.
std::unique_ptr<TraceStream> open_trace(const std::string& path);

}  // namespace raidsim
