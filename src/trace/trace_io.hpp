#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <string>

#include "trace/record.hpp"

namespace raidsim {

/// Text trace format, one request per line:
///
///   # comment
///   disks <n>
///   blocks_per_disk <b>
///   <delta_us> <block> <count> <R|W>
///
/// The two header directives must precede the first record (the geometry
/// is needed to bounds-check every record). This lets users replay real
/// traces (converted to this format) through the simulator in place of
/// the synthetic workloads. Malformed input -- records before the header,
/// unknown directives, non-numeric fields, negative or overflowing
/// deltas/addresses/counts, trailing garbage -- throws std::runtime_error
/// naming the offending line; CRLF line endings are accepted.
class TraceWriter {
 public:
  /// Serialise everything remaining in `stream` to `os`.
  static void write(TraceStream& stream, std::ostream& os);
};

/// Streaming reader for the text trace format.
class TraceReader : public TraceStream {
 public:
  /// Reads from an owned istream (e.g. std::ifstream moved in via
  /// unique_ptr). Throws std::runtime_error on malformed input.
  explicit TraceReader(std::unique_ptr<std::istream> input);

  /// Convenience: open a file by path.
  static std::unique_ptr<TraceReader> open(const std::string& path);

  const TraceGeometry& geometry() const override { return geometry_; }
  std::optional<TraceRecord> next() override;

 private:
  void parse_header();

  std::unique_ptr<std::istream> input_;
  TraceGeometry geometry_;
  std::uint64_t line_number_ = 0;
};

}  // namespace raidsim
