#include "trace/trace_stats.hpp"

#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace raidsim {

double TraceStats::write_fraction() const {
  const std::uint64_t writes = single_block_writes + multiblock_writes;
  return requests ? static_cast<double>(writes) / static_cast<double>(requests)
                  : 0.0;
}

double TraceStats::single_block_fraction() const {
  const std::uint64_t singles = single_block_reads + single_block_writes;
  return requests
             ? static_cast<double>(singles) / static_cast<double>(requests)
             : 0.0;
}

double TraceStats::disk_skew_cv() const {
  if (accesses_per_disk.empty()) return 0.0;
  double mean = 0.0;
  for (auto c : accesses_per_disk) mean += static_cast<double>(c);
  mean /= static_cast<double>(accesses_per_disk.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (auto c : accesses_per_disk) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(accesses_per_disk.size());
  return std::sqrt(var) / mean;
}

TraceStats TraceStats::collect(TraceStream& stream) {
  TraceStats stats;
  stats.geometry = stream.geometry();
  stats.accesses_per_disk.assign(
      static_cast<std::size_t>(stats.geometry.data_disks), 0);
  while (auto rec = stream.next()) {
    ++stats.requests;
    stats.duration_ms += rec->delta_ms;
    stats.blocks_transferred += static_cast<std::uint64_t>(rec->block_count);
    if (rec->block_count == 1) {
      (rec->is_write ? stats.single_block_writes : stats.single_block_reads)++;
    } else {
      (rec->is_write ? stats.multiblock_writes : stats.multiblock_reads)++;
    }
    const int disk = stats.geometry.disk_of(rec->block);
    stats.accesses_per_disk[static_cast<std::size_t>(disk)]++;
  }
  return stats;
}

std::string TraceStats::table(const std::vector<const TraceStats*>& columns,
                              const std::vector<std::string>& names) {
  std::vector<std::string> header{""};
  for (const auto& n : names) header.push_back(n);
  TablePrinter printer(header);

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto* s : columns) cells.push_back(getter(*s));
    printer.add_row(cells);
  };
  auto count = [](std::uint64_t v) { return std::to_string(v); };

  row("Duration", [](const TraceStats& s) {
    const auto total_s = static_cast<std::uint64_t>(s.duration_ms / 1000.0);
    std::ostringstream os;
    os << total_s / 3600 << "hr " << (total_s % 3600) / 60 << "min";
    return os.str();
  });
  row("# of disks", [&](const TraceStats& s) {
    return count(static_cast<std::uint64_t>(s.geometry.data_disks));
  });
  row("# of I/O accesses",
      [&](const TraceStats& s) { return count(s.requests); });
  row("# of blocks transferred",
      [&](const TraceStats& s) { return count(s.blocks_transferred); });
  row("# of single block reads",
      [&](const TraceStats& s) { return count(s.single_block_reads); });
  row("# of single block writes",
      [&](const TraceStats& s) { return count(s.single_block_writes); });
  row("# of multiblock reads",
      [&](const TraceStats& s) { return count(s.multiblock_reads); });
  row("# of multiblock writes",
      [&](const TraceStats& s) { return count(s.multiblock_writes); });
  row("Write fraction", [](const TraceStats& s) {
    return TablePrinter::num(s.write_fraction(), 3);
  });
  row("Disk skew (CV)", [](const TraceStats& s) {
    return TablePrinter::num(s.disk_skew_cv(), 3);
  });
  return printer.to_string();
}

}  // namespace raidsim
