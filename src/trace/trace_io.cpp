#include "trace/trace_io.hpp"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace raidsim {

void TraceWriter::write(TraceStream& stream, std::ostream& os) {
  const auto& geo = stream.geometry();
  os << "# raidsim trace\n";
  os << "disks " << geo.data_disks << '\n';
  os << "blocks_per_disk " << geo.blocks_per_disk << '\n';
  while (auto rec = stream.next()) {
    os << static_cast<std::int64_t>(rec->delta_ms * 1000.0) << ' '
       << rec->block << ' ' << rec->block_count << ' '
       << (rec->is_write ? 'W' : 'R') << '\n';
  }
}

TraceReader::TraceReader(std::unique_ptr<std::istream> input)
    : input_(std::move(input)) {
  if (!input_ || !*input_)
    throw std::runtime_error("TraceReader: cannot read input");
  parse_header();
}

std::unique_ptr<TraceReader> TraceReader::open(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!file->is_open())
    throw std::runtime_error("TraceReader: cannot open '" + path + "'");
  return std::make_unique<TraceReader>(std::move(file));
}

namespace {

/// Strip a trailing carriage return (Windows line endings) in place.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

[[noreturn]] void fail_at(std::uint64_t line_number, const std::string& what) {
  throw std::runtime_error("TraceReader: " + what + " at line " +
                           std::to_string(line_number));
}

}  // namespace

void TraceReader::parse_header() {
  bool have_disks = false;
  bool have_blocks = false;
  std::string line;
  while (std::getline(*input_, line)) {
    ++line_number_;
    strip_cr(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    std::string extra;
    if (keyword == "disks") {
      if (!(ls >> geometry_.data_disks) || geometry_.data_disks < 1 ||
          (ls >> extra))
        fail_at(line_number_, "bad 'disks' directive");
      have_disks = true;
    } else if (keyword == "blocks_per_disk") {
      if (!(ls >> geometry_.blocks_per_disk) ||
          geometry_.blocks_per_disk < 1 || (ls >> extra))
        fail_at(line_number_, "bad 'blocks_per_disk' directive");
      have_blocks = true;
    } else if (!keyword.empty() &&
               (std::isdigit(static_cast<unsigned char>(keyword[0])) ||
                keyword[0] == '-' || keyword[0] == '+')) {
      // Looks like a data record; both directives must come first (the
      // geometry is needed to validate every record's bounds).
      fail_at(line_number_, "record before 'disks'/'blocks_per_disk' header");
    } else {
      fail_at(line_number_, "unknown directive '" + keyword + "'");
    }
    if (have_disks && have_blocks) return;
  }
  throw std::runtime_error("TraceReader: missing header directives");
}

std::optional<TraceRecord> TraceReader::next() {
  std::string line;
  while (true) {
    if (!std::getline(*input_, line)) return std::nullopt;
    ++line_number_;
    strip_cr(line);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls(line);
    std::int64_t delta_us = 0;
    TraceRecord rec;
    char type = 0;
    // A failed extraction covers non-numeric fields, missing fields, and
    // values that overflow int64 (the stream sets failbit on overflow).
    if (!(ls >> delta_us >> rec.block >> rec.block_count >> type))
      fail_at(line_number_, "malformed record");
    std::string extra;
    if (ls >> extra)
      fail_at(line_number_, "trailing garbage '" + extra + "'");
    if (type != 'R' && type != 'W')
      fail_at(line_number_, std::string("bad access type '") + type + "'");
    if (delta_us < 0) fail_at(line_number_, "negative inter-arrival delta");
    if (rec.block < 0) fail_at(line_number_, "negative block address");
    if (rec.block_count < 1) fail_at(line_number_, "non-positive block count");
    // Overflow-safe bounds check: block + block_count may wrap int64.
    if (rec.block_count > geometry_.total_blocks() ||
        rec.block > geometry_.total_blocks() - rec.block_count)
      fail_at(line_number_, "extent beyond the traced database");
    rec.delta_ms = static_cast<double>(delta_us) / 1000.0;
    rec.is_write = (type == 'W');
    return rec;
  }
}

}  // namespace raidsim
