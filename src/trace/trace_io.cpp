#include "trace/trace_io.hpp"

#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define RAIDSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace raidsim {

void TraceWriter::write(TraceStream& stream, std::ostream& os) {
  const auto& geo = stream.geometry();
  os << "# raidsim trace\n";
  os << "disks " << geo.data_disks << '\n';
  os << "blocks_per_disk " << geo.blocks_per_disk << '\n';
  while (auto rec = stream.next()) {
    // Round to the microsecond grid: truncation would walk deltas like
    // 1.023 ms (stored as 1.0229999...) down a microsecond per rewrite.
    os << std::llround(rec->delta_ms * 1000.0) << ' '
       << rec->block << ' ' << rec->block_count << ' '
       << (rec->is_write ? 'W' : 'R') << '\n';
  }
}

TraceReader::TraceReader(std::unique_ptr<std::istream> input)
    : input_(std::move(input)) {
  if (!input_ || !*input_)
    throw std::runtime_error("TraceReader: cannot read input");
  parse_header();
}

std::unique_ptr<TraceReader> TraceReader::open(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!file->is_open())
    throw std::runtime_error("TraceReader: cannot open '" + path + "'");
  return std::make_unique<TraceReader>(std::move(file));
}

namespace {

/// Strip a trailing carriage return (Windows line endings) in place.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

[[noreturn]] void fail_at(std::uint64_t line_number, const std::string& what) {
  throw std::runtime_error("TraceReader: " + what + " at line " +
                           std::to_string(line_number));
}

}  // namespace

void TraceReader::parse_header() {
  bool have_disks = false;
  bool have_blocks = false;
  std::string line;
  while (std::getline(*input_, line)) {
    ++line_number_;
    strip_cr(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    std::string extra;
    if (keyword == "disks") {
      if (!(ls >> geometry_.data_disks) || geometry_.data_disks < 1 ||
          (ls >> extra))
        fail_at(line_number_, "bad 'disks' directive");
      have_disks = true;
    } else if (keyword == "blocks_per_disk") {
      if (!(ls >> geometry_.blocks_per_disk) ||
          geometry_.blocks_per_disk < 1 || (ls >> extra))
        fail_at(line_number_, "bad 'blocks_per_disk' directive");
      have_blocks = true;
    } else if (!keyword.empty() &&
               (std::isdigit(static_cast<unsigned char>(keyword[0])) ||
                keyword[0] == '-' || keyword[0] == '+')) {
      // Looks like a data record; both directives must come first (the
      // geometry is needed to validate every record's bounds).
      fail_at(line_number_, "record before 'disks'/'blocks_per_disk' header");
    } else {
      fail_at(line_number_, "unknown directive '" + keyword + "'");
    }
    if (have_disks && have_blocks) return;
  }
  throw std::runtime_error("TraceReader: missing header directives");
}

std::optional<TraceRecord> TraceReader::next() {
  std::string line;
  while (true) {
    if (!std::getline(*input_, line)) return std::nullopt;
    ++line_number_;
    strip_cr(line);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls(line);
    std::int64_t delta_us = 0;
    TraceRecord rec;
    char type = 0;
    // A failed extraction covers non-numeric fields, missing fields, and
    // values that overflow int64 (the stream sets failbit on overflow).
    if (!(ls >> delta_us >> rec.block >> rec.block_count >> type))
      fail_at(line_number_, "malformed record");
    std::string extra;
    if (ls >> extra)
      fail_at(line_number_, "trailing garbage '" + extra + "'");
    if (type != 'R' && type != 'W')
      fail_at(line_number_, std::string("bad access type '") + type + "'");
    if (delta_us < 0) fail_at(line_number_, "negative inter-arrival delta");
    if (rec.block < 0) fail_at(line_number_, "negative block address");
    if (rec.block_count < 1) fail_at(line_number_, "non-positive block count");
    // Overflow-safe bounds check: block + block_count may wrap int64.
    if (rec.block_count > geometry_.total_blocks() ||
        rec.block > geometry_.total_blocks() - rec.block_count)
      fail_at(line_number_, "extent beyond the traced database");
    rec.delta_ms = static_cast<double>(delta_us) / 1000.0;
    rec.is_write = (type == 'W');
    return rec;
  }
}

// ------------------------------------------------------- binary format

namespace {

void validate_against(const TraceGeometry& geo, const TraceRecord& rec,
                      std::uint64_t index) {
  const auto fail = [index](const std::string& what) {
    throw std::runtime_error("BinaryTraceWriter: " + what + " at record " +
                             std::to_string(index));
  };
  if (rec.delta_ms < 0.0) fail("negative inter-arrival delta");
  if (rec.block < 0) fail("negative block address");
  if (rec.block_count < 1) fail("non-positive block count");
  // Overflow-safe bounds check: block + block_count may wrap int64.
  if (rec.block_count > geo.total_blocks() ||
      rec.block > geo.total_blocks() - rec.block_count)
    fail("extent beyond the traced database");
}

}  // namespace

std::uint64_t BinaryTraceWriter::write(TraceStream& stream, std::ostream& os) {
  const TraceGeometry& geo = stream.geometry();
  BinaryTraceHeader header;
  header.flags = BinaryTraceHeader::kPrevalidated;
  header.data_disks = geo.data_disks;
  header.blocks_per_disk = geo.blocks_per_disk;
  const auto header_pos = os.tellp();
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));

  std::uint64_t count = 0;
  while (auto rec = stream.next()) {
    validate_against(geo, *rec, count);
    BinaryTraceRecord out;
    out.delta_ms = rec->delta_ms;
    out.block = rec->block;
    out.block_count = rec->block_count;
    out.is_write = rec->is_write ? 1 : 0;
    os.write(reinterpret_cast<const char*>(&out), sizeof(out));
    ++count;
  }

  header.record_count = count;
  os.seekp(header_pos);
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  os.seekp(0, std::ios::end);
  if (!os) throw std::runtime_error("BinaryTraceWriter: write failed");
  return count;
}

std::uint64_t BinaryTraceWriter::write_file(TraceStream& stream,
                                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("BinaryTraceWriter: cannot open '" + path + "'");
  return write(stream, out);
}

void BinaryTraceReader::parse(const unsigned char* data, std::size_t bytes) {
  if (bytes < sizeof(BinaryTraceHeader))
    throw std::runtime_error("BinaryTraceReader: file shorter than header");
  BinaryTraceHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, BinaryTraceHeader::kMagic, 4) != 0)
    throw std::runtime_error("BinaryTraceReader: bad magic (not a binary "
                             "trace; text traces go through TraceReader)");
  if (header.version != BinaryTraceHeader::kVersion)
    throw std::runtime_error("BinaryTraceReader: unsupported version " +
                             std::to_string(header.version));
  if (header.data_disks < 1 || header.blocks_per_disk < 1)
    throw std::runtime_error("BinaryTraceReader: invalid geometry");
  const std::uint64_t payload = bytes - sizeof(BinaryTraceHeader);
  if (header.record_count > payload / sizeof(BinaryTraceRecord))
    throw std::runtime_error("BinaryTraceReader: truncated record section");
  geometry_.data_disks = header.data_disks;
  geometry_.blocks_per_disk = header.blocks_per_disk;
  prevalidated_ = (header.flags & BinaryTraceHeader::kPrevalidated) != 0;
  count_ = header.record_count;
  records_ = data + sizeof(BinaryTraceHeader);
}

std::unique_ptr<BinaryTraceReader> BinaryTraceReader::open(
    const std::string& path) {
  std::unique_ptr<BinaryTraceReader> reader(new BinaryTraceReader());
#ifdef RAIDSIM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw std::runtime_error("BinaryTraceReader: cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base != MAP_FAILED) {
      reader->mapped_ = base;
      reader->mapped_bytes_ = static_cast<std::size_t>(st.st_size);
      try {
        reader->parse(static_cast<const unsigned char*>(base),
                      reader->mapped_bytes_);
      } catch (...) {
        // ~BinaryTraceReader has not run for a throwing factory.
        ::munmap(base, reader->mapped_bytes_);
        reader->mapped_ = nullptr;
        throw;
      }
      return reader;
    }
  } else {
    ::close(fd);
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("BinaryTraceReader: cannot open '" + path + "'");
  reader->owned_.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  reader->parse(reader->owned_.data(), reader->owned_.size());
  return reader;
}

std::unique_ptr<BinaryTraceReader> BinaryTraceReader::from_buffer(
    const void* data, std::size_t bytes) {
  std::unique_ptr<BinaryTraceReader> reader(new BinaryTraceReader());
  const auto* bytes_ptr = static_cast<const unsigned char*>(data);
  reader->owned_.assign(bytes_ptr, bytes_ptr + bytes);
  reader->parse(reader->owned_.data(), reader->owned_.size());
  return reader;
}

BinaryTraceReader::~BinaryTraceReader() {
#ifdef RAIDSIM_HAVE_MMAP
  if (mapped_) ::munmap(mapped_, mapped_bytes_);
#endif
}

std::optional<TraceRecord> BinaryTraceReader::next() {
  if (cursor_ >= count_) return std::nullopt;
  BinaryTraceRecord packed;
  std::memcpy(&packed, records_ + cursor_ * sizeof(BinaryTraceRecord),
              sizeof(packed));
  ++cursor_;
  TraceRecord rec;
  rec.delta_ms = packed.delta_ms;
  rec.block = packed.block;
  rec.block_count = packed.block_count;
  rec.is_write = packed.is_write != 0;
  return rec;
}

std::unique_ptr<TraceStream> open_trace(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe)
    throw std::runtime_error("open_trace: cannot open '" + path + "'");
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, 4);
  probe.close();
  if (std::memcmp(magic, BinaryTraceHeader::kMagic, 4) == 0)
    return BinaryTraceReader::open(path);
  return TraceReader::open(path);
}

}  // namespace raidsim
