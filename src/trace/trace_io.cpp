#include "trace/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace raidsim {

void TraceWriter::write(TraceStream& stream, std::ostream& os) {
  const auto& geo = stream.geometry();
  os << "# raidsim trace\n";
  os << "disks " << geo.data_disks << '\n';
  os << "blocks_per_disk " << geo.blocks_per_disk << '\n';
  while (auto rec = stream.next()) {
    os << static_cast<std::int64_t>(rec->delta_ms * 1000.0) << ' '
       << rec->block << ' ' << rec->block_count << ' '
       << (rec->is_write ? 'W' : 'R') << '\n';
  }
}

TraceReader::TraceReader(std::unique_ptr<std::istream> input)
    : input_(std::move(input)) {
  if (!input_ || !*input_)
    throw std::runtime_error("TraceReader: cannot read input");
  parse_header();
}

std::unique_ptr<TraceReader> TraceReader::open(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!file->is_open())
    throw std::runtime_error("TraceReader: cannot open '" + path + "'");
  return std::make_unique<TraceReader>(std::move(file));
}

void TraceReader::parse_header() {
  bool have_disks = false;
  bool have_blocks = false;
  std::string line;
  while (std::getline(*input_, line)) {
    ++line_number_;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "disks") {
      if (!(ls >> geometry_.data_disks) || geometry_.data_disks < 1)
        throw std::runtime_error("TraceReader: bad 'disks' directive");
      have_disks = true;
    } else if (keyword == "blocks_per_disk") {
      if (!(ls >> geometry_.blocks_per_disk) || geometry_.blocks_per_disk < 1)
        throw std::runtime_error("TraceReader: bad 'blocks_per_disk'");
      have_blocks = true;
    } else {
      // First data line; stash it for next().
      pending_line_ = line;
      pending_valid_ = true;
      break;
    }
    if (have_disks && have_blocks) break;
  }
  if (!have_disks || !have_blocks)
    throw std::runtime_error("TraceReader: missing header directives");
}

std::optional<TraceRecord> TraceReader::next() {
  std::string line;
  while (true) {
    if (pending_valid_) {
      line = std::move(pending_line_);
      pending_valid_ = false;
    } else if (!std::getline(*input_, line)) {
      return std::nullopt;
    } else {
      ++line_number_;
    }
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls(line);
    std::int64_t delta_us = 0;
    TraceRecord rec;
    char type = 0;
    if (!(ls >> delta_us >> rec.block >> rec.block_count >> type) ||
        (type != 'R' && type != 'W') || rec.block_count < 1 || rec.block < 0 ||
        delta_us < 0 ||
        rec.block + rec.block_count > geometry_.total_blocks()) {
      throw std::runtime_error("TraceReader: malformed record at line " +
                               std::to_string(line_number_));
    }
    rec.delta_ms = static_cast<double>(delta_us) / 1000.0;
    rec.is_write = (type == 'W');
    return rec;
  }
}

}  // namespace raidsim
