#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace raidsim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double k = std::ceil(std::log(u) / std::log1p(-p));
  return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

Rng Rng::split() { return Rng(next_u64()); }

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (theta < 0.0 || theta >= 1.0)
    throw std::invalid_argument("ZipfSampler: theta must be in [0, 1)");
  auto zeta = [theta](std::uint64_t count) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= count; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  };
  zeta_n_ = zeta(n);
  zeta_theta_ = zeta(2);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta_theta_ / zeta_n_);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Classic Jim Gray "quick and dirty" Zipf sampler.
  const double u = rng.uniform();
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfSampler::probability(std::uint64_t k) const {
  return 1.0 / (std::pow(static_cast<double>(k + 1), theta_) * zeta_n_);
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasSampler: zero total weight");

  norm_.resize(n);
  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / total;
    scaled[i] = norm_[i] * static_cast<double>(n);
  }

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.uniform_u64(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

double AliasSampler::probability(std::size_t i) const { return norm_.at(i); }

}  // namespace raidsim
