#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace raidsim {

/// Minimal ASCII table printer used by the reproduction benches to emit
/// paper-style rows. Columns are sized to fit their widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streaming CSV writer (RFC-4180-ish quoting) for machine-readable
/// experiment output.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os);

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace raidsim
