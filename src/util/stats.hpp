#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace raidsim {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-resolution log-spaced histogram for latency-like quantities.
/// Buckets cover [min_value, max_value) geometrically; values outside are
/// clamped into the edge buckets. Supports approximate quantiles.
class Histogram {
 public:
  Histogram(double min_value, double max_value, std::size_t buckets);

  void add(double x);
  void merge(const Histogram& other);

  std::uint64_t count() const { return total_; }

  /// Approximate q-quantile (q in [0,1]), linear interpolation within the
  /// selected bucket. Returns 0 when empty.
  double quantile(double q) const;

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lower_bound(std::size_t i) const;

 private:
  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Convenience aggregate for a response-time-like metric: streaming
/// moments plus a histogram for percentiles.
class LatencyRecorder {
 public:
  LatencyRecorder();

  void add(double ms);
  void merge(const LatencyRecorder& other);

  const OnlineStats& stats() const { return stats_; }
  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double p50() const { return hist_.quantile(0.50); }
  double p95() const { return hist_.quantile(0.95); }
  double p99() const { return hist_.quantile(0.99); }
  double p999() const { return hist_.quantile(0.999); }
  double max() const { return stats_.max(); }

  const Histogram& histogram() const { return hist_; }

 private:
  OnlineStats stats_;
  Histogram hist_;
};

}  // namespace raidsim
