#pragma once

#include <cstdint>
#include <vector>

namespace raidsim {

/// Deterministic pseudo-random number generator (xoshiro256** core,
/// splitmix64 seeding). All stochastic behaviour in raidsim flows through
/// this class so that simulations are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Log-normally distributed value: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Geometric number of trials >= 1 with success probability p.
  std::uint64_t geometric(double p);

  /// Spawn an independent stream (useful for giving each sub-component
  /// its own generator while keeping global determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipf(theta) sampler over {0, ..., n-1} using Gray's bounded-Pareto style
/// inversion approximation (exact for theta == 0, standard approximation
/// otherwise). Rank 0 is the most popular item.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t size() const { return n_; }
  double theta() const { return theta_; }

  /// Exact probability of rank k (computed from the harmonic
  /// normalisation, O(1) after construction).
  double probability(std::uint64_t k) const;

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;  // 1 / (1 - theta)
  double zeta_n_;
  double eta_;
  double zeta_theta_;  // zeta(2, theta) in the classic formulation
};

/// Sampler for an arbitrary discrete distribution given unnormalised
/// weights, using Walker's alias method: O(n) setup, O(1) sampling.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> norm_;  // normalised input weights
};

}  // namespace raidsim
