#pragma once

#include <vector>

#include "util/rng.hpp"

namespace raidsim {

/// Weighted mixture of log-normal components, used to model LRU
/// stack-distance distributions in the synthetic trace generator.
/// Exposes both sampling and an analytic CDF so calibration targets
/// (paper hit-ratio curves) can be asserted in tests.
class LognormalMixture {
 public:
  struct Component {
    double weight;  // relative weight, need not be normalised
    double median;  // exp(mu)
    double sigma;   // log-space standard deviation
  };

  explicit LognormalMixture(std::vector<Component> components);

  double sample(Rng& rng) const;

  /// P(X <= x).
  double cdf(double x) const;

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
  std::vector<double> cum_weight_;  // normalised cumulative weights
};

}  // namespace raidsim
