#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace raidsim {

/// Small vector with inline storage for the first `N` elements, spilling
/// to the heap only beyond that. Restricted to trivially copyable element
/// types so growth is a memcpy and destruction is free.
///
/// Exists for the address-mapping hot path: Layout::map_read produces one
/// or two extents for virtually every request (a block run crosses a
/// striping-unit boundary at most once for the paper's request sizes),
/// but returning std::vector made every mapped read pay a heap
/// allocation. With the result inline, mapping allocates nothing.
template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is memcpy-based; element type must be "
                "trivially copyable");
  static_assert(N > 0, "InlineVec needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;

  InlineVec(const InlineVec& other) { append_raw(other.data(), other.size_); }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      size_ = 0;
      append_raw(other.data(), other.size_);
    }
    return *this;
  }

  InlineVec(InlineVec&& other) noexcept { steal(other); }

  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~InlineVec() { release(); }

  void push_back(const T& value) {
    if (size_ == cap_) grow(size_ + 1);
    std::memcpy(data() + size_, &value, sizeof(T));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(size_ + 1);
    T* p = new (data() + size_) T{std::forward<Args>(args)...};
    ++size_;
    return *p;
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  T* data() { return heap_ ? heap_ : inline_ptr(); }
  const T* data() const { return heap_ ? heap_ : inline_ptr(); }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  T* inline_ptr() { return reinterpret_cast<T*>(storage_); }
  const T* inline_ptr() const { return reinterpret_cast<const T*>(storage_); }

  void append_raw(const T* src, std::size_t n) {
    if (n > cap_) grow(n);
    if (n > 0) std::memcpy(data() + size_, src, n * sizeof(T));
    size_ += n;
  }

  void grow(std::size_t need) {
    std::size_t new_cap = cap_ * 2;
    while (new_cap < need) new_cap *= 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    if (size_ > 0) std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_) ::operator delete(heap_);
    heap_ = fresh;
    cap_ = new_cap;
  }

  /// Move guts out of `other`, leaving it empty. Heap buffers transfer
  /// by pointer; inline contents are copied (they are at most N
  /// trivially copyable elements).
  void steal(InlineVec& other) {
    size_ = other.size_;
    if (other.heap_) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      other.heap_ = nullptr;
      other.cap_ = N;
    } else if (size_ > 0) {
      std::memcpy(inline_ptr(), other.inline_ptr(), size_ * sizeof(T));
    }
    other.size_ = 0;
  }

  void release() {
    if (heap_) {
      ::operator delete(heap_);
      heap_ = nullptr;
      cap_ = N;
    }
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace raidsim
