#include "util/fenwick.hpp"

#include <cassert>

namespace raidsim {

FenwickTree::FenwickTree(std::size_t size) { reset(size); }

void FenwickTree::reset(std::size_t size) {
  size_ = size;
  tree_.assign(size + 1, 0);
}

void FenwickTree::add(std::size_t i, std::int64_t delta) {
  assert(i < size_);
  for (std::size_t j = i + 1; j <= size_; j += j & (~j + 1)) tree_[j] += delta;
}

std::int64_t FenwickTree::prefix_sum(std::size_t i) const {
  assert(i < size_);
  std::int64_t sum = 0;
  for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1)) sum += tree_[j];
  return sum;
}

std::int64_t FenwickTree::prefix_sum_exclusive(std::size_t i) const {
  return i == 0 ? 0 : prefix_sum(i - 1);
}

std::int64_t FenwickTree::range_sum(std::size_t lo, std::size_t hi) const {
  assert(lo <= hi);
  return prefix_sum(hi) - prefix_sum_exclusive(lo);
}

std::int64_t FenwickTree::total() const {
  return size_ == 0 ? 0 : prefix_sum(size_ - 1);
}

std::size_t FenwickTree::select(std::int64_t target) const {
  assert(target >= 1 && target <= total());
  std::size_t pos = 0;
  // Highest power of two <= size_.
  std::size_t mask = 1;
  while ((mask << 1) <= size_) mask <<= 1;
  std::int64_t remaining = target;
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next <= size_ && tree_[next] < remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  return pos;  // 0-based slot index
}

}  // namespace raidsim
