#pragma once

#include <cstdint>
#include <vector>

namespace raidsim {

/// Fenwick (binary indexed) tree over int64 counts with prefix sums and
/// k-th element selection in O(log n). Used by the LRU-stack locality
/// engine in the trace generator and available as a general substrate.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size = 0);

  /// Reset to `size` zeroed slots.
  void reset(std::size_t size);

  std::size_t size() const { return size_; }

  /// Add `delta` to slot i.
  void add(std::size_t i, std::int64_t delta);

  /// Sum of slots [0, i] inclusive. Returns 0 for empty prefix via
  /// prefix_sum_exclusive.
  std::int64_t prefix_sum(std::size_t i) const;

  /// Sum of slots [0, i).
  std::int64_t prefix_sum_exclusive(std::size_t i) const;

  /// Sum of slots [lo, hi] inclusive.
  std::int64_t range_sum(std::size_t lo, std::size_t hi) const;

  /// Total of all slots.
  std::int64_t total() const;

  /// Smallest index i such that prefix_sum(i) >= target (target >= 1).
  /// Requires target <= total(); behaviour is undefined otherwise
  /// (checked by assert in debug builds).
  std::size_t select(std::int64_t target) const;

 private:
  std::size_t size_ = 0;
  std::vector<std::int64_t> tree_;  // 1-based
};

}  // namespace raidsim
