#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace raidsim {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double min_value, double max_value, std::size_t buckets)
    : min_value_(min_value),
      log_min_(std::log(min_value)),
      log_step_((std::log(max_value) - std::log(min_value)) /
                static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(min_value > 0.0 && max_value > min_value && buckets > 0);
}

void Histogram::add(double x) {
  std::size_t idx = 0;
  if (x > min_value_) {
    idx = static_cast<std::size_t>((std::log(x) - log_min_) / log_step_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bucket_lower_bound(std::size_t i) const {
  return std::exp(log_min_ + log_step_ * static_cast<double>(i));
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target && counts_[i] > 0) {
      // Interpolate within the bucket.
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_lower_bound(i + 1);
      const double within =
          1.0 - static_cast<double>(cum - target) / static_cast<double>(counts_[i]);
      return lo + (hi - lo) * within;
    }
  }
  return bucket_lower_bound(counts_.size());
}

LatencyRecorder::LatencyRecorder() : hist_(0.01, 100000.0, 512) {}

void LatencyRecorder::add(double ms) {
  stats_.add(ms);
  hist_.add(ms);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  stats_.merge(other.stats_);
  hist_.merge(other.hist_);
}

}  // namespace raidsim
