#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace raidsim {

/// Thread-local free-list allocator for the small per-request objects the
/// simulation churns through (barriers, stalled-write records, RMW write
/// gates, in-flight disk op state). Blocks are recycled on a per-thread,
/// per-size stack instead of round-tripping through the global heap; each
/// list grows with the number of simultaneously-live objects of its
/// size (capped at pool_detail::kMaxFreeBlocks retained blocks) and then
/// allocation is a pop / push pair.
///
/// Intended for `std::allocate_shared`, where the allocation includes the
/// shared_ptr control block, so make_shared's single-allocation layout is
/// preserved. Thread safety: lists are thread_local, so concurrent shard
/// threads never contend. A block freed on a different thread than it was
/// allocated on simply migrates lists, which is safe but defeats reuse --
/// the simulator never does this (each simulation runs on one thread, and
/// shard threads are joined before their state is torn down).
namespace pool_detail {

/// Retention cap per (thread, size class): without one, a list grows to
/// the peak number of simultaneously-live objects and never shrinks, so
/// a single burst (one oversized run, one deep retry storm) pins that
/// high-water mark in memory for the life of the thread. Frees beyond
/// the cap go straight back to the heap.
inline constexpr std::size_t kMaxFreeBlocks = 1024;

struct FreeList {
  std::vector<void*> blocks;
  FreeList() = default;
  FreeList(const FreeList&) = delete;
  FreeList& operator=(const FreeList&) = delete;
  ~FreeList() {
    for (void* block : blocks) ::operator delete(block);
  }
};

/// One list per (thread, size class). Sizing classes by the exact object
/// size keeps blocks interchangeable only within a class, so a recycled
/// block always fits.
template <std::size_t Bytes>
inline FreeList& free_list() {
  thread_local FreeList list;
  return list;
}

}  // namespace pool_detail

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n != 1)  // arrays are not pooled; fall through to the heap
      return static_cast<T*>(::operator new(n * sizeof(T)));
    auto& list = pool_detail::free_list<sizeof(T)>();
    if (!list.blocks.empty()) {
      void* block = list.blocks.back();
      list.blocks.pop_back();
      return static_cast<T*>(block);
    }
    return static_cast<T*>(::operator new(sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    auto& list = pool_detail::free_list<sizeof(T)>();
    if (list.blocks.size() >= pool_detail::kMaxFreeBlocks) {
      ::operator delete(p);  // list at cap: release instead of retaining
      return;
    }
    try {
      list.blocks.push_back(p);
    } catch (...) {
      ::operator delete(p);  // push_back OOM: just release the block
    }
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;  // stateless: any instance can free any other's blocks
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};

/// make_shared equivalent drawing from the pool: one allocation holding
/// the control block and the object, recycled per thread.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(),
                                 std::forward<Args>(args)...);
}

}  // namespace raidsim
