#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>
#include <utility>
#include <vector>

namespace raidsim {

/// Which allocator backs the per-request op state (barriers, RMW write
/// gates, hedge records, stalled writes, in-flight disk/channel state).
/// Both strategies execute bit-identical simulations -- nothing in the
/// simulator orders by pointer value, so allocation can never reorder
/// events -- which is why, like EventKernel, this knob is excluded from
/// the svc job cache key.
enum class OpAlloc {
  /// Per-engine size-class slab arena with non-atomic OpRef refcounts.
  /// No TLS lookup on the alloc path and no atomic RMW per handle copy;
  /// requires the single-shard-thread ownership discipline enforced by
  /// the debug owner check.
  kArena,
  /// Thread-local free lists with atomic refcounts: the cost profile of
  /// the retired make_pooled/shared_ptr scheme, retained as the
  /// differential yardstick (same role the heap event kernel plays).
  kPool,
};

inline const char* to_string(OpAlloc a) {
  return a == OpAlloc::kArena ? "arena" : "pool";
}

class OpArena;
template <typename T>
class OpRef;

namespace op_detail {

inline constexpr std::size_t kClasses = 6;
/// Block sizes *including* the 16-byte OpHeader. All multiples of 16 so
/// every payload inherits max_align_t alignment from the slab.
inline constexpr std::array<std::size_t, kClasses> kClassBytes{
    64, 128, 256, 512, 768, 1024};
/// Slab granularity: one global-heap acquisition buys this many bytes of
/// bump space, so steady state never touches ::operator new.
inline constexpr std::size_t kSlabBytes = std::size_t{1} << 16;
/// Pool-mode thread-local free lists are capped at this many retained
/// blocks per class; frees beyond the cap go back to the heap.
inline constexpr std::size_t kMaxPoolFree = 1024;

/// Smallest class whose block fits `total` bytes; kClasses == oversize
/// (block served directly from the heap).
constexpr std::size_t class_for(std::size_t total) {
  for (std::size_t i = 0; i < kClasses; ++i)
    if (total <= kClassBytes[i]) return i;
  return kClasses;
}

inline constexpr std::uint16_t kFlagAtomic = 0x1;  // pool mode: atomic refs
inline constexpr std::uint16_t kFlagHeap = 0x2;    // oversize heap fallback

/// 16-byte header preceding every op-state payload. The refcount is a
/// union: arena mode uses the plain counter (no atomic RMW per OpRef
/// copy), pool mode the atomic one; `flags` selects which member is
/// active for the block's whole lifetime.
struct OpHeader {
  OpArena* arena;
  union Refs {
    std::uint32_t plain;
    std::atomic<std::uint32_t> atomic;
    Refs() {}  // active member chosen by OpArena::allocate_op
  } refs;
  std::uint16_t cls;
  std::uint16_t flags;
};
static_assert(sizeof(OpHeader) == 16, "OpRef payload alignment depends on this");
static_assert(alignof(OpHeader) <= alignof(std::max_align_t));

/// Pool-mode recycling: one list per (thread, size class), mirroring the
/// retired PoolAllocator. Runtime-indexed (the class is only known from
/// the header), so pool mode pays the TLS lookup the arena avoids.
struct PoolFreeLists {
  std::array<std::vector<void*>, kClasses> lists;
  PoolFreeLists() = default;
  PoolFreeLists(const PoolFreeLists&) = delete;
  PoolFreeLists& operator=(const PoolFreeLists&) = delete;
  ~PoolFreeLists() {
    for (auto& list : lists)
      for (void* block : list) ::operator delete(block);
  }
};

inline PoolFreeLists& pool_free_lists() {
  thread_local PoolFreeLists lists;
  return lists;
}

void retain(OpHeader* h) noexcept;
bool release(OpHeader* h) noexcept;
void free_raw(OpHeader* h) noexcept;

}  // namespace op_detail

/// Per-engine allocator for op state. Owned by the EventQueue (one per
/// classic engine, one per shard), so every op allocated against an
/// engine is freed before that engine's arena dies, and no thread_local
/// lookup sits on the alloc path. Blocks are bump-allocated from
/// size-class slabs and recycled through intrusive per-class free lists
/// (a freed block's first 8 bytes become the next pointer). Slabs are
/// retained across reset(), so a reused engine reaches steady state with
/// zero further global-heap traffic -- heap_allocations() counts exactly
/// the acquisitions that do happen (slabs + oversize fallbacks + pool
/// misses) so the perf harness can assert the steady-state count stays
/// flat.
///
/// Thread ownership: arena mode is deliberately non-atomic, which is
/// only sound because an engine's ops live and die on one shard thread.
/// Debug builds enforce that: bind_owner()/release_owner() scope the
/// owning thread (ShardedSimulator binds around run_shard), and every
/// arena-mode alloc/free/refcount op asserts the caller is the owner --
/// permissively passing while unbound, which covers main-thread
/// construction and post-join teardown.
class OpArena {
 public:
  explicit OpArena(OpAlloc mode = OpAlloc::kArena) : mode_(mode) {}
  OpArena(const OpArena&) = delete;
  OpArena& operator=(const OpArena&) = delete;
  ~OpArena() {
    for (auto& c : classes_)
      for (char* slab : c.slabs) ::operator delete(slab);
  }

  OpAlloc mode() const { return mode_; }

  /// Global-heap acquisitions made through this arena: slab grabs,
  /// oversize fallbacks, and (pool mode) free-list misses. The perf
  /// harness asserts the delta over a steady-state segment is zero.
  std::uint64_t heap_allocations() const { return heap_allocations_; }

  /// Number of retained slabs across all classes (introspection/tests).
  std::size_t slab_count() const {
    std::size_t n = 0;
    for (const auto& c : classes_) n += c.slabs.size();
    return n;
  }

  /// Rewind every class to the start of its retained slabs and drop the
  /// free lists. Precondition: no live OpRefs against this arena -- the
  /// engine calls this only at run teardown.
  void reset() {
    for (auto& c : classes_) {
      c.slab_idx = 0;
      c.offset = 0;
      c.free_head = nullptr;
    }
  }

#ifndef NDEBUG
  void bind_owner() {
    owner_ = std::this_thread::get_id();
    bound_ = true;
  }
  void release_owner() { bound_ = false; }
  void debug_check_owner() const {
    assert((!bound_ || owner_ == std::this_thread::get_id()) &&
           "arena-mode op state touched off its owning shard thread");
  }
#else
  void bind_owner() {}
  void release_owner() {}
  void debug_check_owner() const {}
#endif

  /// Allocate a block for a `payload_bytes` op, write its header with a
  /// refcount of 1, and return the payload pointer. Internal -- use
  /// make_op().
  void* allocate_op(std::size_t payload_bytes) {
    const std::size_t total = payload_bytes + sizeof(op_detail::OpHeader);
    const std::size_t cls = op_detail::class_for(total);
    op_detail::OpHeader* h;
    std::uint16_t flags = 0;
    if (cls >= op_detail::kClasses) {
      h = static_cast<op_detail::OpHeader*>(::operator new(total));
      ++heap_allocations_;
      flags = op_detail::kFlagHeap;
      if (mode_ == OpAlloc::kPool) flags |= op_detail::kFlagAtomic;
    } else if (mode_ == OpAlloc::kArena) {
      debug_check_owner();
      h = static_cast<op_detail::OpHeader*>(arena_block(cls));
    } else {
      flags = op_detail::kFlagAtomic;
      auto& list = op_detail::pool_free_lists().lists[cls];
      if (!list.empty()) {
        h = static_cast<op_detail::OpHeader*>(list.back());
        list.pop_back();
      } else {
        h = static_cast<op_detail::OpHeader*>(
            ::operator new(op_detail::kClassBytes[cls]));
        ++heap_allocations_;
      }
    }
    h->arena = this;
    h->cls = static_cast<std::uint16_t>(cls);
    h->flags = flags;
    if (flags & op_detail::kFlagAtomic)
      new (&h->refs.atomic) std::atomic<std::uint32_t>(1);
    else
      h->refs.plain = 1;
    return h + 1;
  }

  /// Return an arena-mode block to its class free list. Internal.
  void free_arena_block(op_detail::OpHeader* h) noexcept {
    debug_check_owner();
    SizeClass& c = classes_[h->cls];
    *reinterpret_cast<void**>(h) = c.free_head;
    c.free_head = h;
  }

 private:
  struct SizeClass {
    std::vector<char*> slabs;
    std::size_t slab_idx = 0;   // slab currently being bumped
    std::size_t offset = 0;     // bump offset within it
    void* free_head = nullptr;  // intrusive LIFO of freed blocks
  };

  void* arena_block(std::size_t cls) {
    SizeClass& c = classes_[cls];
    if (c.free_head) {
      void* b = c.free_head;
      c.free_head = *static_cast<void**>(b);
      return b;
    }
    const std::size_t bytes = op_detail::kClassBytes[cls];
    if (c.slab_idx >= c.slabs.size() ||
        c.offset + bytes > op_detail::kSlabBytes) {
      if (c.slab_idx < c.slabs.size()) {
        ++c.slab_idx;  // current slab exhausted; move to the next retained one
        c.offset = 0;
      }
      if (c.slab_idx >= c.slabs.size()) {
        c.slabs.push_back(
            static_cast<char*>(::operator new(op_detail::kSlabBytes)));
        ++heap_allocations_;
      }
    }
    void* b = c.slabs[c.slab_idx] + c.offset;
    c.offset += bytes;
    return b;
  }

  OpAlloc mode_;
  std::array<SizeClass, op_detail::kClasses> classes_;
  std::uint64_t heap_allocations_ = 0;
#ifndef NDEBUG
  std::thread::id owner_;
  bool bound_ = false;
#endif
};

namespace op_detail {

inline void retain(OpHeader* h) noexcept {
  if (h->flags & kFlagAtomic) {
    h->refs.atomic.fetch_add(1, std::memory_order_relaxed);
  } else {
#ifndef NDEBUG
    h->arena->debug_check_owner();
#endif
    ++h->refs.plain;
  }
}

/// Drop one reference; true when the count hit zero and the payload must
/// be destroyed.
inline bool release(OpHeader* h) noexcept {
  if (h->flags & kFlagAtomic)
    return h->refs.atomic.fetch_sub(1, std::memory_order_acq_rel) == 1;
#ifndef NDEBUG
  h->arena->debug_check_owner();
#endif
  return --h->refs.plain == 0;
}

/// Return a block (payload already destroyed) to wherever it came from.
inline void free_raw(OpHeader* h) noexcept {
  if (h->flags & kFlagHeap) {
    ::operator delete(h);
    return;
  }
  if (h->flags & kFlagAtomic) {
    auto& list = pool_free_lists().lists[h->cls];
    if (list.size() >= kMaxPoolFree) {
      ::operator delete(h);
      return;
    }
    try {
      list.push_back(h);
    } catch (...) {
      ::operator delete(h);  // push_back OOM: just release the block
    }
    return;
  }
  h->arena->free_arena_block(h);
}

}  // namespace op_detail

template <typename T, typename... Args>
OpRef<T> make_op(OpArena& arena, Args&&... args);

/// Intrusive-refcount handle for op state, 8 bytes (one raw pointer).
/// Replaces std::shared_ptr on the request hot path: in arena mode a
/// copy is a plain increment -- no atomic RMW, no control block, no TLS.
/// Copyable and movable; freely capturable in event callbacks (the
/// owning arena lives inside the EventQueue and outlives every pending
/// callback).
template <typename T>
class OpRef {
 public:
  OpRef() noexcept = default;
  OpRef(std::nullptr_t) noexcept {}
  OpRef(const OpRef& o) noexcept : ptr_(o.ptr_) {
    if (ptr_) op_detail::retain(header(ptr_));
  }
  OpRef(OpRef&& o) noexcept : ptr_(o.ptr_) { o.ptr_ = nullptr; }
  OpRef& operator=(const OpRef& o) noexcept {
    OpRef tmp(o);  // copy-then-swap: self-assignment safe
    swap(tmp);
    return *this;
  }
  OpRef& operator=(OpRef&& o) noexcept {
    OpRef tmp(std::move(o));
    swap(tmp);
    return *this;
  }
  ~OpRef() { reset(); }

  void reset() noexcept {
    if (!ptr_) return;
    T* p = ptr_;
    ptr_ = nullptr;
    op_detail::OpHeader* h = header(p);
    if (op_detail::release(h)) {
      p->~T();
      op_detail::free_raw(h);
    }
  }

  void swap(OpRef& o) noexcept { std::swap(ptr_, o.ptr_); }

  T* get() const noexcept { return ptr_; }
  T& operator*() const noexcept { return *ptr_; }
  T* operator->() const noexcept { return ptr_; }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }

  friend bool operator==(const OpRef& a, const OpRef& b) noexcept {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator!=(const OpRef& a, const OpRef& b) noexcept {
    return a.ptr_ != b.ptr_;
  }
  friend bool operator==(const OpRef& a, std::nullptr_t) noexcept {
    return a.ptr_ == nullptr;
  }
  friend bool operator!=(const OpRef& a, std::nullptr_t) noexcept {
    return a.ptr_ != nullptr;
  }

  /// Current reference count (tests/introspection only).
  std::uint32_t use_count() const noexcept {
    if (!ptr_) return 0;
    const op_detail::OpHeader* h = header(ptr_);
    return (h->flags & op_detail::kFlagAtomic)
               ? h->refs.atomic.load(std::memory_order_relaxed)
               : h->refs.plain;
  }

 private:
  template <typename U, typename... Args>
  friend OpRef<U> make_op(OpArena&, Args&&...);

  struct Adopt {};
  OpRef(T* adopted, Adopt) noexcept : ptr_(adopted) {}

  static op_detail::OpHeader* header(const T* p) noexcept {
    return reinterpret_cast<op_detail::OpHeader*>(
               reinterpret_cast<char*>(const_cast<T*>(p))) -
           1;
  }

  T* ptr_ = nullptr;
};

/// make_shared equivalent against an engine's arena: one block holding
/// header + object, recycled through the arena's (or, in pool mode, the
/// thread's) free lists.
template <typename T, typename... Args>
OpRef<T> make_op(OpArena& arena, Args&&... args) {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned op state is not supported");
  void* payload = arena.allocate_op(sizeof(T));
  try {
    new (payload) T(std::forward<Args>(args)...);
  } catch (...) {
    op_detail::free_raw(static_cast<op_detail::OpHeader*>(payload) - 1);
    throw;
  }
  return OpRef<T>(static_cast<T*>(payload), typename OpRef<T>::Adopt{});
}

}  // namespace raidsim
