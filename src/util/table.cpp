#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace raidsim {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ") << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace raidsim
