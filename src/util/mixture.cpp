#include "util/mixture.hpp"

#include <cmath>
#include <stdexcept>

namespace raidsim {

namespace {
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

LognormalMixture::LognormalMixture(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty())
    throw std::invalid_argument("LognormalMixture: no components");
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight < 0.0 || c.median <= 0.0 || c.sigma <= 0.0)
      throw std::invalid_argument("LognormalMixture: bad component");
    total += c.weight;
  }
  if (total <= 0.0) throw std::invalid_argument("LognormalMixture: zero weight");
  double cum = 0.0;
  cum_weight_.reserve(components_.size());
  for (const auto& c : components_) {
    cum += c.weight / total;
    cum_weight_.push_back(cum);
  }
  cum_weight_.back() = 1.0;
}

double LognormalMixture::sample(Rng& rng) const {
  const double u = rng.uniform();
  std::size_t i = 0;
  while (i + 1 < cum_weight_.size() && u >= cum_weight_[i]) ++i;
  const auto& c = components_[i];
  return rng.lognormal(std::log(c.median), c.sigma);
}

double LognormalMixture::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  double cdf = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const double w = cum_weight_[i] - prev;
    prev = cum_weight_[i];
    const auto& c = components_[i];
    cdf += w * normal_cdf((std::log(x) - std::log(c.median)) / c.sigma);
  }
  return cdf;
}

}  // namespace raidsim
