#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace raidsim {

/// Non-volatile controller cache (Section 3.4). One instance per array;
/// keys are array-local logical block numbers. The cache holds three
/// kinds of entries, all competing for the same `capacity` slots:
///
///  * data blocks (clean or dirty), managed by strict LRU;
///  * old-data copies, captured when a clean block is dirtied in parity
///    organizations so the destage write does not have to re-read the old
///    data from disk; they age through the same LRU list; and
///  * parity-update slots (RAID4 parity caching), which are pinned (the
///    spooler owns their order) and only accounted for capacity.
///
/// Dirty blocks and in-flight (being-destaged) blocks are never evicted;
/// when no evictable entry exists, insertions fail and the controller
/// stalls the request, which reproduces the paper's "writes have to wait
/// for a block to become free" behaviour.
class NvCache {
 public:
  NvCache(std::size_t capacity_blocks, bool retain_old_data);

  struct Stats {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t old_evictions = 0;
    std::uint64_t dirty_evictions = 0;   // evicted-dirty (sync writeback)
    std::uint64_t stalls = 0;            // failed insertions
    std::uint64_t old_captures = 0;

    double read_hit_ratio() const {
      const auto total = read_hits + read_misses;
      return total ? static_cast<double>(read_hits) /
                         static_cast<double>(total)
                   : 0.0;
    }
    double write_hit_ratio() const {
      const auto total = write_hits + write_misses;
      return total ? static_cast<double>(write_hits) /
                         static_cast<double>(total)
                   : 0.0;
    }
  };

  // ------------------------------------------------------------- reads

  /// Probe for a read. Hit: block moved to MRU, returns true.
  /// Records hit/miss statistics.
  bool read(std::int64_t block);

  /// Probe without statistics or LRU movement.
  bool contains(std::int64_t block) const;

  struct InsertResult {
    bool inserted = false;       // false: every entry is pinned (stall)
    bool evicted_dirty = false;  // victim was dirty; caller must write it
    std::int64_t victim = -1;    // block id of the dirty victim
  };

  /// Install a block fetched after a read miss (clean, MRU).
  InsertResult insert_clean(std::int64_t block);

  // ------------------------------------------------------------ writes

  struct WriteResult {
    bool accepted = false;
    bool hit = false;
    bool evicted_dirty = false;
    std::int64_t victim = -1;
    bool captured_old = false;
  };

  /// Apply a write. Hit: block dirtied in place (capturing the old copy
  /// in parity mode when the block was clean). Miss: block installed
  /// dirty at MRU, evicting per LRU.
  WriteResult write(std::int64_t block);

  // ----------------------------------------------------------- destage

  /// Dirty blocks not currently being destaged, in no particular order.
  std::vector<std::int64_t> collect_dirty() const;

  bool is_dirty(std::int64_t block) const;

  /// Dirty and not currently in flight (safe to begin_destage).
  bool destage_eligible(std::int64_t block) const;
  bool has_old(std::int64_t block) const { return old_set_.count(block) > 0; }
  std::size_t dirty_count() const { return dirty_set_.size(); }

  /// Mark a dirty block as being written back.
  void begin_destage(std::int64_t block);

  /// Destage write finished: block becomes clean unless re-dirtied while
  /// in flight; its old-data entry is released.
  void end_destage(std::int64_t block);

  /// Cancel an announced destage (e.g. no parity slot available): the
  /// block stays dirty and becomes eligible again.
  void abort_destage(std::int64_t block);

  // --------------------------------------------- parity slots (RAID4)

  /// Reserve one pinned slot for a buffered parity update; may evict
  /// clean data. Returns false (stall) when no evictable entry exists.
  bool try_reserve_parity_slot();
  void release_parity_slot();
  std::size_t parity_slots() const { return parity_slots_; }

  // ------------------------------------------------------------- crash

  /// Controller crash. `preserve` models battery-backed NVRAM: the data
  /// contents survive, but in-flight destage state is reset (the disk
  /// writes died with the power) and old-data captures are dropped --
  /// after a crash the controller cannot know whether a destage's data
  /// write landed, so retained old copies are no longer a safe delta
  /// source. Pinned parity slots are released in both modes -- the
  /// spooled parity deltas they back live in controller volatile memory
  /// and never survive. Without `preserve` everything is wiped.
  void crash_reset(bool preserve);

  // ------------------------------------------------------------- misc

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size() + parity_slots_; }
  std::size_t old_entries() const { return old_set_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::int64_t key;  // data: block*2, old copy: block*2+1
    bool dirty = false;
    bool in_flight = false;
    bool redirtied = false;
  };
  using LruList = std::list<Entry>;

  static std::int64_t data_key(std::int64_t block) { return block * 2; }
  static std::int64_t old_key(std::int64_t block) { return block * 2 + 1; }

  /// Evict one entry to make room. Returns false when nothing is
  /// evictable. On success fills `evicted_dirty`/`victim` (never actually
  /// evicts dirty entries unless `allow_dirty`). `protect`, when given,
  /// names an entry that must not be chosen as the victim (used when
  /// making room on behalf of an entry already in the cache).
  bool make_room(bool allow_dirty, bool& evicted_dirty, std::int64_t& victim,
                 const Entry* protect = nullptr);

  void erase_entry(LruList::iterator it);
  void touch(LruList::iterator it);

  std::size_t capacity_;
  bool retain_old_data_;
  LruList lru_;  // front = MRU
  std::unordered_map<std::int64_t, LruList::iterator> index_;
  std::unordered_set<std::int64_t> dirty_set_;
  std::unordered_set<std::int64_t> old_set_;
  std::size_t parity_slots_ = 0;
  Stats stats_;
};

}  // namespace raidsim
