#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace raidsim {

/// Non-volatile controller cache (Section 3.4). One instance per array;
/// keys are array-local logical block numbers. The cache holds three
/// kinds of entries, all competing for the same `capacity` slots:
///
///  * data blocks (clean or dirty), managed by strict LRU;
///  * old-data copies, captured when a clean block is dirtied in parity
///    organizations so the destage write does not have to re-read the old
///    data from disk; they age through the same LRU list; and
///  * parity-update slots (RAID4 parity caching), which are pinned (the
///    spooler owns their order) and only accounted for capacity.
///
/// Dirty blocks and in-flight (being-destaged) blocks are never evicted;
/// when no evictable entry exists, insertions fail and the controller
/// stalls the request, which reproduces the paper's "writes have to wait
/// for a block to become free" behaviour.
///
/// Storage: entries live in a slab threaded onto an intrusive
/// doubly-linked LRU list (indices, not pointers, so the slab can grow),
/// and are located through an open-addressing linear-probe index with
/// backward-shift deletion. One simulated cache op is therefore a couple
/// of flat-array probes -- no per-entry heap allocation, no node churn --
/// which matters because every host read/write and every destage pass
/// goes through here.
class NvCache {
 public:
  NvCache(std::size_t capacity_blocks, bool retain_old_data);

  struct Stats {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t old_evictions = 0;
    std::uint64_t dirty_evictions = 0;   // evicted-dirty (sync writeback)
    std::uint64_t stalls = 0;            // failed insertions
    std::uint64_t old_captures = 0;

    double read_hit_ratio() const {
      const auto total = read_hits + read_misses;
      return total ? static_cast<double>(read_hits) /
                         static_cast<double>(total)
                   : 0.0;
    }
    double write_hit_ratio() const {
      const auto total = write_hits + write_misses;
      return total ? static_cast<double>(write_hits) /
                         static_cast<double>(total)
                   : 0.0;
    }
  };

  // ------------------------------------------------------------- reads

  /// Probe for a read. Hit: block moved to MRU, returns true.
  /// Records hit/miss statistics.
  bool read(std::int64_t block);

  /// Probe without statistics or LRU movement.
  bool contains(std::int64_t block) const {
    return index_find(data_key(block)) != kNil;
  }

  struct InsertResult {
    bool inserted = false;       // false: every entry is pinned (stall)
    bool evicted_dirty = false;  // victim was dirty; caller must write it
    std::int64_t victim = -1;    // block id of the dirty victim
  };

  /// Install a block fetched after a read miss (clean, MRU).
  InsertResult insert_clean(std::int64_t block);

  // ------------------------------------------------------------ writes

  struct WriteResult {
    bool accepted = false;
    bool hit = false;
    bool evicted_dirty = false;
    std::int64_t victim = -1;
    bool captured_old = false;
  };

  /// Apply a write. Hit: block dirtied in place (capturing the old copy
  /// in parity mode when the block was clean). Miss: block installed
  /// dirty at MRU, evicting per LRU.
  WriteResult write(std::int64_t block);

  // ----------------------------------------------------------- destage

  /// Dirty blocks not currently being destaged, in no particular order.
  std::vector<std::int64_t> collect_dirty() const;

  bool is_dirty(std::int64_t block) const {
    const std::int32_t slot = index_find(data_key(block));
    return slot != kNil && slab_[static_cast<std::size_t>(slot)].dirty;
  }

  /// Dirty and not currently in flight (safe to begin_destage).
  bool destage_eligible(std::int64_t block) const;
  bool has_old(std::int64_t block) const {
    return index_find(old_key(block)) != kNil;
  }
  std::size_t dirty_count() const { return dirty_count_; }

  /// Mark a dirty block as being written back.
  void begin_destage(std::int64_t block);

  /// Destage write finished: block becomes clean unless re-dirtied while
  /// in flight; its old-data entry is released.
  void end_destage(std::int64_t block);

  /// Cancel an announced destage (e.g. no parity slot available): the
  /// block stays dirty and becomes eligible again.
  void abort_destage(std::int64_t block);

  // --------------------------------------------- parity slots (RAID4)

  /// Reserve one pinned slot for a buffered parity update; may evict
  /// clean data. Returns false (stall) when no evictable entry exists.
  bool try_reserve_parity_slot();
  void release_parity_slot();
  std::size_t parity_slots() const { return parity_slots_; }

  // ------------------------------------------------------------- crash

  /// Controller crash. `preserve` models battery-backed NVRAM: the data
  /// contents survive, but in-flight destage state is reset (the disk
  /// writes died with the power) and old-data captures are dropped --
  /// after a crash the controller cannot know whether a destage's data
  /// write landed, so retained old copies are no longer a safe delta
  /// source. Pinned parity slots are released in both modes -- the
  /// spooled parity deltas they back live in controller volatile memory
  /// and never survive. Without `preserve` everything is wiped.
  void crash_reset(bool preserve);

  // ------------------------------------------------------------- misc

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return live_ + parity_slots_; }
  std::size_t old_entries() const { return old_count_; }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Entry {
    std::int64_t key = 0;  // data: block*2, old copy: block*2+1
    std::int32_t prev = kNil;  // toward MRU
    std::int32_t next = kNil;  // toward LRU
    // Dirty-list links (valid only while a data entry is dirty), so the
    // destage timer's collect_dirty() walk is O(dirty blocks) instead of
    // O(cache capacity) -- mostly-clean caches are the common state.
    std::int32_t dprev = kNil;
    std::int32_t dnext = kNil;
    bool dirty = false;
    bool in_flight = false;
    bool redirtied = false;
  };

  static std::int64_t data_key(std::int64_t block) { return block * 2; }
  static std::int64_t old_key(std::int64_t block) { return block * 2 + 1; }
  static std::size_t hash_key(std::int64_t key) {
    // splitmix64 finalizer: block keys are sequential, so the index
    // needs real avalanche to keep probe chains short.
    auto x = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  // Intrusive LRU list over the slab. head = MRU, tail = LRU.
  void lru_push_front(std::int32_t slot);
  void lru_unlink(std::int32_t slot);
  void touch(std::int32_t slot);

  // Intrusive list of dirty data entries (unordered; the destage path
  // sorts what it collects).
  void dirty_link(std::int32_t slot);
  void dirty_unlink(std::int32_t slot);

  // Open-addressing index: table of slab slots, linear probing,
  // backward-shift deletion, grown at 50% load.
  std::int32_t index_find(std::int64_t key) const;
  void index_insert(std::int64_t key, std::int32_t slot);
  void index_erase(std::int64_t key);
  void index_grow();

  /// Allocate a slab entry (recycling freed slots), link it at MRU, and
  /// index it. The caller maintains the dirty/old counters.
  std::int32_t create_entry(std::int64_t key, bool dirty);

  /// Unlink + unindex + recycle one entry, maintaining the counters.
  void erase_slot(std::int32_t slot);

  /// Evict one entry to make room. Returns false when nothing is
  /// evictable. On success fills `evicted_dirty`/`victim` (never actually
  /// evicts dirty entries unless `allow_dirty`). `protect`, when given,
  /// names a slab slot that must not be chosen as the victim (used when
  /// making room on behalf of an entry already in the cache).
  bool make_room(bool allow_dirty, bool& evicted_dirty, std::int64_t& victim,
                 std::int32_t protect = kNil);

  std::size_t capacity_;
  bool retain_old_data_;

  std::vector<Entry> slab_;
  std::vector<std::int32_t> free_slots_;
  std::int32_t head_ = kNil;  // MRU
  std::int32_t tail_ = kNil;  // LRU
  std::int32_t dirty_head_ = kNil;
  std::size_t live_ = 0;      // entries on the LRU list

  std::vector<std::int32_t> table_;  // slab slots; kNil = empty
  std::size_t mask_ = 0;             // table_.size() - 1 (power of two)

  std::size_t dirty_count_ = 0;
  std::size_t old_count_ = 0;
  std::size_t parity_slots_ = 0;
  Stats stats_;
};

}  // namespace raidsim
