#include "cache/nv_cache.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace raidsim {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

NvCache::NvCache(std::size_t capacity_blocks, bool retain_old_data)
    : capacity_(capacity_blocks), retain_old_data_(retain_old_data) {
  if (capacity_blocks == 0)
    throw std::invalid_argument("NvCache: zero capacity");
  // Pre-size for the common case (a few thousand to a few hundred
  // thousand blocks per array); a pathologically large capacity grows on
  // demand instead of reserving gigabytes up front.
  const std::size_t expected = std::min<std::size_t>(capacity_, 1u << 20);
  slab_.reserve(expected);
  table_.assign(next_pow2(std::max<std::size_t>(16, expected * 2)), kNil);
  mask_ = table_.size() - 1;
}

// ---------------------------------------------------------- LRU list

void NvCache::lru_push_front(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) slab_[static_cast<std::size_t>(head_)].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void NvCache::lru_unlink(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  if (e.prev != kNil)
    slab_[static_cast<std::size_t>(e.prev)].next = e.next;
  else
    head_ = e.next;
  if (e.next != kNil)
    slab_[static_cast<std::size_t>(e.next)].prev = e.prev;
  else
    tail_ = e.prev;
}

void NvCache::touch(std::int32_t slot) {
  if (slot == head_) return;
  lru_unlink(slot);
  lru_push_front(slot);
}

// --------------------------------------------------------- dirty list

void NvCache::dirty_link(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.dprev = kNil;
  e.dnext = dirty_head_;
  if (dirty_head_ != kNil)
    slab_[static_cast<std::size_t>(dirty_head_)].dprev = slot;
  dirty_head_ = slot;
}

void NvCache::dirty_unlink(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  if (e.dprev != kNil)
    slab_[static_cast<std::size_t>(e.dprev)].dnext = e.dnext;
  else
    dirty_head_ = e.dnext;
  if (e.dnext != kNil)
    slab_[static_cast<std::size_t>(e.dnext)].dprev = e.dprev;
  e.dprev = kNil;
  e.dnext = kNil;
}

// --------------------------------------------------------- hash index

std::int32_t NvCache::index_find(std::int64_t key) const {
  std::size_t i = hash_key(key) & mask_;
  for (;;) {
    const std::int32_t slot = table_[i];
    if (slot == kNil) return kNil;
    if (slab_[static_cast<std::size_t>(slot)].key == key) return slot;
    i = (i + 1) & mask_;
  }
}

void NvCache::index_insert(std::int64_t key, std::int32_t slot) {
  if ((live_ + 1) * 2 > table_.size()) index_grow();
  std::size_t i = hash_key(key) & mask_;
  while (table_[i] != kNil) i = (i + 1) & mask_;
  table_[i] = slot;
}

void NvCache::index_erase(std::int64_t key) {
  std::size_t i = hash_key(key) & mask_;
  for (;;) {
    const std::int32_t slot = table_[i];
    assert(slot != kNil && "index_erase: key not present");
    if (slot != kNil &&
        slab_[static_cast<std::size_t>(slot)].key == key)
      break;
    if (slot == kNil) return;
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion: walk the probe chain and pull every entry
  // whose home position precedes the hole back into it, so lookups never
  // need tombstones.
  std::size_t hole = i;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask_;
    const std::int32_t slot = table_[j];
    if (slot == kNil) break;
    const std::size_t home =
        hash_key(slab_[static_cast<std::size_t>(slot)].key) & mask_;
    if (((j - home) & mask_) >= ((j - hole) & mask_)) {
      table_[hole] = slot;
      hole = j;
    }
  }
  table_[hole] = kNil;
}

void NvCache::index_grow() {
  std::vector<std::int32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kNil);
  mask_ = table_.size() - 1;
  for (const std::int32_t slot : old) {
    if (slot == kNil) continue;
    std::size_t i =
        hash_key(slab_[static_cast<std::size_t>(slot)].key) & mask_;
    while (table_[i] != kNil) i = (i + 1) & mask_;
    table_[i] = slot;
  }
}

// -------------------------------------------------------- entry slab

std::int32_t NvCache::create_entry(std::int64_t key, bool dirty) {
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(slab_.size());
    slab_.emplace_back();
  }
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.key = key;
  e.dirty = dirty;
  e.in_flight = false;
  e.redirtied = false;
  e.dprev = kNil;
  e.dnext = kNil;
  lru_push_front(slot);
  index_insert(key, slot);
  ++live_;
  if (dirty) dirty_link(slot);
  return slot;
}

void NvCache::erase_slot(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  const std::int64_t key = e.key;
  if (key % 2 == 1) {
    --old_count_;
  } else if (e.dirty) {
    --dirty_count_;
    dirty_unlink(slot);
  }
  index_erase(key);
  lru_unlink(slot);
  free_slots_.push_back(slot);
  --live_;
}

bool NvCache::make_room(bool allow_dirty, bool& evicted_dirty,
                        std::int64_t& victim, std::int32_t protect) {
  evicted_dirty = false;
  victim = -1;
  if (size() < capacity_) return true;
  if (live_ == 0) return false;  // cache entirely pinned by parity slots
  for (std::int32_t s = tail_; s != kNil;
       s = slab_[static_cast<std::size_t>(s)].prev) {
    Entry& e = slab_[static_cast<std::size_t>(s)];
    if (s != protect && !e.in_flight && (allow_dirty || !e.dirty)) {
      ++stats_.evictions;
      const std::int64_t key = e.key;
      if (key % 2 == 1) ++stats_.old_evictions;
      if (e.dirty) {
        ++stats_.dirty_evictions;
        evicted_dirty = true;
        victim = key / 2;
        // A dirty data block leaving the cache makes its old copy useless.
        const std::int32_t old_slot = index_find(old_key(victim));
        if (old_slot != kNil) erase_slot(old_slot);
      }
      erase_slot(s);
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------- reads

bool NvCache::read(std::int64_t block) {
  const std::int32_t slot = index_find(data_key(block));
  if (slot != kNil) {
    touch(slot);
    ++stats_.read_hits;
    return true;
  }
  ++stats_.read_misses;
  return false;
}

NvCache::InsertResult NvCache::insert_clean(std::int64_t block) {
  InsertResult result;
  if (contains(block)) {  // raced with another fetch of the same block
    result.inserted = true;
    return result;
  }
  if (!make_room(/*allow_dirty=*/true, result.evicted_dirty, result.victim)) {
    ++stats_.stalls;
    return result;
  }
  create_entry(data_key(block), /*dirty=*/false);
  result.inserted = true;
  return result;
}

// ------------------------------------------------------------ writes

NvCache::WriteResult NvCache::write(std::int64_t block) {
  WriteResult result;
  const std::int32_t slot = index_find(data_key(block));
  if (slot != kNil) {
    ++stats_.write_hits;
    result.accepted = true;
    result.hit = true;
    {
      Entry& entry = slab_[static_cast<std::size_t>(slot)];
      if (entry.in_flight) entry.redirtied = true;
    }
    if (!slab_[static_cast<std::size_t>(slot)].dirty) {
      // Capture the on-disk version so the destage will not need to
      // re-read the old data (parity organizations only). Skipped when it
      // would require evicting a dirty block.
      if (retain_old_data_ && index_find(old_key(block)) == kNil) {
        bool evicted_dirty = false;
        std::int64_t victim = -1;
        if (make_room(/*allow_dirty=*/false, evicted_dirty, victim,
                      /*protect=*/slot)) {
          create_entry(old_key(block), /*dirty=*/false);
          ++old_count_;
          result.captured_old = true;
          ++stats_.old_captures;
        }
      }
      slab_[static_cast<std::size_t>(slot)].dirty = true;
      ++dirty_count_;
      dirty_link(slot);
    }
    touch(slot);
    return result;
  }

  ++stats_.write_misses;
  if (!make_room(/*allow_dirty=*/true, result.evicted_dirty, result.victim)) {
    ++stats_.stalls;
    return result;  // accepted == false: controller must stall the write
  }
  create_entry(data_key(block), /*dirty=*/true);
  ++dirty_count_;
  result.accepted = true;
  return result;
}

// ----------------------------------------------------------- destage

std::vector<std::int64_t> NvCache::collect_dirty() const {
  std::vector<std::int64_t> out;
  out.reserve(dirty_count_);
  for (std::int32_t s = dirty_head_; s != kNil;
       s = slab_[static_cast<std::size_t>(s)].dnext) {
    const Entry& e = slab_[static_cast<std::size_t>(s)];
    if (!e.in_flight) out.push_back(e.key / 2);
  }
  return out;
}

bool NvCache::destage_eligible(std::int64_t block) const {
  const std::int32_t slot = index_find(data_key(block));
  if (slot == kNil) return false;
  const Entry& e = slab_[static_cast<std::size_t>(slot)];
  return e.dirty && !e.in_flight;
}

void NvCache::begin_destage(std::int64_t block) {
  const std::int32_t slot = index_find(data_key(block));
  assert(slot != kNil && slab_[static_cast<std::size_t>(slot)].dirty);
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.in_flight = true;
  e.redirtied = false;
}

void NvCache::end_destage(std::int64_t block) {
  const std::int32_t slot = index_find(data_key(block));
  if (slot == kNil) return;  // evicted while in flight (shouldn't happen)
  Entry& entry = slab_[static_cast<std::size_t>(slot)];
  entry.in_flight = false;
  if (entry.redirtied) {
    entry.redirtied = false;  // stays dirty; old copy now reflects disk
    return;
  }
  entry.dirty = false;
  --dirty_count_;
  dirty_unlink(slot);
  // The destage freed the old copy (Section 3.4: the destage process
  // "frees up space in the cache by getting rid of blocks holding old
  // data").
  const std::int32_t old_slot = index_find(old_key(block));
  if (old_slot != kNil) erase_slot(old_slot);
}

void NvCache::abort_destage(std::int64_t block) {
  const std::int32_t slot = index_find(data_key(block));
  if (slot == kNil) return;
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.in_flight = false;
  e.redirtied = false;
}

// ------------------------------------------------------ parity slots

bool NvCache::try_reserve_parity_slot() {
  bool evicted_dirty = false;
  std::int64_t victim = -1;
  if (!make_room(/*allow_dirty=*/false, evicted_dirty, victim)) {
    ++stats_.stalls;
    return false;
  }
  ++parity_slots_;
  return true;
}

void NvCache::release_parity_slot() {
  assert(parity_slots_ > 0);
  --parity_slots_;
}

// ------------------------------------------------------------- crash

void NvCache::crash_reset(bool preserve) {
  if (!preserve) {
    slab_.clear();
    free_slots_.clear();
    head_ = tail_ = kNil;
    dirty_head_ = kNil;
    live_ = 0;
    std::fill(table_.begin(), table_.end(), kNil);
    dirty_count_ = 0;
    old_count_ = 0;
    parity_slots_ = 0;
    return;
  }
  // Battery NVRAM: contents survive, but every in-flight destage died
  // with its disk write -- the blocks stay dirty and become eligible
  // again -- and old-data captures are invalidated (ambiguous after the
  // crash; the next destage re-reads old content from disk). Parity
  // slots empty too: the spooled XOR deltas they reserve space for live
  // in controller volatile memory and did not survive.
  parity_slots_ = 0;
  for (std::int32_t s = head_; s != kNil;) {
    Entry& e = slab_[static_cast<std::size_t>(s)];
    const std::int32_t next = e.next;
    if (e.key % 2 == 1) {
      erase_slot(s);
    } else {
      e.in_flight = false;
      e.redirtied = false;
    }
    s = next;
  }
}

}  // namespace raidsim
