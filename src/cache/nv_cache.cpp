#include "cache/nv_cache.hpp"

#include <cassert>
#include <stdexcept>

namespace raidsim {

NvCache::NvCache(std::size_t capacity_blocks, bool retain_old_data)
    : capacity_(capacity_blocks), retain_old_data_(retain_old_data) {
  if (capacity_blocks == 0)
    throw std::invalid_argument("NvCache: zero capacity");
}

bool NvCache::contains(std::int64_t block) const {
  return index_.count(data_key(block)) > 0;
}

void NvCache::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void NvCache::erase_entry(LruList::iterator it) {
  const std::int64_t key = it->key;
  if (key % 2 == 1) {
    old_set_.erase(key / 2);
  } else {
    dirty_set_.erase(key / 2);
  }
  index_.erase(key);
  lru_.erase(it);
}

bool NvCache::make_room(bool allow_dirty, bool& evicted_dirty,
                        std::int64_t& victim, const Entry* protect) {
  evicted_dirty = false;
  victim = -1;
  if (size() < capacity_) return true;
  if (lru_.empty()) return false;  // cache entirely pinned by parity slots
  for (auto it = std::prev(lru_.end());; --it) {
    if (&*it != protect && !it->in_flight && (allow_dirty || !it->dirty)) {
      ++stats_.evictions;
      const std::int64_t key = it->key;
      if (key % 2 == 1) ++stats_.old_evictions;
      if (it->dirty) {
        ++stats_.dirty_evictions;
        evicted_dirty = true;
        victim = key / 2;
        // A dirty data block leaving the cache makes its old copy useless.
        if (auto old_it = index_.find(old_key(victim)); old_it != index_.end())
          erase_entry(old_it->second);
      }
      erase_entry(it);
      return true;
    }
    if (it == lru_.begin()) break;
  }
  return false;
}

bool NvCache::read(std::int64_t block) {
  auto it = index_.find(data_key(block));
  if (it != index_.end()) {
    touch(it->second);
    ++stats_.read_hits;
    return true;
  }
  ++stats_.read_misses;
  return false;
}

NvCache::InsertResult NvCache::insert_clean(std::int64_t block) {
  InsertResult result;
  if (contains(block)) {  // raced with another fetch of the same block
    result.inserted = true;
    return result;
  }
  if (!make_room(/*allow_dirty=*/true, result.evicted_dirty, result.victim)) {
    ++stats_.stalls;
    return result;
  }
  lru_.push_front(Entry{data_key(block), /*dirty=*/false});
  index_[data_key(block)] = lru_.begin();
  result.inserted = true;
  return result;
}

NvCache::WriteResult NvCache::write(std::int64_t block) {
  WriteResult result;
  auto it = index_.find(data_key(block));
  if (it != index_.end()) {
    ++stats_.write_hits;
    result.accepted = true;
    result.hit = true;
    Entry& entry = *it->second;
    if (entry.in_flight) entry.redirtied = true;
    if (!entry.dirty) {
      // Capture the on-disk version so the destage will not need to
      // re-read the old data (parity organizations only). Skipped when it
      // would require evicting a dirty block.
      if (retain_old_data_ && old_set_.count(block) == 0) {
        bool evicted_dirty = false;
        std::int64_t victim = -1;
        if (make_room(/*allow_dirty=*/false, evicted_dirty, victim,
                      /*protect=*/&entry)) {
          lru_.push_front(Entry{old_key(block), /*dirty=*/false});
          index_[old_key(block)] = lru_.begin();
          old_set_.insert(block);
          result.captured_old = true;
          ++stats_.old_captures;
        }
      }
      entry.dirty = true;
      dirty_set_.insert(block);
    }
    touch(it->second);
    return result;
  }

  ++stats_.write_misses;
  if (!make_room(/*allow_dirty=*/true, result.evicted_dirty, result.victim)) {
    ++stats_.stalls;
    return result;  // accepted == false: controller must stall the write
  }
  lru_.push_front(Entry{data_key(block), /*dirty=*/true});
  index_[data_key(block)] = lru_.begin();
  dirty_set_.insert(block);
  result.accepted = true;
  return result;
}

std::vector<std::int64_t> NvCache::collect_dirty() const {
  std::vector<std::int64_t> out;
  out.reserve(dirty_set_.size());
  for (std::int64_t block : dirty_set_) {
    auto it = index_.find(data_key(block));
    assert(it != index_.end());
    if (!it->second->in_flight) out.push_back(block);
  }
  return out;
}

bool NvCache::is_dirty(std::int64_t block) const {
  return dirty_set_.count(block) > 0;
}

bool NvCache::destage_eligible(std::int64_t block) const {
  auto it = index_.find(data_key(block));
  return it != index_.end() && it->second->dirty && !it->second->in_flight;
}

void NvCache::begin_destage(std::int64_t block) {
  auto it = index_.find(data_key(block));
  assert(it != index_.end() && it->second->dirty);
  it->second->in_flight = true;
  it->second->redirtied = false;
}

void NvCache::end_destage(std::int64_t block) {
  auto it = index_.find(data_key(block));
  if (it == index_.end()) return;  // evicted while in flight (shouldn't happen)
  Entry& entry = *it->second;
  entry.in_flight = false;
  if (entry.redirtied) {
    entry.redirtied = false;  // stays dirty; old copy now reflects disk
    return;
  }
  entry.dirty = false;
  dirty_set_.erase(block);
  // The destage freed the old copy (Section 3.4: the destage process
  // "frees up space in the cache by getting rid of blocks holding old
  // data").
  if (auto old_it = index_.find(old_key(block)); old_it != index_.end())
    erase_entry(old_it->second);
}

void NvCache::abort_destage(std::int64_t block) {
  auto it = index_.find(data_key(block));
  if (it == index_.end()) return;
  it->second->in_flight = false;
  it->second->redirtied = false;
}

bool NvCache::try_reserve_parity_slot() {
  bool evicted_dirty = false;
  std::int64_t victim = -1;
  if (!make_room(/*allow_dirty=*/false, evicted_dirty, victim)) {
    ++stats_.stalls;
    return false;
  }
  ++parity_slots_;
  return true;
}

void NvCache::release_parity_slot() {
  assert(parity_slots_ > 0);
  --parity_slots_;
}

void NvCache::crash_reset(bool preserve) {
  if (!preserve) {
    lru_.clear();
    index_.clear();
    dirty_set_.clear();
    old_set_.clear();
    parity_slots_ = 0;
    return;
  }
  // Battery NVRAM: contents survive, but every in-flight destage died
  // with its disk write -- the blocks stay dirty and become eligible
  // again -- and old-data captures are invalidated (ambiguous after the
  // crash; the next destage re-reads old content from disk). Parity
  // slots empty too: the spooled XOR deltas they reserve space for live
  // in controller volatile memory and did not survive.
  parity_slots_ = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key % 2 == 1) {
      auto victim = it++;
      erase_entry(victim);
      continue;
    }
    it->in_flight = false;
    it->redirtied = false;
    ++it;
  }
}

}  // namespace raidsim
