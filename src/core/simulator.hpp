#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "sim/cancellation.hpp"
#include "sim/event_queue.hpp"
#include "sim/progress.hpp"
#include "trace/record.hpp"

namespace raidsim {

/// Top-level trace-driven simulator. Partitions the traced database's
/// original data disks into arrays of N (Section 3.2's equal-capacity
/// comparison), builds one controller + channel + disks per array, and
/// replays a trace through them.
class Simulator {
 public:
  Simulator(const SimulationConfig& config, const TraceGeometry& geometry);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Replay the whole trace and return aggregate metrics. May be called
  /// once per Simulator instance.
  Metrics run(TraceStream& trace);

  /// External driving (closed-loop workloads, failure drills): submit one
  /// request at the current simulation time. The completion is recorded
  /// in the run metrics and `on_complete` (optional) fires with it.
  /// Drive the event queue via event_queue().step() and finish with
  /// drain_and_finalize() instead of run().
  void submit(const TraceRecord& record,
              std::function<void(SimTime)> on_complete = nullptr);

  /// End an externally driven run: stop periodic background processes,
  /// drain the remaining events, and build the metrics.
  Metrics drain_and_finalize();

  int arrays() const { return static_cast<int>(controllers_.size()); }
  int total_disks() const;
  const ArrayController& controller(int array) const {
    return *controllers_[static_cast<std::size_t>(array)];
  }
  /// Mutable access for failure injection and rebuild orchestration
  /// (fail_disk, RebuildProcess) before or during a run.
  ArrayController& mutable_controller(int array) {
    return *controllers_[static_cast<std::size_t>(array)];
  }
  /// The simulation clock/queue, for co-scheduling background processes
  /// (e.g. RebuildProcess) with the trace replay.
  EventQueue& event_queue() { return eq_; }

  /// Map a database block to (array index, array-local logical block).
  std::pair<int, std::int64_t> route(std::int64_t db_block) const;

  /// Attach a cooperative cancellation token. run() polls it every
  /// kCancelCheckBatch executed events and throws CancelledError when it
  /// fires; in-flight state is reclaimed by normal destruction. Must be
  /// set before run() and outlive the run.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Events executed between cancellation checks. Small enough that a
  /// deadline lands within a few milliseconds of wall time, large enough
  /// that the relaxed atomic load never shows up in a profile.
  static constexpr std::uint64_t kCancelCheckBatch = 4096;

  /// Attach a progress observer fired every kCancelCheckBatch executed
  /// events (plus one final snapshot after the run completes). Must be
  /// set before run(). Passive: hooked runs stay bit-identical to
  /// unhooked ones.
  void set_progress_hook(ProgressFn hook) { progress_ = std::move(hook); }

  /// Request-lifecycle tracer, null unless config.obs.tracing.
  const Tracer* tracer() const { return tracer_.get(); }
  /// Periodic telemetry sampler, null unless config.obs.sample_interval_ms > 0.
  const TimeSeriesSampler* sampler() const { return sampler_.get(); }

 private:
  void pump(TraceStream& trace);
  /// Single bounds check shared by the pump and submit paths.
  void validate_record(const TraceRecord& record) const;
  void dispatch(const TraceRecord& record,
                std::function<void(SimTime)> on_complete = nullptr);
  void maybe_shutdown();
  Metrics finalize();
  void schedule_sample_tick();
  void take_sample();
  void emit_progress(bool final_frame);

  SimulationConfig config_;
  TraceGeometry geometry_;
  // Routing state precomputed from config + geometry so the per-request
  // path does a single divide instead of two divide/modulo pairs.
  std::int64_t blocks_per_array_ = 1;
  std::int64_t total_blocks_ = 0;
  EventQueue eq_;
  const CancelToken* cancel_ = nullptr;
  ProgressFn progress_;
  std::uint64_t progress_total_ = 0;   // trace size hint for the hook
  std::uint64_t metered_events_ = 0;   // events already fed to the registry
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  EventId sampler_event_ = 0;
  std::vector<std::unique_ptr<ArrayController>> controllers_;
  Metrics metrics_;
  double arrival_time_ = 0.0;
  std::uint64_t outstanding_ = 0;
  bool trace_done_ = false;
  bool ran_ = false;
  /// Cleared for streams whose records were bounds-checked at conversion
  /// time (TraceStream::prevalidated), removing the per-record check from
  /// the replay hot path. submit() always validates.
  bool validate_records_ = true;
};

/// Convenience: build a simulator for `config` and replay `trace`.
Metrics run_simulation(const SimulationConfig& config, TraceStream& trace);

}  // namespace raidsim
