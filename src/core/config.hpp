#pragma once

#include <cstdint>
#include <string>

#include "array/cached_controller.hpp"
#include "array/controller.hpp"
#include "disk/geometry.hpp"
#include "disk/seek_model.hpp"
#include "layout/layout.hpp"
#include "sim/event_queue.hpp"

namespace raidsim {

/// Complete configuration of one simulated I/O subsystem. Defaults
/// reproduce the paper's Tables 1 and 4: N = 10, 4 KB blocks, Disk First
/// synchronization, 1-block striping unit, middle-cylinder parity
/// placement, 16 MB cache per array when caching is enabled.
struct SimulationConfig {
  Organization organization = Organization::kRaid5;
  int array_data_disks = 10;  // N
  int striping_unit_blocks = 1;
  SyncPolicy sync = SyncPolicy::kDiskFirst;
  ParityPlacement parity_placement = ParityPlacement::kMiddleCylinders;
  /// Parity Striping only: > 0 rotates the parity-update load across the
  /// disks at this chunk granularity (the paper's Section 5 future-work
  /// variant); 0 = classic Parity Striping.
  int parity_fine_grain_chunk_blocks = 0;

  DiskGeometry disk_geometry;  // Table 1
  SeekSpec seek;               // Table 1 (11.2 ms avg, 28 ms max)
  /// Dispatch order within a disk's priority class. The paper services
  /// requests in arrival order (FIFO); SSTF/SCAN for ablations.
  DiskScheduling disk_scheduling = DiskScheduling::kFifo;
  double channel_mb_per_second = 10.0;
  int track_buffers_per_disk = 5;

  /// Fault handling (fault-injection support): transient errors are
  /// retried with exponential backoff until the budget runs out, at
  /// which point the disk is declared dead.
  int disk_retry_budget = 3;
  double disk_retry_backoff_ms = 5.0;

  bool cached = false;
  std::int64_t cache_bytes = 16ll << 20;  // per array
  double destage_period_ms = 300.0;
  bool retain_old_data = true;
  /// RAID4 with parity caching (Section 4.4). Requires `cached` and
  /// organization == kRaid4.
  bool parity_caching = false;
  /// false = pure LRU writeback; ablation of the periodic destage policy.
  bool periodic_destage = true;
  /// Cached arrays only: record stripe-update intents in an NVRAM journal
  /// so a crash-recovery pass can resync exactly the dirty stripes
  /// instead of the whole array (see docs/fault_model.md).
  bool intent_journal = false;

  /// Intra-run sharding (src/runner/sharded_sim.hpp). 0 = the classic
  /// single-event-queue engine. >= 1 partitions the arrays of THIS run
  /// into that many independent event kernels executed on a thread pool
  /// (clamped to the array count); arrays share no simulation state, so
  /// per-array trajectories are exact, and merged metrics are
  /// bit-identical at any shard/thread count (see docs/performance.md for
  /// how the sharded engine's shutdown discipline differs from the
  /// classic engine's).
  int shards = 0;
  /// Worker threads for the sharded engine; 0 = min(shards, hardware
  /// concurrency). Thread count never changes results, only wall time.
  int shard_threads = 0;

  /// Priority structure backing the event kernel(s). Both kernels
  /// execute bit-identical event sequences (ordering is always exact
  /// (time, seq)); the calendar is faster on simulation workloads, the
  /// heap is the differential-testing yardstick. Excluded from the job
  /// cache key for the same reason shard_threads is: it cannot change
  /// results.
  EventKernel event_kernel = EventKernel::kCalendar;

  /// Allocator backing per-request op state (util/arena.hpp). Arena is
  /// the default: per-engine slabs with non-atomic OpRef refcounts. Pool
  /// reproduces the retired thread-local/atomic cost profile and is the
  /// differential yardstick. Like event_kernel, this cannot change
  /// results -- runs are bit-identical under either -- so it is excluded
  /// from the job cache key.
  OpAlloc op_alloc = OpAlloc::kArena;

  /// Observability (src/obs). Tracing records request-lifecycle spans by
  /// passive appends only -- it never schedules events, so a traced run
  /// executes exactly the same kernel events as an untraced one. The
  /// sampler does tick on the event queue (sample_interval_ms > 0).
  struct Obs {
    bool tracing = false;
    /// Tracer ring capacity; oldest events are overwritten when full.
    std::size_t max_trace_events = 1u << 22;
    double sample_interval_ms = 0.0;  // <= 0 disables the sampler
    std::size_t sampler_capacity = 4096;
  };
  Obs obs;

  /// Tail-tolerance policy applied to every array's demand reads
  /// (docs/fault_model.md, "Fail-slow model"). Disabled by default: a
  /// run with `tail.enabled == false` issues exactly the same events as
  /// one built before the policy existed.
  ArrayController::TailPolicy tail;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;

  /// One-line human-readable summary.
  std::string describe() const;

  ArrayController::Config array_config(int data_disks,
                                       std::int64_t data_blocks_per_disk) const;
  CachedController::CacheConfig cache_config() const;
};

}  // namespace raidsim
