#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/metrics.hpp"

namespace raidsim {

/// Closed-loop workload driver. Section 4.2.4 of the paper cautions that
/// speeding up a trace does not model a faster system, "since
/// transactions may have to wait for one I/O to finish before issuing
/// another one" -- this driver models exactly that feedback: a fixed
/// multiprogramming level of clients, each issuing its next I/O an
/// exponential think time after the previous response returns. Addresses
/// and read/write mix come from the synthetic profile of the named
/// trace; its arrival process is ignored.
struct ClosedLoopOptions {
  int clients = 8;              // multiprogramming level
  double think_time_ms = 50.0;  // mean think time between a client's I/Os
  std::uint64_t requests = 20000;  // total completions to collect
  std::string trace = "trace2";    // address/mix profile
  std::uint64_t seed = 0;          // 0 = the profile's own seed
};

struct ClosedLoopResult {
  Metrics metrics;
  double throughput_io_per_s = 0.0;  // completions per second of sim time

  double mean_response_ms() const { return metrics.mean_response_ms(); }
};

/// Run `options.requests` I/Os through `config` under the closed loop.
ClosedLoopResult run_closed_loop(const SimulationConfig& config,
                                 const ClosedLoopOptions& options);

}  // namespace raidsim
