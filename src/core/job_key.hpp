#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/workloads.hpp"

namespace raidsim {

/// Canonical text form of one simulation point: every
/// result-determining knob of (SimulationConfig, trace, WorkloadOptions)
/// serialized in a fixed field order, doubles printed round-trip exact
/// (%.17g). Two jobs produce byte-identical metrics if and only if their
/// canonical keys are equal, so this string is the result-cache key of
/// the what-if service.
///
/// Deliberately excluded, because they cannot change the result:
///   * shard_threads (thread count never changes sharded results),
///   * obs.tracing / obs.max_trace_events (tracing is passive).
/// Deliberately included although it looks like plumbing:
///   * shards (classic vs sharded differ in low FP bits),
///   * obs.sample_interval_ms (the sampler ticks the event queue).
std::string job_canonical_key(const SimulationConfig& config,
                              const std::string& trace,
                              const WorkloadOptions& workload);

/// 64-bit FNV-1a of an arbitrary byte string.
std::uint64_t fnv1a64(const std::string& bytes);

/// Compact fingerprint of a job: fnv1a64(job_canonical_key(...)).
/// Reported to clients for correlation; the cache itself is keyed by the
/// full canonical string, so hash collisions cannot alias results.
std::uint64_t job_fingerprint(const SimulationConfig& config,
                              const std::string& trace,
                              const WorkloadOptions& workload);

}  // namespace raidsim
