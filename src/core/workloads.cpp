#include "core/workloads.hpp"

#include <cmath>
#include <stdexcept>

namespace raidsim {

TraceProfile workload_profile(const std::string& name,
                              const WorkloadOptions& options) {
  if (options.scale <= 0.0 || options.scale > 1.0)
    throw std::invalid_argument("WorkloadOptions: scale must be in (0, 1]");
  if (options.speed <= 0.0)
    throw std::invalid_argument("WorkloadOptions: speed must be positive");
  TraceProfile profile = TraceProfile::by_name(name);
  profile.requests = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(profile.requests) * options.scale));
  if (profile.requests == 0) profile.requests = 1;
  profile.duration_s *= options.scale;
  if (options.seed != 0) profile.seed = options.seed;
  return profile;
}

std::unique_ptr<TraceStream> make_workload(const std::string& name,
                                           const WorkloadOptions& options) {
  auto profile = workload_profile(name, options);
  std::unique_ptr<TraceStream> stream =
      std::make_unique<SyntheticTrace>(std::move(profile));
  if (options.speed != 1.0)
    stream = std::make_unique<SpeedAdapter>(std::move(stream), options.speed);
  return stream;
}

}  // namespace raidsim
