#include "core/reliability.hpp"

#include <stdexcept>

namespace raidsim {

namespace {

void check(int total_data_disks, int array_data_disks,
           const ReliabilityParams& params) {
  if (total_data_disks < 1 || array_data_disks < 1)
    throw std::invalid_argument("reliability: non-positive disk counts");
  if (params.disk_mttf_hours <= 0.0 || params.disk_mttr_hours <= 0.0)
    throw std::invalid_argument("reliability: non-positive MTTF/MTTR");
}

}  // namespace

double group_mttdl_hours(Organization org, int array_data_disks,
                         const ReliabilityParams& params) {
  check(1, array_data_disks, params);
  const double mttf = params.disk_mttf_hours;
  const double mttr = params.disk_mttr_hours;
  const double n = static_cast<double>(array_data_disks);
  switch (org) {
    case Organization::kBase:
      return mttf;  // one disk; any failure loses data
    case Organization::kMirror:
    case Organization::kRaid10:
      return mttf * mttf / (2.0 * mttr);
    case Organization::kRaid4:
    case Organization::kRaid5:
    case Organization::kParityStriping:
      return mttf * mttf / ((n + 1.0) * n * mttr);
  }
  throw std::invalid_argument("reliability: unknown organization");
}

int disks_required(Organization org, int total_data_disks,
                   int array_data_disks) {
  check(total_data_disks, array_data_disks, ReliabilityParams{});
  const int arrays =
      (total_data_disks + array_data_disks - 1) / array_data_disks;
  switch (org) {
    case Organization::kBase:
      return total_data_disks;
    case Organization::kMirror:
    case Organization::kRaid10:
      return 2 * total_data_disks;
    case Organization::kRaid4:
    case Organization::kRaid5:
    case Organization::kParityStriping:
      return total_data_disks + arrays;  // one parity disk per array
  }
  throw std::invalid_argument("reliability: unknown organization");
}

double storage_overhead(Organization org, int array_data_disks) {
  switch (org) {
    case Organization::kBase:
      return 0.0;
    case Organization::kMirror:
    case Organization::kRaid10:
      return 1.0;
    case Organization::kRaid4:
    case Organization::kRaid5:
    case Organization::kParityStriping:
      return 1.0 / static_cast<double>(array_data_disks);
  }
  throw std::invalid_argument("reliability: unknown organization");
}

double system_mttdl_hours(Organization org, int total_data_disks,
                          int array_data_disks,
                          const ReliabilityParams& params) {
  check(total_data_disks, array_data_disks, params);
  switch (org) {
    case Organization::kBase:
      // Any of the D disks failing loses data.
      return params.disk_mttf_hours / static_cast<double>(total_data_disks);
    case Organization::kMirror:
    case Organization::kRaid10:
      return group_mttdl_hours(org, array_data_disks, params) /
             static_cast<double>(total_data_disks);  // one pair per data disk
    case Organization::kRaid4:
    case Organization::kRaid5:
    case Organization::kParityStriping: {
      const int arrays =
          (total_data_disks + array_data_disks - 1) / array_data_disks;
      return group_mttdl_hours(org, array_data_disks, params) /
             static_cast<double>(arrays);
    }
  }
  throw std::invalid_argument("reliability: unknown organization");
}

}  // namespace raidsim
