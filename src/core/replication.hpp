#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/workloads.hpp"

namespace raidsim {

/// Summary of replicated runs of one configuration over independently
/// seeded workloads: the sampling distribution of the mean response
/// time. Used to separate real effects from synthetic-workload noise.
struct ReplicationResult {
  std::vector<double> mean_response_ms;  // one per replication
  std::vector<Metrics> metrics;          // full metrics per replication

  double mean() const;
  /// Sample standard deviation of the per-replication means.
  double stddev() const;
  /// Half-width of the ~95% normal-approximation confidence interval of
  /// the mean (1.96 * stddev / sqrt(n)).
  double ci95_half_width() const;
  std::string summary() const;  // "m ± h ms (n=..)"
};

/// Run `replications` simulations of `config` on the named workload,
/// varying only the workload seed (base_seed + i; base_seed 0 uses the
/// preset's own seed for replication 0).
ReplicationResult run_replicated(const SimulationConfig& config,
                                 const std::string& trace,
                                 const WorkloadOptions& options,
                                 int replications,
                                 std::uint64_t base_seed = 1000);

}  // namespace raidsim
