#include "core/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "array/cached_controller.hpp"
#include "array/uncached_controller.hpp"
#include "obs/metrics_registry.hpp"

namespace raidsim {

namespace {

/// Live registry counters for the classic engine. Registered once;
/// updates are gated inside the registry (one relaxed load when it is
/// disabled) and only ever happen at batch boundaries or run end, never
/// on the per-event hot path.
struct ClassicEngineMetrics {
  Counter& runs = MetricsRegistry::instance().counter(
      "raidsim_engine_classic_runs_total",
      "Completed classic-engine simulation runs");
  Counter& events = MetricsRegistry::instance().counter(
      "raidsim_engine_classic_events_total",
      "Kernel events executed by the classic engine");
  Gauge& sim_ms = MetricsRegistry::instance().gauge(
      "raidsim_engine_classic_sim_ms_total",
      "Simulated milliseconds advanced by the classic engine (accumulates)");
};

ClassicEngineMetrics& classic_metrics() {
  static ClassicEngineMetrics metrics;
  return metrics;
}

}  // namespace

Simulator::Simulator(const SimulationConfig& config,
                     const TraceGeometry& geometry)
    : config_(config),
      geometry_(geometry),
      eq_(config.event_kernel, config.op_alloc) {
  config_.validate();
  blocks_per_array_ = static_cast<std::int64_t>(config_.array_data_disks) *
                      geometry_.blocks_per_disk;
  total_blocks_ = geometry_.total_blocks();
  if (kTracingCompiledIn && config_.obs.tracing)
    tracer_ = std::make_unique<Tracer>(
        Tracer::Config{config_.obs.max_trace_events});
  const int n = config_.array_data_disks;
  const int array_count = (geometry_.data_disks + n - 1) / n;
  controllers_.reserve(static_cast<std::size_t>(array_count));
  for (int a = 0; a < array_count; ++a) {
    const int data_disks = std::min(n, geometry_.data_disks - a * n);
    auto array_cfg =
        config_.array_config(data_disks, geometry_.blocks_per_disk);
    array_cfg.tracer = tracer_.get();
    array_cfg.array_index = a;
    if (config_.cached) {
      controllers_.push_back(std::make_unique<CachedController>(
          eq_, array_cfg, config_.cache_config()));
    } else {
      controllers_.push_back(
          std::make_unique<UncachedController>(eq_, array_cfg));
    }
  }
  metrics_.response_per_array.resize(controllers_.size());
  if (config_.obs.sample_interval_ms > 0.0) {
    sampler_ = std::make_unique<TimeSeriesSampler>(
        config_.obs.sample_interval_ms, config_.obs.sampler_capacity);
    std::vector<int> topology;
    topology.reserve(controllers_.size());
    for (const auto& c : controllers_)
      topology.push_back(c->layout().total_disks());
    sampler_->set_topology(std::move(topology));
    schedule_sample_tick();
  }
}

Simulator::~Simulator() = default;

int Simulator::total_disks() const {
  int total = 0;
  for (const auto& c : controllers_) total += c->layout().total_disks();
  return total;
}

std::pair<int, std::int64_t> Simulator::route(std::int64_t db_block) const {
  // Arrays tile the database in blocks_per_array_-sized runs, and the
  // array-local block is simply the remainder: with disk = block / bpd,
  // local_disk = disk % N, offset = block % bpd,
  //   local_disk * bpd + offset == block - (block / (N * bpd)) * N * bpd.
  const std::int64_t array = db_block / blocks_per_array_;
  return {static_cast<int>(array), db_block - array * blocks_per_array_};
}

void Simulator::validate_record(const TraceRecord& record) const {
  if (record.block_count < 1 || record.block < 0 ||
      record.block + record.block_count > total_blocks_)
    throw std::out_of_range("Simulator: request outside the database");
}

void Simulator::dispatch(const TraceRecord& record,
                         std::function<void(SimTime)> on_complete) {
  auto [array, local_block] = route(record.block);
  ArrayRequest request;
  request.logical_block = local_block;
  request.block_count = record.block_count;
  request.is_write = record.is_write;

  const SimTime arrival = eq_.now();
  const ObsPhase host_phase =
      record.is_write ? ObsPhase::kHostWrite : ObsPhase::kHostRead;
  request.obs_id =
      obs_begin(tracer_.get(), host_phase, array, -1, arrival);
  ++outstanding_;
  controllers_[static_cast<std::size_t>(array)]->submit(
      request, [this, arrival, is_write = record.is_write, array,
                host_phase, obs_id = request.obs_id,
                on_complete = std::move(on_complete)](SimTime t) {
        obs_end(tracer_.get(), obs_id, host_phase, array, -1, t);
        const double response = t - arrival;
        metrics_.response_all.add(response);
        (is_write ? metrics_.response_write : metrics_.response_read)
            .add(response);
        metrics_.response_per_array[static_cast<std::size_t>(array)]
            .add(response);
        ++metrics_.requests;
        --outstanding_;
        maybe_shutdown();
        if (on_complete) on_complete(t);
      });
}

void Simulator::submit(const TraceRecord& record,
                       std::function<void(SimTime)> on_complete) {
  validate_record(record);
  dispatch(record, std::move(on_complete));
}

void Simulator::pump(TraceStream& trace) {
  auto record = trace.next();
  if (!record) {
    trace_done_ = true;
    maybe_shutdown();
    return;
  }
  if (validate_records_) validate_record(*record);
  arrival_time_ += record->delta_ms;
  eq_.schedule_at(arrival_time_, [this, rec = *record, &trace] {
    dispatch(rec);
    pump(trace);
  });
}

void Simulator::maybe_shutdown() {
  if (!trace_done_ || outstanding_ > 0) return;
  for (auto& controller : controllers_) controller->shutdown();
  if (sampler_event_ != 0) {
    eq_.cancel(sampler_event_);
    sampler_event_ = 0;
  }
}

void Simulator::schedule_sample_tick() {
  sampler_event_ = eq_.schedule_in(sampler_->interval_ms(), [this] {
    sampler_event_ = 0;
    take_sample();
    schedule_sample_tick();
  });
}

void Simulator::take_sample() {
  TelemetrySample sample;
  sample.t = eq_.now();
  sample.outstanding = outstanding_;
  sample.events_executed = eq_.executed();
  sample.queue_depth.reserve(static_cast<std::size_t>(total_disks()));
  sample.busy_ms.reserve(sample.queue_depth.capacity());
  sample.cache_blocks.reserve(controllers_.size());
  sample.cache_dirty.reserve(controllers_.size());
  for (const auto& controller : controllers_) {
    for (const auto& disk : controller->disks()) {
      sample.queue_depth.push_back(
          static_cast<std::uint32_t>(disk->queue_length()));
      sample.busy_ms.push_back(disk->stats().busy_ms);
    }
    const NvCache* cache = controller->nv_cache();
    sample.cache_blocks.push_back(cache ? cache->size() : 0);
    sample.cache_dirty.push_back(cache ? cache->dirty_count() : 0);
  }
  sampler_->record(std::move(sample));
}

Metrics Simulator::run(TraceStream& trace) {
  if (ran_) throw std::logic_error("Simulator: run() may only be called once");
  ran_ = true;
  if (trace.geometry().data_disks != geometry_.data_disks ||
      trace.geometry().blocks_per_disk != geometry_.blocks_per_disk)
    throw std::invalid_argument("Simulator: trace geometry mismatch");

  validate_records_ = !trace.prevalidated();
  progress_total_ = trace.size_hint();
  pump(trace);
  if (cancel_ == nullptr && !progress_) {
    while (eq_.step()) {
    }
  } else {
    // Cooperative cancellation and progress share one batch boundary:
    // poll the token / fire the hook every kCancelCheckBatch events so a
    // deadline or watchdog stops the run promptly -- and progress frames
    // flow -- without taxing the per-event hot path.
    for (;;) {
      if (cancel_ != nullptr && cancel_->cancelled())
        throw CancelledError(cancel_->reason());
      const std::size_t ran = eq_.run(kCancelCheckBatch);
      if (progress_) emit_progress(false);
      if (ran < kCancelCheckBatch) break;
    }
    if (progress_) emit_progress(true);
  }
  assert(outstanding_ == 0);
  return finalize();
}

void Simulator::emit_progress(bool final_frame) {
  ProgressSnapshot snap;
  snap.events = eq_.executed();
  snap.sim_ms = eq_.now();
  snap.done = metrics_.requests;
  snap.total = progress_total_;
  snap.final_frame = final_frame;
  // Feed the live registry the delta since the last boundary so a scrape
  // mid-run sees engine throughput, not just completed-run totals.
  classic_metrics().events.add(snap.events - metered_events_);
  metered_events_ = snap.events;
  progress_(snap);
}

Metrics Simulator::drain_and_finalize() {
  if (ran_)
    throw std::logic_error("Simulator: already ran/finalized");
  ran_ = true;
  trace_done_ = true;
  // Let in-flight work (and background destage of it) complete, then
  // stop the periodic timers and drain.
  while (outstanding_ > 0 && eq_.step()) {
  }
  maybe_shutdown();
  while (eq_.step()) {
  }
  return finalize();
}

Metrics Simulator::finalize() {
  metrics_.elapsed_ms = eq_.now();
  metrics_.arrays = arrays();
  metrics_.total_disks = total_disks();
  metrics_.events_executed = eq_.executed();
  classic_metrics().events.add(eq_.executed() - metered_events_);
  metered_events_ = eq_.executed();
  classic_metrics().runs.add(1);
  classic_metrics().sim_ms.add(metrics_.elapsed_ms);
  double channel_util = 0.0;
  metrics_.disk_accesses.reserve(static_cast<std::size_t>(metrics_.total_disks));
  metrics_.disk_utilization.reserve(
      static_cast<std::size_t>(metrics_.total_disks));
  metrics_.channel_utilization_per_array.reserve(controllers_.size());
  for (const auto& controller : controllers_) {
    accumulate(metrics_.controller, controller->stats());
    for (const auto& disk : controller->disks()) {
      const auto& stats = disk->stats();
      accumulate(metrics_.disk_totals, stats);
      metrics_.disk_accesses.push_back(stats.ops());
      metrics_.disk_utilization.push_back(
          stats.utilization(metrics_.elapsed_ms));
      metrics_.disk_op_latency.push_back(disk->op_latency());
    }
    const double util = controller->channel().utilization(metrics_.elapsed_ms);
    metrics_.channel_utilization_per_array.push_back(util);
    channel_util += util;
    if (const auto* cache_stats = controller->cache_stats())
      accumulate(metrics_.cache, *cache_stats);
  }
  metrics_.channel_utilization =
      channel_util / static_cast<double>(controllers_.size());
  return metrics_;
}

Metrics run_simulation(const SimulationConfig& config, TraceStream& trace) {
  Simulator simulator(config, trace.geometry());
  return simulator.run(trace);
}

}  // namespace raidsim
