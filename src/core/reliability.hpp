#pragma once

#include "layout/layout.hpp"

namespace raidsim {

/// Analytic mean-time-to-data-loss model backing the paper's motivation
/// (Section 1): with a 100,000-hour disk MTTF, a non-redundant system of
/// more than 150 disks loses data in under 28 days on average, while
/// redundant organizations survive any single failure and only lose data
/// when a second failure strikes the same group before repair completes.
///
/// Standard exponential-failure / exponential-repair approximations:
///   non-redundant, D disks:        MTTF / D
///   mirrored pair:                 MTTF^2 / (2 MTTR)
///   N+1 parity group:              MTTF^2 / ((N+1) N MTTR)
/// A system of G independent groups has MTTDL_group / G.
struct ReliabilityParams {
  double disk_mttf_hours = 100000.0;  // paper's footnote assumption
  double disk_mttr_hours = 24.0;      // repair/rebuild window
};

/// MTTDL of a single group (pair, parity group, or -- for Base -- one
/// disk), in hours.
double group_mttdl_hours(Organization org, int array_data_disks,
                         const ReliabilityParams& params = {});

/// MTTDL of a whole database of `total_data_disks` data-disk equivalents
/// organised into arrays of `array_data_disks`, in hours.
double system_mttdl_hours(Organization org, int total_data_disks,
                          int array_data_disks,
                          const ReliabilityParams& params = {});

/// Physical disks needed to store `total_data_disks` worth of data.
int disks_required(Organization org, int total_data_disks,
                   int array_data_disks);

/// Fractional storage overhead of the redundancy (1.0 for Mirror,
/// 1/N for the parity organizations, 0 for Base).
double storage_overhead(Organization org, int array_data_disks);

}  // namespace raidsim
