#include "core/job_key.hpp"

#include <cstdio>

namespace raidsim {

namespace {

/// Round-trip-exact double formatting: 17 significant digits uniquely
/// identify every IEEE-754 double, so distinct knob values never collide
/// in the key and equal values always serialize identically.
void append_double(std::string& out, const char* name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += name;
  out += '=';
  out += buf;
  out += ';';
}

void append_int(std::string& out, const char* name, long long v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

}  // namespace

std::string job_canonical_key(const SimulationConfig& config,
                              const std::string& trace,
                              const WorkloadOptions& workload) {
  std::string key;
  key.reserve(768);
  key += "raidsim-job-v1;";
  append_int(key, "org", static_cast<int>(config.organization));
  append_int(key, "n", config.array_data_disks);
  append_int(key, "su", config.striping_unit_blocks);
  append_int(key, "sync", static_cast<int>(config.sync));
  append_int(key, "pplace", static_cast<int>(config.parity_placement));
  append_int(key, "pfine", config.parity_fine_grain_chunk_blocks);
  append_int(key, "geo.cyl", config.disk_geometry.cylinders);
  append_int(key, "geo.tpc", config.disk_geometry.tracks_per_cylinder);
  append_int(key, "geo.spt", config.disk_geometry.sectors_per_track);
  append_int(key, "geo.bps", config.disk_geometry.bytes_per_sector);
  append_double(key, "geo.rpm", config.disk_geometry.rpm);
  append_int(key, "geo.bsec", config.disk_geometry.block_sectors);
  append_double(key, "seek.avg", config.seek.average_ms);
  append_double(key, "seek.max", config.seek.max_ms);
  append_double(key, "seek.one", config.seek.single_cylinder_ms);
  append_int(key, "seek.cyl", config.seek.cylinders);
  append_int(key, "sched", static_cast<int>(config.disk_scheduling));
  append_double(key, "chan", config.channel_mb_per_second);
  append_int(key, "tbuf", config.track_buffers_per_disk);
  append_int(key, "retry", config.disk_retry_budget);
  append_double(key, "retrybo", config.disk_retry_backoff_ms);
  append_int(key, "cached", config.cached ? 1 : 0);
  append_int(key, "cacheb", config.cache_bytes);
  append_double(key, "destage", config.destage_period_ms);
  append_int(key, "oldret", config.retain_old_data ? 1 : 0);
  append_int(key, "pcache", config.parity_caching ? 1 : 0);
  append_int(key, "pdest", config.periodic_destage ? 1 : 0);
  append_int(key, "journal", config.intent_journal ? 1 : 0);
  // Deliberately absent: shard_threads, event_kernel, and op_alloc.
  // None can change results (threads only change wall time; both event
  // kernels execute bit-identical (time, seq) sequences; both op-state
  // allocators produce bit-identical runs -- nothing orders by pointer
  // value), so including them would split the cache for runs with
  // identical outputs. `shards`
  // stays in the key because the sharded engine's shutdown discipline
  // differs from the classic engine's (docs/performance.md).
  append_int(key, "shards", config.shards);
  append_double(key, "sample", config.obs.sample_interval_ms);
  append_int(key, "samplecap",
             static_cast<long long>(config.obs.sampler_capacity));
  append_int(key, "tail.on", config.tail.enabled ? 1 : 0);
  append_double(key, "tail.dl", config.tail.read_deadline_ms);
  append_double(key, "tail.hd", config.tail.hedge_delay_ms);
  append_double(key, "tail.hf", config.tail.hedge_ewma_factor);
  append_int(key, "tail.rd", config.tail.redirect_on_slow ? 1 : 0);
  append_int(key, "tail.rc", config.tail.reconstruct_on_slow ? 1 : 0);
  append_double(key, "tail.sf", config.tail.slow_ewma_factor);
  key += "trace=";
  key += trace;
  key += ';';
  append_double(key, "scale", workload.scale);
  append_double(key, "speed", workload.speed);
  append_int(key, "seed", static_cast<long long>(workload.seed));
  return key;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t job_fingerprint(const SimulationConfig& config,
                              const std::string& trace,
                              const WorkloadOptions& workload) {
  return fnv1a64(job_canonical_key(config, trace, workload));
}

}  // namespace raidsim
