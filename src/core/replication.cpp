#include "core/replication.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/simulator.hpp"

namespace raidsim {

double ReplicationResult::mean() const {
  if (mean_response_ms.empty()) return 0.0;
  double sum = 0.0;
  for (double v : mean_response_ms) sum += v;
  return sum / static_cast<double>(mean_response_ms.size());
}

double ReplicationResult::stddev() const {
  const std::size_t n = mean_response_ms.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double v : mean_response_ms) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double ReplicationResult::ci95_half_width() const {
  const std::size_t n = mean_response_ms.size();
  if (n < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n));
}

std::string ReplicationResult::summary() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << mean() << " +/- " << ci95_half_width() << " ms (n="
     << mean_response_ms.size() << ")";
  return os.str();
}

ReplicationResult run_replicated(const SimulationConfig& config,
                                 const std::string& trace,
                                 const WorkloadOptions& options,
                                 int replications, std::uint64_t base_seed) {
  if (replications < 1)
    throw std::invalid_argument("run_replicated: replications < 1");
  ReplicationResult result;
  result.mean_response_ms.reserve(static_cast<std::size_t>(replications));
  for (int i = 0; i < replications; ++i) {
    WorkloadOptions per_run = options;
    per_run.seed = base_seed + static_cast<std::uint64_t>(i);
    auto stream = make_workload(trace, per_run);
    Metrics m = run_simulation(config, *stream);
    result.mean_response_ms.push_back(m.mean_response_ms());
    result.metrics.push_back(std::move(m));
  }
  return result;
}

}  // namespace raidsim
