#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace raidsim {

double Metrics::mean_disk_utilization() const {
  if (disk_utilization.empty()) return 0.0;
  double sum = 0.0;
  for (double u : disk_utilization) sum += u;
  return sum / static_cast<double>(disk_utilization.size());
}

double Metrics::max_disk_utilization() const {
  double best = 0.0;
  for (double u : disk_utilization) best = std::max(best, u);
  return best;
}

double Metrics::disk_access_cv() const {
  if (disk_accesses.empty()) return 0.0;
  double mean = 0.0;
  for (auto c : disk_accesses) mean += static_cast<double>(c);
  mean /= static_cast<double>(disk_accesses.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (auto c : disk_accesses) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(disk_accesses.size());
  return std::sqrt(var) / mean;
}

}  // namespace raidsim
