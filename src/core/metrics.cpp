#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace raidsim {

void accumulate(DiskStats& total, const DiskStats& src) {
  total.reads += src.reads;
  total.writes += src.writes;
  total.rmws += src.rmws;
  total.busy_ms += src.busy_ms;
  total.seek_ms += src.seek_ms;
  total.latency_ms += src.latency_ms;
  total.transfer_ms += src.transfer_ms;
  total.hold_ms += src.hold_ms;
  total.queue_ms += src.queue_ms;
  total.held_rotations += src.held_rotations;
  total.transient_faults += src.transient_faults;
  total.media_faults += src.media_faults;
  total.power_fail_drops += src.power_fail_drops;
  total.slow_ops += src.slow_ops;
  total.slowdown_ms += src.slowdown_ms;
}

void accumulate(ControllerStats& total, const ControllerStats& src) {
  total.read_requests += src.read_requests;
  total.write_requests += src.write_requests;
  total.read_request_hits += src.read_request_hits;
  total.write_request_hits += src.write_request_hits;
  total.destage_writes += src.destage_writes;
  total.destage_blocks += src.destage_blocks;
  total.sync_victim_writes += src.sync_victim_writes;
  total.write_stalls += src.write_stalls;
  total.parity_spools += src.parity_spools;
  total.parity_reservation_failures += src.parity_reservation_failures;
  total.parity_queue_peak =
      std::max(total.parity_queue_peak, src.parity_queue_peak);
  total.degraded_reads += src.degraded_reads;
  total.degraded_writes += src.degraded_writes;
  total.unrecoverable += src.unrecoverable;
  total.transient_retries += src.transient_retries;
  total.retry_exhaustions += src.retry_exhaustions;
  total.media_errors += src.media_errors;
  total.media_repairs += src.media_repairs;
  total.media_losses += src.media_losses;
  total.crashes += src.crashes;
  total.crash_dropped_ops += src.crash_dropped_ops;
  total.crash_discarded_write_blocks += src.crash_discarded_write_blocks;
  total.crash_aborted_host_writes += src.crash_aborted_host_writes;
  total.journal_intents += src.journal_intents;
  total.journal_replays += src.journal_replays;
  total.resync_stripes += src.resync_stripes;
  total.resync_read_blocks += src.resync_read_blocks;
  total.resync_write_blocks += src.resync_write_blocks;
  total.full_resyncs += src.full_resyncs;
  total.recovery_ms += src.recovery_ms;
  total.timeouts_fired += src.timeouts_fired;
  total.hedged_reads += src.hedged_reads;
  total.hedge_wins += src.hedge_wins;
  total.hedge_cancellations += src.hedge_cancellations;
  total.redirected_reads += src.redirected_reads;
  total.quarantine_reroutes += src.quarantine_reroutes;
}

void accumulate(NvCache::Stats& total, const NvCache::Stats& src) {
  total.read_hits += src.read_hits;
  total.read_misses += src.read_misses;
  total.write_hits += src.write_hits;
  total.write_misses += src.write_misses;
  total.evictions += src.evictions;
  total.old_evictions += src.old_evictions;
  total.dirty_evictions += src.dirty_evictions;
  total.stalls += src.stalls;
  total.old_captures += src.old_captures;
}

double Metrics::mean_disk_utilization() const {
  if (disk_utilization.empty()) return 0.0;
  double sum = 0.0;
  for (double u : disk_utilization) sum += u;
  return sum / static_cast<double>(disk_utilization.size());
}

double Metrics::max_disk_utilization() const {
  double best = 0.0;
  for (double u : disk_utilization) best = std::max(best, u);
  return best;
}

namespace {

void json_latency(std::ostream& out, const LatencyRecorder& rec) {
  out << "{\"count\":" << rec.count() << ",\"mean_ms\":" << rec.mean()
      << ",\"p50_ms\":" << rec.p50() << ",\"p95_ms\":" << rec.p95()
      << ",\"p99_ms\":" << rec.p99() << ",\"p999_ms\":" << rec.p999()
      << ",\"max_ms\":" << rec.max() << "}";
}

}  // namespace

void Metrics::to_json(std::ostream& out) const {
  out << "{";
  out << "\"elapsed_ms\":" << elapsed_ms;
  out << ",\"requests\":" << requests;
  out << ",\"arrays\":" << arrays;
  out << ",\"total_disks\":" << total_disks;
  out << ",\"events_executed\":" << events_executed;
  out << ",\"response\":{\"all\":";
  json_latency(out, response_all);
  out << ",\"read\":";
  json_latency(out, response_read);
  out << ",\"write\":";
  json_latency(out, response_write);
  out << "}";
  out << ",\"response_per_array\":[";
  for (std::size_t i = 0; i < response_per_array.size(); ++i) {
    if (i) out << ",";
    json_latency(out, response_per_array[i]);
  }
  out << "]";
  out << ",\"disk_op_latency\":[";
  for (std::size_t i = 0; i < disk_op_latency.size(); ++i) {
    if (i) out << ",";
    json_latency(out, disk_op_latency[i]);
  }
  out << "]";
  out << ",\"disk\":{";
  out << "\"reads\":" << disk_totals.reads;
  out << ",\"writes\":" << disk_totals.writes;
  out << ",\"rmws\":" << disk_totals.rmws;
  out << ",\"transient_faults\":" << disk_totals.transient_faults;
  out << ",\"media_faults\":" << disk_totals.media_faults;
  out << ",\"slow_ops\":" << disk_totals.slow_ops;
  out << ",\"slowdown_ms\":" << disk_totals.slowdown_ms;
  out << "}";
  out << ",\"controller\":{";
  out << "\"read_requests\":" << controller.read_requests;
  out << ",\"write_requests\":" << controller.write_requests;
  out << ",\"degraded_reads\":" << controller.degraded_reads;
  out << ",\"degraded_writes\":" << controller.degraded_writes;
  out << ",\"transient_retries\":" << controller.transient_retries;
  out << ",\"retry_exhaustions\":" << controller.retry_exhaustions;
  out << ",\"timeouts_fired\":" << controller.timeouts_fired;
  out << ",\"hedged_reads\":" << controller.hedged_reads;
  out << ",\"hedge_wins\":" << controller.hedge_wins;
  out << ",\"hedge_cancellations\":" << controller.hedge_cancellations;
  out << ",\"redirected_reads\":" << controller.redirected_reads;
  out << ",\"quarantine_reroutes\":" << controller.quarantine_reroutes;
  out << "}";
  out << ",\"utilization\":{\"mean_disk\":" << mean_disk_utilization()
      << ",\"max_disk\":" << max_disk_utilization()
      << ",\"channel\":" << channel_utilization
      << ",\"disk_access_cv\":" << disk_access_cv() << "}";
  out << "}";
}

double Metrics::disk_access_cv() const {
  if (disk_accesses.empty()) return 0.0;
  double mean = 0.0;
  for (auto c : disk_accesses) mean += static_cast<double>(c);
  mean /= static_cast<double>(disk_accesses.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (auto c : disk_accesses) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(disk_accesses.size());
  return std::sqrt(var) / mean;
}

}  // namespace raidsim
