#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "array/controller.hpp"
#include "cache/nv_cache.hpp"
#include "disk/disk.hpp"
#include "util/stats.hpp"

namespace raidsim {

/// Aggregate results of one simulation run. Response times are
/// host-visible (arrival to response), in milliseconds -- the quantity
/// every figure in the paper plots.
struct Metrics {
  LatencyRecorder response_all;
  LatencyRecorder response_read;
  LatencyRecorder response_write;

  /// Host-visible response time broken out per array. Lets the tail
  /// report show which array the straggler lives in.
  std::vector<LatencyRecorder> response_per_array;
  /// Physical op latency (enqueue to completion) per disk, array-major.
  /// The raw signal behind the slow-disk detector; merged across shards
  /// in global array order so both engines agree bit-for-bit.
  std::vector<LatencyRecorder> disk_op_latency;

  double elapsed_ms = 0.0;
  std::uint64_t requests = 0;

  int arrays = 0;
  int total_disks = 0;

  /// Physical accesses per disk, array-major (Figures 6 and 7).
  std::vector<std::uint64_t> disk_accesses;
  /// Utilization (busy fraction) per disk, array-major.
  std::vector<double> disk_utilization;

  DiskStats disk_totals;        // summed over all disks
  ControllerStats controller;   // summed over all arrays
  NvCache::Stats cache;         // summed over all arrays (cached runs)
  double channel_utilization = 0.0;  // mean over arrays
  /// Channel utilization of each array individually (the mean above
  /// hides imbalance when the trace skews toward one array).
  std::vector<double> channel_utilization_per_array;
  std::uint64_t events_executed = 0;

  double mean_response_ms() const { return response_all.mean(); }
  double read_hit_ratio() const { return controller.read_hit_ratio(); }
  double write_hit_ratio() const { return controller.write_hit_ratio(); }
  double mean_disk_utilization() const;
  double max_disk_utilization() const;
  /// Coefficient of variation of per-disk access counts (load-balance
  /// measure behind Figures 6-7).
  double disk_access_cv() const;

  /// Machine-readable dump: counters, tail percentiles (p50/p95/p99/p999)
  /// for the run and each array, and per-disk op-latency summaries.
  /// Stable key order; plain ASCII JSON.
  void to_json(std::ostream& out) const;
};

/// Sum `src` into `total` field by field (parity_queue_peak takes the
/// max). Shared by the single-queue finalize path and the sharded merge,
/// so both engines aggregate array statistics in exactly the same order.
void accumulate(DiskStats& total, const DiskStats& src);
void accumulate(ControllerStats& total, const ControllerStats& src);
void accumulate(NvCache::Stats& total, const NvCache::Stats& src);

}  // namespace raidsim
