#include "core/config.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace raidsim {

namespace {

/// Hostile-input hardening: every floating-point knob must be a finite
/// number. NaN in particular sails through ordinary range checks (every
/// comparison with NaN is false) and then poisons event timestamps, so
/// it is rejected by name here rather than discovered as a hang later.
void require_finite(double value, const char* knob) {
  if (!std::isfinite(value))
    throw std::invalid_argument(std::string("SimulationConfig: ") + knob +
                                " must be a finite number");
}

}  // namespace

void SimulationConfig::validate() const {
  // Sanity ceilings for integer knobs. Way above any physical setup, but
  // low enough that a garbage value cannot drive allocation sizes: 10^5
  // disks per array or 2^16 shards is a typo, not a configuration.
  constexpr int kMaxDataDisks = 100000;
  constexpr int kMaxStripingUnitBlocks = 1 << 24;
  constexpr int kMaxShards = 1 << 16;

  if (array_data_disks < 1)
    throw std::invalid_argument("SimulationConfig: array_data_disks < 1");
  if (array_data_disks > kMaxDataDisks)
    throw std::invalid_argument(
        "SimulationConfig: array_data_disks absurdly large (max 100000)");
  if (striping_unit_blocks < 1)
    throw std::invalid_argument("SimulationConfig: striping_unit_blocks < 1");
  if (striping_unit_blocks > kMaxStripingUnitBlocks)
    throw std::invalid_argument(
        "SimulationConfig: striping_unit_blocks absurdly large (max 2^24)");
  if (parity_fine_grain_chunk_blocks < 0)
    throw std::invalid_argument(
        "SimulationConfig: negative parity_fine_grain_chunk_blocks");
  if (!disk_geometry.valid())
    throw std::invalid_argument("SimulationConfig: invalid disk geometry");
  require_finite(channel_mb_per_second, "channel_mb_per_second");
  if (channel_mb_per_second <= 0.0)
    throw std::invalid_argument("SimulationConfig: channel rate <= 0");
  if (track_buffers_per_disk < 1)
    throw std::invalid_argument("SimulationConfig: track buffers < 1");
  require_finite(disk_retry_backoff_ms, "disk_retry_backoff_ms");
  if (disk_retry_budget < 0 || disk_retry_backoff_ms < 0.0)
    throw std::invalid_argument("SimulationConfig: negative retry policy");
  if (cache_bytes < 0)
    throw std::invalid_argument("SimulationConfig: negative cache_bytes");
  if (cached && cache_bytes < disk_geometry.block_bytes())
    throw std::invalid_argument("SimulationConfig: cache smaller than a block");
  require_finite(destage_period_ms, "destage_period_ms");
  if (cached && destage_period_ms <= 0.0)
    throw std::invalid_argument("SimulationConfig: destage period <= 0");
  if (parity_caching &&
      (!cached || organization != Organization::kRaid4))
    throw std::invalid_argument(
        "SimulationConfig: parity caching requires cached RAID4");
  if (organization == Organization::kRaid4 && !cached)
    throw std::invalid_argument(
        "SimulationConfig: the paper only evaluates RAID4 with a cache");
  // SI holds a disk on its write gate until the partner op opens it; that
  // is deadlock-free only under FIFO, where service order matches issue
  // order. SSTF/SCAN can serve a gated op ahead of its gate opener on
  // another disk, forming a cross-disk wait cycle that silently strands
  // requests, so the combination is rejected rather than simulated wrong.
  if (sync == SyncPolicy::kSimultaneousIssue &&
      disk_scheduling != DiskScheduling::kFifo)
    throw std::invalid_argument(
        "SimulationConfig: SI sync requires FIFO disk scheduling "
        "(SSTF/SCAN reordering can deadlock gated writes)");
  if (shards < 0)
    throw std::invalid_argument("SimulationConfig: negative shards");
  if (shards > kMaxShards)
    throw std::invalid_argument(
        "SimulationConfig: shards absurdly large (max 65536)");
  if (shard_threads < 0)
    throw std::invalid_argument("SimulationConfig: negative shard_threads");
  if (shard_threads > kMaxShards)
    throw std::invalid_argument(
        "SimulationConfig: shard_threads absurdly large (max 65536)");
  if (obs.tracing && obs.max_trace_events == 0)
    throw std::invalid_argument("SimulationConfig: max_trace_events == 0");
  require_finite(obs.sample_interval_ms, "obs.sample_interval_ms");
  if (obs.sample_interval_ms > 0.0 && obs.sampler_capacity == 0)
    throw std::invalid_argument("SimulationConfig: sampler_capacity == 0");
  require_finite(tail.read_deadline_ms, "tail.read_deadline_ms");
  require_finite(tail.hedge_delay_ms, "tail.hedge_delay_ms");
  require_finite(tail.hedge_ewma_factor, "tail.hedge_ewma_factor");
  require_finite(tail.slow_ewma_factor, "tail.slow_ewma_factor");
  if (tail.read_deadline_ms < 0.0 || tail.hedge_delay_ms < 0.0 ||
      tail.hedge_ewma_factor < 0.0 || tail.slow_ewma_factor <= 0.0)
    throw std::invalid_argument("SimulationConfig: bad tail policy");
}

std::string SimulationConfig::describe() const {
  std::ostringstream os;
  os << to_string(organization) << " N=" << array_data_disks;
  if (organization == Organization::kRaid5 ||
      organization == Organization::kRaid4 ||
      organization == Organization::kRaid10)
    os << " SU=" << striping_unit_blocks;
  if (organization == Organization::kParityStriping) {
    os << " parity=" << to_string(parity_placement);
    if (parity_fine_grain_chunk_blocks > 0)
      os << " fine=" << parity_fine_grain_chunk_blocks;
  }
  if (organization != Organization::kBase &&
      organization != Organization::kMirror)
    os << " sync=" << to_string(sync);
  if (cached) {
    os << " cache=" << (cache_bytes >> 20) << "MB";
    if (parity_caching) os << "+parity";
  } else {
    os << " uncached";
  }
  if (tail.enabled) os << " tail-policy";
  if (event_kernel != EventKernel::kCalendar)
    os << " kernel=" << to_string(event_kernel);
  if (op_alloc != OpAlloc::kArena) os << " op-alloc=" << to_string(op_alloc);
  return os.str();
}

ArrayController::Config SimulationConfig::array_config(
    int data_disks, std::int64_t data_blocks_per_disk) const {
  ArrayController::Config cfg;
  cfg.layout.organization = organization;
  cfg.layout.data_disks = data_disks;
  cfg.layout.data_blocks_per_disk = data_blocks_per_disk;
  cfg.layout.physical_blocks_per_disk = disk_geometry.total_blocks();
  cfg.layout.striping_unit_blocks = striping_unit_blocks;
  cfg.layout.parity_placement = parity_placement;
  cfg.layout.parity_fine_grain_chunk_blocks = parity_fine_grain_chunk_blocks;
  cfg.disk_geometry = disk_geometry;
  cfg.seek = seek;
  cfg.sync = sync;
  cfg.disk_scheduling = disk_scheduling;
  cfg.channel_mb_per_second = channel_mb_per_second;
  cfg.track_buffers_per_disk = track_buffers_per_disk;
  cfg.fault.retry_budget = disk_retry_budget;
  cfg.fault.retry_backoff_ms = disk_retry_backoff_ms;
  cfg.tail = tail;
  return cfg;
}

CachedController::CacheConfig SimulationConfig::cache_config() const {
  CachedController::CacheConfig cfg;
  cfg.cache_bytes = cache_bytes;
  cfg.destage_period_ms = destage_period_ms;
  cfg.retain_old_data = retain_old_data;
  cfg.parity_caching = parity_caching;
  cfg.periodic_destage = periodic_destage;
  cfg.intent_journal = intent_journal;
  return cfg;
}

}  // namespace raidsim
