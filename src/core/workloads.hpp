#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/record.hpp"
#include "trace/synthetic.hpp"

namespace raidsim {

/// Options for instantiating one of the paper's workloads.
struct WorkloadOptions {
  /// Fraction of the trace to replay, in (0, 1]. Scaling shortens both
  /// the request count and the duration, preserving arrival rates and
  /// all distributional properties.
  double scale = 1.0;
  /// Trace speed multiplier (Sections 4.2.4 / 4.4.3); 2.0 doubles the
  /// arrival rate.
  double speed = 1.0;
  /// Override the preset RNG seed when nonzero.
  std::uint64_t seed = 0;
};

/// Build the synthetic stand-in for one of the paper's traces
/// ("trace1" or "trace2"), optionally scaled and speed-adjusted.
std::unique_ptr<TraceStream> make_workload(const std::string& name,
                                           const WorkloadOptions& options = {});

/// The profile that `make_workload` would use (after scaling), for
/// inspection and calibration tests.
TraceProfile workload_profile(const std::string& name,
                              const WorkloadOptions& options = {});

}  // namespace raidsim
