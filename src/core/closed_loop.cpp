#include "core/closed_loop.hpp"

#include <memory>
#include <stdexcept>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace raidsim {

namespace {

/// Shared state of one closed-loop run.
struct Loop {
  Simulator* sim = nullptr;
  std::unique_ptr<SyntheticTrace> addresses;
  Rng think_rng{12345};
  double think_time_ms = 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t target = 0;

  void issue_next() {
    if (issued >= target) return;
    auto rec = addresses->next();
    if (!rec) return;  // address stream exhausted (sized to avoid this)
    ++issued;
    rec->delta_ms = 0.0;
    sim->submit(*rec, [this](SimTime) {
      ++completed;
      if (issued < target) {
        sim->event_queue().schedule_in(
            think_rng.exponential(think_time_ms), [this] { issue_next(); });
      }
    });
  }
};

}  // namespace

ClosedLoopResult run_closed_loop(const SimulationConfig& config,
                                 const ClosedLoopOptions& options) {
  if (options.clients < 1)
    throw std::invalid_argument("run_closed_loop: clients < 1");
  if (options.requests < static_cast<std::uint64_t>(options.clients))
    throw std::invalid_argument("run_closed_loop: fewer requests than clients");
  if (options.think_time_ms < 0.0)
    throw std::invalid_argument("run_closed_loop: negative think time");

  TraceProfile profile = TraceProfile::by_name(options.trace);
  profile.requests = options.requests + 1;  // headroom for the last issue
  if (options.seed != 0) profile.seed = options.seed;

  Loop loop;
  loop.addresses = std::make_unique<SyntheticTrace>(profile);
  loop.think_time_ms = options.think_time_ms;
  loop.target = options.requests;
  loop.think_rng = Rng(profile.seed ^ 0x5ca1ab1eULL);

  Simulator sim(config, profile.geometry);
  loop.sim = &sim;

  // Stagger the clients' first I/Os across one mean think time.
  for (int c = 0; c < options.clients; ++c) {
    sim.event_queue().schedule_in(
        loop.think_rng.uniform() * std::max(options.think_time_ms, 1.0),
        [&loop] { loop.issue_next(); });
  }

  auto& eq = sim.event_queue();
  while (loop.completed < loop.target && eq.step()) {
  }
  // Throughput over the driven phase only; the drain tail (left-over
  // destage work) would dilute it.
  const double driven_ms = eq.now();
  ClosedLoopResult result;
  result.metrics = sim.drain_and_finalize();
  result.throughput_io_per_s =
      driven_ms > 0.0
          ? 1000.0 * static_cast<double>(loop.completed) / driven_ms
          : 0.0;
  return result;
}

}  // namespace raidsim
