#include "obs/sampler.hpp"

#include <stdexcept>
#include <utility>

namespace raidsim {

TimeSeriesSampler::TimeSeriesSampler(double interval_ms, std::size_t capacity)
    : interval_ms_(interval_ms), samples_(capacity) {
  if (interval_ms_ <= 0.0)
    throw std::invalid_argument("TimeSeriesSampler: interval <= 0");
}

void TimeSeriesSampler::set_topology(std::vector<int> disks_per_array) {
  disks_per_array_ = std::move(disks_per_array);
}

}  // namespace raidsim
