#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace raidsim {

/// Span/event taxonomy of the request-lifecycle tracer. Phases mirror the
/// paper's decomposition of an update into its component accesses
/// (Section 3.3): a small write spends its time in read-old-data /
/// read-old-parity / write-data / write-parity, a cached write in the
/// cache plus an asynchronous destage, a rebuild in reconstruct I/O.
enum class ObsPhase : std::uint8_t {
  // Host-visible request spans (one per submitted request, array track).
  kHostRead = 0,
  kHostWrite,
  // Disk-op spans (disk tracks). kDiskQueue covers enqueue -> service
  // start; the phase spans cover service start -> completion. An RMW op
  // emits its read phase and then its write phase under the same span id.
  kDiskQueue,
  kReadData,
  kReadOldData,
  kReadOldParity,
  kWriteData,
  kWriteParity,
  kMirrorCopy,
  // Controller-level background spans (array track).
  kDestage,
  kRebuild,
  kRecovery,
  // Instant events.
  kCacheHit,
  kCacheMiss,
  kWriteStall,
  kDestageTick,
  // Tail-tolerance instants (fail-slow policies, array track).
  kTimeoutFired,
  kHedgeIssued,
  kHedgeWon,
  kRedirected,
  // What-if service job lifecycle (src/svc). These spans live on the
  // service supervisor's wall-clock tracer, not a simulation tracer:
  // kJobQueue covers admission -> worker pickup, kJobRun covers the
  // simulation attempt(s) under the same span id.
  kJobQueue,
  kJobRun,
  // Service instants: admission-control rejection, a transient-failure
  // retry, a deadline/watchdog cancellation.
  kJobRejected,
  kJobRetry,
  kJobDeadline,
  kJobWatchdog,
  // Sentinel: "derive from the op kind" default for DiskRequest tagging.
  kAuto,
};

const char* to_string(ObsPhase phase);

/// The write phase an RMW op transitions into once its read pass is done.
constexpr ObsPhase rmw_write_phase(ObsPhase read_phase) {
  return read_phase == ObsPhase::kReadOldParity ? ObsPhase::kWriteParity
                                                : ObsPhase::kWriteData;
}

enum class ObsType : std::uint8_t { kBegin, kEnd, kInstant };

/// One tracer record. 24 bytes; appended in simulation-time order (the
/// event queue's clock is monotonic), so the buffer needs no sorting.
struct TraceEvent {
  SimTime ts = 0.0;        // ms of simulation time
  std::uint64_t id = 0;    // span id; a begin and its end share it
  std::int32_t array = -1; // owning array, -1 = simulator-wide
  std::int16_t track = -1; // disk index within the array, -1 = array track
  ObsPhase phase = ObsPhase::kAuto;
  ObsType type = ObsType::kInstant;
};

}  // namespace raidsim
