#include "obs/metrics_registry.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace raidsim {

namespace metrics_detail {

std::size_t thread_shard() {
  // Dense per-thread slot ids beat hashing std::thread::id: the first
  // kShards threads get distinct shards, and slot assignment is one
  // thread_local read after the first call.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % kShards;
}

}  // namespace metrics_detail

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
    return false;
  for (const char c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  return true;
}

void write_double(std::ostream& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    out << static_cast<std::int64_t>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

HistogramMetric::HistogramMetric(const std::atomic<bool>* enabled,
                                 double min_value, double max_value,
                                 std::size_t buckets)
    : buckets_(buckets),
      min_value_(min_value),
      shards_(metrics_detail::kShards),
      enabled_(enabled) {
  if (buckets < 1 || min_value <= 0.0 || max_value <= min_value)
    throw std::invalid_argument("HistogramMetric: bad bucket layout");
  log_min_ = std::log(min_value);
  log_step_ = (std::log(max_value) - log_min_) / static_cast<double>(buckets);
  // vector<atomic> is neither copyable nor movable element-wise, but
  // constructing by count and move-assigning the whole vector is fine.
  for (auto& shard : shards_)
    shard.counts = std::vector<std::atomic<std::uint64_t>>(buckets);
}

std::size_t HistogramMetric::bucket_index(double x) const {
  if (!(x > min_value_)) return 0;
  const double pos = (std::log(x) - log_min_) / log_step_;
  if (pos >= static_cast<double>(buckets_ - 1)) return buckets_ - 1;
  return static_cast<std::size_t>(pos);
}

void HistogramMetric::observe(double x) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  Shard& shard = shards_[metrics_detail::thread_shard()];
  shard.counts[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  double cur = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(cur, cur + x,
                                          std::memory_order_relaxed)) {
  }
}

std::uint64_t HistogramMetric::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (const auto& c : shard.counts)
      total += c.load(std::memory_order_relaxed);
  return total;
}

double HistogramMetric::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_)
    total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> HistogramMetric::merged_buckets() const {
  std::vector<std::uint64_t> merged(buckets_, 0);
  for (const auto& shard : shards_)
    for (std::size_t i = 0; i < buckets_; ++i)
      merged[i] += shard.counts[i].load(std::memory_order_relaxed);
  return merged;
}

double HistogramMetric::bucket_upper_bound(std::size_t i) const {
  if (i + 1 >= buckets_) return std::numeric_limits<double>::infinity();
  return std::exp(log_min_ + log_step_ * static_cast<double>(i + 1));
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::lookup(const std::string& name,
                                                Kind kind,
                                                const std::string& help,
                                                double min_value,
                                                double max_value,
                                                std::size_t buckets) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                name + "'");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                  "' re-registered with a different kind");
    return it->second;
  }
  // Construct the metric while mu_ is still held: two threads racing on
  // the first registration of a name must both come away holding the
  // same object, and scrape()/reset() must never observe an Entry whose
  // metric pointer is still null.
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  switch (kind) {
    case Kind::kCounter:
      entry.counter.reset(new Counter(&enabled_));
      break;
    case Kind::kGauge:
      entry.gauge.reset(new Gauge(&enabled_));
      break;
    case Kind::kHistogram:
      entry.histogram.reset(
          new HistogramMetric(&enabled_, min_value, max_value, buckets));
      break;
  }
  return metrics_.emplace(name, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return *lookup(name, Kind::kCounter, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return *lookup(name, Kind::kGauge, help).gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help,
                                            double min_value, double max_value,
                                            std::size_t buckets) {
  return *lookup(name, Kind::kHistogram, help, min_value, max_value, buckets)
              .histogram;
}

std::string MetricsRegistry::scrape() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    out << "# HELP " << name << ' ' << entry.help << '\n';
    switch (entry.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << ' ' << entry.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << ' ';
        write_double(out, entry.gauge->value());
        out << '\n';
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        const auto buckets = entry.histogram->merged_buckets();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          cumulative += buckets[i];
          const double le = entry.histogram->bucket_upper_bound(i);
          out << name << "_bucket{le=\"";
          if (std::isinf(le)) {
            out << "+Inf";
          } else {
            write_double(out, le);
          }
          out << "\"} " << cumulative << '\n';
        }
        out << name << "_sum ";
        write_double(out, entry.histogram->sum());
        out << '\n';
        out << name << "_count " << cumulative << '\n';
        break;
      }
    }
  }
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter:
        for (auto& shard : entry.counter->shards_)
          shard.v.store(0, std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        entry.gauge->value_.store(0.0, std::memory_order_relaxed);
        break;
      case Kind::kHistogram:
        for (auto& shard : entry.histogram->shards_) {
          for (auto& c : shard.counts)
            c.store(0, std::memory_order_relaxed);
          shard.sum.store(0.0, std::memory_order_relaxed);
        }
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

}  // namespace raidsim
