#include "obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace raidsim {

namespace {

bool is_service_phase(ObsPhase phase) {
  switch (phase) {
    case ObsPhase::kReadData:
    case ObsPhase::kReadOldData:
    case ObsPhase::kReadOldParity:
    case ObsPhase::kWriteData:
    case ObsPhase::kWriteParity:
    case ObsPhase::kMirrorCopy:
      return true;
    default:
      return false;
  }
}

const char* async_category(ObsPhase phase) {
  switch (phase) {
    case ObsPhase::kHostRead:
    case ObsPhase::kHostWrite:
      return "host";
    case ObsPhase::kDiskQueue:
      return "queue";
    case ObsPhase::kDestage:
      return "destage";
    case ObsPhase::kRebuild:
    case ObsPhase::kRecovery:
      return "maintenance";
    case ObsPhase::kJobQueue:
    case ObsPhase::kJobRun:
      return "svc";
    default:
      return nullptr;
  }
}

const char* instant_category(ObsPhase phase) {
  switch (phase) {
    case ObsPhase::kTimeoutFired:
    case ObsPhase::kHedgeIssued:
    case ObsPhase::kHedgeWon:
    case ObsPhase::kRedirected:
      return "tail";
    case ObsPhase::kJobRejected:
    case ObsPhase::kJobRetry:
    case ObsPhase::kJobDeadline:
    case ObsPhase::kJobWatchdog:
      return "svc";
    default:
      return "cache";
  }
}

// pid 0 is the simulator-wide process; arrays map to pid = index + 1.
int pid_of(const TraceEvent& e) { return e.array + 1; }
// tid 0 is the array/controller track; disks map to tid = index + 1.
int tid_of(const TraceEvent& e) { return e.track + 1; }

class JsonEventWriter {
 public:
  explicit JsonEventWriter(std::ostream& out) : out_(out) {}

  std::ostream& open_event() {
    out_ << (first_ ? "\n    {" : ",\n    {");
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void write_counter_events(JsonEventWriter& events,
                          const TimeSeriesSampler& sampler) {
  const auto& topology = sampler.disks_per_array();
  const auto& samples = sampler.samples();
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const TelemetrySample& sample = samples[s];
    const double ts_us = sample.t * 1e3;
    events.open_event() << "\"name\": \"outstanding\", \"ph\": \"C\", "
                        << "\"pid\": 0, \"ts\": " << ts_us
                        << ", \"args\": {\"requests\": " << sample.outstanding
                        << "}}";
    std::size_t disk = 0;
    for (std::size_t a = 0; a < topology.size(); ++a) {
      auto& out = events.open_event();
      out << "\"name\": \"queue-depth\", \"ph\": \"C\", \"pid\": " << (a + 1)
          << ", \"ts\": " << ts_us << ", \"args\": {";
      for (int d = 0; d < topology[a]; ++d, ++disk) {
        const std::uint32_t depth =
            disk < sample.queue_depth.size() ? sample.queue_depth[disk] : 0;
        out << (d ? ", " : "") << "\"d" << d << "\": " << depth;
      }
      out << "}}";
      if (a < sample.cache_blocks.size()) {
        events.open_event()
            << "\"name\": \"cache\", \"ph\": \"C\", \"pid\": " << (a + 1)
            << ", \"ts\": " << ts_us << ", \"args\": {\"used\": "
            << sample.cache_blocks[a]
            << ", \"dirty\": " << sample.cache_dirty[a] << "}}";
      }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const TimeSeriesSampler* sampler) {
  out.setf(std::ios::fixed);
  out.precision(3);

  // Track topology seen in the events, for the metadata names.
  std::map<int, int> max_track_per_array;  // array -> max track
  tracer.for_each([&](const TraceEvent& e) {
    auto [it, inserted] = max_track_per_array.emplace(e.array, e.track);
    if (!inserted) it->second = std::max(it->second, static_cast<int>(e.track));
  });
  if (sampler) {
    const auto& topology = sampler->disks_per_array();
    for (std::size_t a = 0; a < topology.size(); ++a) {
      auto [it, inserted] = max_track_per_array.emplace(
          static_cast<int>(a), topology[a] - 1);
      if (!inserted) it->second = std::max(it->second, topology[a] - 1);
    }
  }

  out << "{\n"
      << "  \"displayTimeUnit\": \"ms\",\n"
      << "  \"otherData\": {\"schema\": 1, \"generator\": \"raidsim\", "
      << "\"events_recorded\": " << tracer.recorded()
      << ", \"events_retained\": " << tracer.retained() << "},\n"
      << "  \"traceEvents\": [";

  JsonEventWriter events(out);

  // Metadata: process/thread names, so Perfetto shows one named process
  // per array and one named track per disk.
  events.open_event() << "\"name\": \"process_name\", \"ph\": \"M\", "
                      << "\"pid\": 0, \"args\": {\"name\": \"simulator\"}}";
  for (const auto& [array, max_track] : max_track_per_array) {
    if (array < 0) continue;
    events.open_event() << "\"name\": \"process_name\", \"ph\": \"M\", "
                        << "\"pid\": " << (array + 1)
                        << ", \"args\": {\"name\": \"array " << array << "\"}}";
    events.open_event() << "\"name\": \"thread_name\", \"ph\": \"M\", "
                        << "\"pid\": " << (array + 1)
                        << ", \"tid\": 0, \"args\": {\"name\": \"array\"}}";
    for (int d = 0; d <= max_track; ++d)
      events.open_event() << "\"name\": \"thread_name\", \"ph\": \"M\", "
                          << "\"pid\": " << (array + 1) << ", \"tid\": "
                          << (d + 1) << ", \"args\": {\"name\": \"disk " << d
                          << "\"}}";
  }

  // Open service-phase begins awaiting their end (keyed by span id; the
  // phases under one id never nest, they run back to back).
  std::unordered_map<std::uint64_t, TraceEvent> open_spans;
  tracer.for_each([&](const TraceEvent& e) {
    if (is_service_phase(e.phase)) {
      if (e.type == ObsType::kBegin) {
        open_spans[e.id] = e;
      } else if (e.type == ObsType::kEnd) {
        auto it = open_spans.find(e.id);
        // Ends without a retained begin (ring wraparound) are dropped.
        if (it == open_spans.end()) return;
        const TraceEvent& b = it->second;
        events.open_event()
            << "\"name\": \"" << to_string(e.phase) << "\", \"cat\": \"disk\", "
            << "\"ph\": \"X\", \"pid\": " << pid_of(b)
            << ", \"tid\": " << tid_of(b) << ", \"ts\": " << b.ts * 1e3
            << ", \"dur\": " << (e.ts - b.ts) * 1e3
            << ", \"args\": {\"span\": " << e.id << "}}";
        open_spans.erase(it);
      }
      return;
    }
    if (const char* cat = async_category(e.phase)) {
      events.open_event()
          << "\"name\": \"" << to_string(e.phase) << "\", \"cat\": \"" << cat
          << "\", \"ph\": \"" << (e.type == ObsType::kBegin ? 'b' : 'e')
          << "\", \"id\": " << e.id << ", \"pid\": " << pid_of(e)
          << ", \"tid\": " << tid_of(e) << ", \"ts\": " << e.ts * 1e3 << "}";
      return;
    }
    events.open_event()
        << "\"name\": \"" << to_string(e.phase) << "\", \"cat\": \""
        << instant_category(e.phase) << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": "
        << pid_of(e) << ", \"tid\": " << tid_of(e) << ", \"ts\": " << e.ts * 1e3
        << ", \"args\": {\"span\": " << e.id << "}}";
  });

  if (sampler) write_counter_events(events, *sampler);

  out << "\n  ]\n}\n";
}

void write_timeseries_csv(std::ostream& out,
                          const TimeSeriesSampler& sampler) {
  out.setf(std::ios::fixed);
  out.precision(6);
  const auto& samples = sampler.samples();
  const std::size_t disks =
      samples.size() ? samples[0].queue_depth.size() : 0;
  const std::size_t arrays =
      samples.size() ? samples[0].cache_blocks.size() : 0;

  out << "t_ms,outstanding,events_executed";
  for (std::size_t d = 0; d < disks; ++d) out << ",queue_d" << d;
  for (std::size_t d = 0; d < disks; ++d) out << ",util_d" << d;
  for (std::size_t a = 0; a < arrays; ++a)
    out << ",cache_used_a" << a << ",cache_dirty_a" << a;
  out << "\n";

  for (std::size_t s = 0; s < samples.size(); ++s) {
    const TelemetrySample& sample = samples[s];
    out << sample.t << "," << sample.outstanding << ","
        << sample.events_executed;
    for (std::size_t d = 0; d < disks; ++d)
      out << "," << (d < sample.queue_depth.size() ? sample.queue_depth[d] : 0);
    // Windowed utilization: busy-time delta over the elapsed delta since
    // the previous retained sample (first row: since time zero).
    const TelemetrySample* prev = s ? &samples[s - 1] : nullptr;
    const double window = sample.t - (prev ? prev->t : 0.0);
    for (std::size_t d = 0; d < disks; ++d) {
      const double busy = d < sample.busy_ms.size() ? sample.busy_ms[d] : 0.0;
      const double before =
          prev && d < prev->busy_ms.size() ? prev->busy_ms[d] : 0.0;
      out << "," << (window > 0.0 ? (busy - before) / window : 0.0);
    }
    for (std::size_t a = 0; a < arrays; ++a)
      out << "," << sample.cache_blocks[a] << "," << sample.cache_dirty[a];
    out << "\n";
  }
}

void write_timeseries_json(std::ostream& out,
                           const TimeSeriesSampler& sampler) {
  out.setf(std::ios::fixed);
  out.precision(6);
  const auto& samples = sampler.samples();
  out << "{\n  \"interval_ms\": " << sampler.interval_ms()
      << ",\n  \"samples\": [";
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const TelemetrySample& sample = samples[s];
    out << (s ? ",\n    {" : "\n    {") << "\"t\": " << sample.t
        << ", \"outstanding\": " << sample.outstanding
        << ", \"events_executed\": " << sample.events_executed
        << ", \"queue_depth\": [";
    for (std::size_t d = 0; d < sample.queue_depth.size(); ++d)
      out << (d ? "," : "") << sample.queue_depth[d];
    out << "], \"busy_ms\": [";
    for (std::size_t d = 0; d < sample.busy_ms.size(); ++d)
      out << (d ? "," : "") << sample.busy_ms[d];
    out << "], \"cache_used\": [";
    for (std::size_t a = 0; a < sample.cache_blocks.size(); ++a)
      out << (a ? "," : "") << sample.cache_blocks[a];
    out << "], \"cache_dirty\": [";
    for (std::size_t a = 0; a < sample.cache_dirty.size(); ++a)
      out << (a ? "," : "") << sample.cache_dirty[a];
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

std::vector<std::string> export_run_artifacts(
    const std::string& prefix, const Tracer& tracer,
    const TimeSeriesSampler* sampler) {
  std::vector<std::string> written;
  const std::string trace_path = prefix + ".trace.json";
  {
    std::ofstream out(trace_path);
    if (!out)
      throw std::runtime_error("export_run_artifacts: cannot write " +
                               trace_path);
    write_chrome_trace(out, tracer, sampler);
  }
  written.push_back(trace_path);
  if (sampler) {
    const std::string series_path = prefix + ".timeseries.csv";
    std::ofstream out(series_path);
    if (!out)
      throw std::runtime_error("export_run_artifacts: cannot write " +
                               series_path);
    write_timeseries_csv(out, *sampler);
    written.push_back(series_path);
  }
  return written;
}

}  // namespace raidsim
