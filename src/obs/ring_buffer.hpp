#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace raidsim {

/// Fixed-capacity overwrite-oldest ring. Backs the time-series sampler so
/// an arbitrarily long run keeps the newest `capacity` samples in bounded
/// memory. Index 0 is always the oldest retained element.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  void push(T value) {
    ++pushed_;
    if (data_.size() < capacity_) {
      data_.push_back(std::move(value));
      return;
    }
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
  }

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total elements ever pushed (size() once the ring has wrapped equals
  /// capacity(); pushed() keeps counting).
  std::uint64_t pushed() const { return pushed_; }
  bool wrapped() const { return pushed_ > static_cast<std::uint64_t>(size()); }

  const T& operator[](std::size_t i) const {
    return data_[(head_ + i) % data_.size()];
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::uint64_t pushed_ = 0;
  std::vector<T> data_;
};

}  // namespace raidsim
