#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "obs/tracer.hpp"

namespace raidsim {

/// Chrome trace_event JSON (the format Perfetto and chrome://tracing
/// load). Mapping: pid = array index, tid 0 = the array/controller track,
/// tid d+1 = disk d. Disk service phases become complete ("X") slices;
/// host requests, disk-queue waits, and controller background work --
/// which all overlap -- become async ("b"/"e") slices grouped by
/// category; cache/stall markers become instants; sampler snapshots (when
/// a sampler is given) become counter ("C") series per array. See
/// docs/observability.md for the full schema.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const TimeSeriesSampler* sampler = nullptr);

/// Time-series dump, one row per sample: per-disk queue depth and
/// windowed utilization, per-array cache occupancy/dirty ratio, and
/// outstanding host requests.
void write_timeseries_csv(std::ostream& out, const TimeSeriesSampler& sampler);
void write_timeseries_json(std::ostream& out, const TimeSeriesSampler& sampler);

/// Convenience: write `<prefix>.trace.json` (and, with a sampler,
/// `<prefix>.timeseries.csv`). Returns the paths written; throws
/// std::runtime_error when a file cannot be opened.
std::vector<std::string> export_run_artifacts(const std::string& prefix,
                                              const Tracer& tracer,
                                              const TimeSeriesSampler* sampler);

}  // namespace raidsim
