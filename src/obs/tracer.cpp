#include "obs/tracer.hpp"

#include <algorithm>

namespace raidsim {

const char* to_string(ObsPhase phase) {
  switch (phase) {
    case ObsPhase::kHostRead: return "host-read";
    case ObsPhase::kHostWrite: return "host-write";
    case ObsPhase::kDiskQueue: return "disk-queue";
    case ObsPhase::kReadData: return "read-data";
    case ObsPhase::kReadOldData: return "read-old-data";
    case ObsPhase::kReadOldParity: return "read-old-parity";
    case ObsPhase::kWriteData: return "write-data";
    case ObsPhase::kWriteParity: return "write-parity";
    case ObsPhase::kMirrorCopy: return "mirror-copy";
    case ObsPhase::kDestage: return "destage";
    case ObsPhase::kRebuild: return "rebuild";
    case ObsPhase::kRecovery: return "recovery";
    case ObsPhase::kCacheHit: return "cache-hit";
    case ObsPhase::kCacheMiss: return "cache-miss";
    case ObsPhase::kWriteStall: return "write-stall";
    case ObsPhase::kDestageTick: return "destage-tick";
    case ObsPhase::kTimeoutFired: return "timeout-fired";
    case ObsPhase::kHedgeIssued: return "hedge-issued";
    case ObsPhase::kHedgeWon: return "hedge-won";
    case ObsPhase::kRedirected: return "redirected";
    case ObsPhase::kJobQueue: return "job-queue";
    case ObsPhase::kJobRun: return "job-run";
    case ObsPhase::kJobRejected: return "job-rejected";
    case ObsPhase::kJobRetry: return "job-retry";
    case ObsPhase::kJobDeadline: return "job-deadline";
    case ObsPhase::kJobWatchdog: return "job-watchdog";
    case ObsPhase::kAuto: return "auto";
  }
  return "?";
}

Tracer::Tracer(Config config)
    : capacity_(std::max<std::size_t>(1, config.max_events)) {
  buffer_.reserve(std::min<std::size_t>(capacity_, 1u << 16));
}

void Tracer::push(const TraceEvent& event) {
  ++recorded_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  wrapped_ = true;
  buffer_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

std::uint64_t Tracer::begin(ObsPhase phase, int array, int track, SimTime ts) {
  const std::uint64_t id = next_id_++;
  push(TraceEvent{ts, id, array, static_cast<std::int16_t>(track), phase,
                  ObsType::kBegin});
  return id;
}

void Tracer::begin_with(std::uint64_t id, ObsPhase phase, int array, int track,
                        SimTime ts) {
  push(TraceEvent{ts, id, array, static_cast<std::int16_t>(track), phase,
                  ObsType::kBegin});
}

void Tracer::end(std::uint64_t id, ObsPhase phase, int array, int track,
                 SimTime ts) {
  push(TraceEvent{ts, id, array, static_cast<std::int16_t>(track), phase,
                  ObsType::kEnd});
}

void Tracer::instant(ObsPhase phase, int array, int track, SimTime ts,
                     std::uint64_t id) {
  push(TraceEvent{ts, id, array, static_cast<std::int16_t>(track), phase,
                  ObsType::kInstant});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

}  // namespace raidsim
