#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_event.hpp"

namespace raidsim {

/// Low-overhead request-lifecycle tracer. One instance per Simulator (the
/// simulation is single-threaded; parallel sweeps give every job its own
/// tracer, so no synchronization is needed). Recording one event is an
/// append into a pre-sized buffer; when the configured capacity is
/// reached the buffer wraps (ring mode), so long traced runs keep the
/// most recent window instead of exhausting memory.
///
/// Fast paths: every instrumentation site goes through the obs_* helpers
/// below, which compile to nothing when RAIDSIM_TRACING_DISABLED is
/// defined (CMake -DRAIDSIM_TRACING=OFF) and to a single null-pointer
/// test per event when tracing is compiled in but not requested.
class Tracer {
 public:
  struct Config {
    /// Event-buffer capacity; older events are overwritten once full.
    std::size_t max_events = 1u << 22;
  };

  Tracer() : Tracer(Config{}) {}
  explicit Tracer(Config config);

  /// Open a span; returns its id (never 0).
  std::uint64_t begin(ObsPhase phase, int array, int track, SimTime ts);
  /// Open a span under an existing id (e.g. an RMW op's write phase
  /// continuing the read phase's id).
  void begin_with(std::uint64_t id, ObsPhase phase, int array, int track,
                  SimTime ts);
  void end(std::uint64_t id, ObsPhase phase, int array, int track, SimTime ts);
  void instant(ObsPhase phase, int array, int track, SimTime ts,
               std::uint64_t id = 0);

  /// Events recorded and retained, oldest first (unwrapped).
  std::vector<TraceEvent> events() const;
  /// Visit retained events oldest-first without copying.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = buffer_.size();  // == capacity_ once wrapped
    for (std::size_t i = 0; i < n; ++i) fn(buffer_[(head_ + i) % n]);
  }

  std::uint64_t recorded() const { return recorded_; }
  std::size_t retained() const { return buffer_.size(); }
  /// Events overwritten by ring wraparound.
  std::uint64_t overwritten() const {
    return recorded_ - static_cast<std::uint64_t>(buffer_.size());
  }
  bool wrapped() const { return wrapped_; }

 private:
  void push(const TraceEvent& event);

  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  // oldest retained event once wrapped
  bool wrapped_ = false;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_id_ = 1;
};

#ifdef RAIDSIM_TRACING_DISABLED
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// Instrumentation-site helpers: no-ops when the tracer pointer is null
/// (runtime off) and compiled out entirely under RAIDSIM_TRACING_DISABLED.
inline std::uint64_t obs_begin(Tracer* tracer, ObsPhase phase, int array,
                               int track, SimTime ts) {
  if constexpr (kTracingCompiledIn)
    if (tracer) return tracer->begin(phase, array, track, ts);
  return 0;
}

inline void obs_begin_with(Tracer* tracer, std::uint64_t id, ObsPhase phase,
                           int array, int track, SimTime ts) {
  if constexpr (kTracingCompiledIn)
    if (tracer && id) tracer->begin_with(id, phase, array, track, ts);
}

inline void obs_end(Tracer* tracer, std::uint64_t id, ObsPhase phase,
                    int array, int track, SimTime ts) {
  if constexpr (kTracingCompiledIn)
    if (tracer && id) tracer->end(id, phase, array, track, ts);
}

inline void obs_instant(Tracer* tracer, ObsPhase phase, int array, int track,
                        SimTime ts, std::uint64_t id = 0) {
  if constexpr (kTracingCompiledIn)
    if (tracer) tracer->instant(phase, array, track, ts, id);
}

}  // namespace raidsim
