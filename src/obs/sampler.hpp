#pragma once

#include <cstdint>
#include <vector>

#include "obs/ring_buffer.hpp"
#include "sim/event_queue.hpp"

namespace raidsim {

/// One time-series snapshot of the I/O subsystem. Disk vectors are
/// array-major (same order as Metrics::disk_accesses); busy_ms is the
/// cumulative busy time, so a window's utilization is the delta between
/// consecutive samples divided by the interval.
struct TelemetrySample {
  SimTime t = 0.0;
  std::uint64_t outstanding = 0;      // host requests in flight
  std::uint64_t events_executed = 0;  // kernel events so far
  std::vector<std::uint32_t> queue_depth;   // per disk
  std::vector<double> busy_ms;              // per disk, cumulative
  std::vector<std::uint64_t> cache_blocks;  // per array: occupied slots
  std::vector<std::uint64_t> cache_dirty;   // per array: dirty blocks
};

/// Periodic snapshot collector. The Simulator drives it from a timer on
/// the event queue (the sampler itself owns no events, so attaching one
/// never perturbs the simulated I/O) and fills each sample; the samples
/// land in a ring buffer so long runs keep the newest window.
class TimeSeriesSampler {
 public:
  TimeSeriesSampler(double interval_ms, std::size_t capacity);

  double interval_ms() const { return interval_ms_; }

  /// Topology, set once before sampling: disks per array, in array order.
  void set_topology(std::vector<int> disks_per_array);
  const std::vector<int>& disks_per_array() const { return disks_per_array_; }

  void record(TelemetrySample sample) { samples_.push(std::move(sample)); }

  const RingBuffer<TelemetrySample>& samples() const { return samples_; }

 private:
  double interval_ms_;
  std::vector<int> disks_per_array_;
  RingBuffer<TelemetrySample> samples_;
};

}  // namespace raidsim
