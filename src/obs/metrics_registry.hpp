#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace raidsim {

/// Process-wide registry of named counters, gauges, and log-bucketed
/// histograms -- the live-telemetry counterpart of the per-run Tracer.
/// The service's `metrics` op scrapes it as Prometheus text; raidsim_top
/// renders it.
///
/// Discipline (same as tracing): telemetry is passive. A metric update
/// never touches simulation state, so registry-on runs are bit-identical
/// to registry-off runs -- tests/runner/progress_test.cpp asserts it on
/// both engines. Hot-path updates are lock-free: counters and histograms
/// are sharded across cache-line-padded slots indexed by a per-thread
/// slot id and written with relaxed atomics; scrape() merges the shards.
/// A disabled registry (set_enabled(false)) reduces every update to one
/// relaxed bool load and a branch.
///
/// Instrumentation sites hold `Counter&`/`Gauge&` references obtained
/// once at setup (registration takes a mutex; updates never do).

namespace metrics_detail {
/// Shards per metric. Threads map onto shards by a cheap per-thread slot
/// id; more threads than shards just share slots (still lock-free).
inline constexpr std::size_t kShards = 16;
std::size_t thread_shard();
}  // namespace metrics_detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[metrics_detail::thread_shard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged value. Monotone across calls (per-location coherence makes
  /// each shard's reads non-decreasing).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[metrics_detail::kShards];
  const std::atomic<bool>* enabled_;
};

/// Instantaneous value (queue depth, in-flight jobs, quarantined disks).
/// Single atomic double: set() is a store, add() a CAS loop -- gauges
/// update orders of magnitude less often than counters.
class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Log-bucketed histogram for latency-like quantities, the atomic
/// sibling of util/stats.hpp's Histogram: buckets cover
/// [min_value, max_value) geometrically, values outside clamp into the
/// edge buckets. Per-shard bucket arrays + sum keep observe() lock-free.
class HistogramMetric {
 public:
  void observe(double x);

  std::uint64_t count() const;
  double sum() const;
  /// Merged per-bucket counts (size bucket_count()).
  std::vector<std::uint64_t> merged_buckets() const;
  std::size_t bucket_count() const { return buckets_; }
  /// Inclusive upper bound of bucket i (Prometheus `le`); the last
  /// bucket's bound is +infinity.
  double bucket_upper_bound(std::size_t i) const;

 private:
  friend class MetricsRegistry;
  HistogramMetric(const std::atomic<bool>* enabled, double min_value,
                  double max_value, std::size_t buckets);

  std::size_t bucket_index(double x) const;

  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };
  std::size_t buckets_;
  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<Shard> shards_;
  const std::atomic<bool>* enabled_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem instruments into.
  static MetricsRegistry& instance();

  /// Register (or look up) a metric. Names must match
  /// [a-zA-Z_][a-zA-Z0-9_]*; re-registering an existing name returns the
  /// same object (help text from the first registration wins) and throws
  /// std::invalid_argument when the kinds conflict. References stay
  /// valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  HistogramMetric& histogram(const std::string& name, const std::string& help,
                             double min_value = 0.01, double max_value = 1e5,
                             std::size_t buckets = 40);

  /// Runtime kill switch (default on). Off: every update is one relaxed
  /// load + branch; values freeze. perf_harness's `telemetry` section
  /// measures the on/off delta.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Prometheus text exposition of every registered metric, name-sorted:
  /// `# HELP` / `# TYPE` headers, counter/gauge samples, cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count` for histograms.
  std::string scrape() const;

  /// Zero every registered metric (tests and benchmark isolation).
  void reset();

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  /// Find-or-create under mu_. The metric object is constructed here,
  /// while the lock is still held, so concurrent first registrations of
  /// one name agree on a single object and scrape()/reset() never see a
  /// half-initialized Entry. Histogram layout params are ignored for
  /// counters/gauges.
  Entry& lookup(const std::string& name, Kind kind, const std::string& help,
                double min_value = 0.0, double max_value = 0.0,
                std::size_t buckets = 0);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  // sorted -> stable scrape order
};

}  // namespace raidsim
