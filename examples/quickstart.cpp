// Quickstart: simulate a RAID5 array under a small OLTP workload and
// print the headline metrics. This is the smallest end-to-end use of the
// raidsim public API:
//
//   1. pick a workload (one of the paper's trace profiles, scaled down),
//   2. describe the I/O subsystem with SimulationConfig,
//   3. run and inspect Metrics.
//
// Usage: quickstart [scale]   (default scale 0.1 of trace2)

#include <cstdlib>
#include <iostream>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;

  WorkloadOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;  // N = 10, the paper's default
  config.striping_unit_blocks = 1;
  config.sync = SyncPolicy::kDiskFirst;
  config.cached = false;

  auto trace = make_workload("trace2", options);
  std::cout << "Simulating: " << config.describe() << " on trace2 (scale "
            << options.scale << ")\n";

  const Metrics metrics = run_simulation(config, *trace);

  TablePrinter table({"metric", "value"});
  table.add_row({"requests", std::to_string(metrics.requests)});
  table.add_row({"mean response (ms)",
                 TablePrinter::num(metrics.mean_response_ms())});
  table.add_row({"read response (ms)",
                 TablePrinter::num(metrics.response_read.mean())});
  table.add_row({"write response (ms)",
                 TablePrinter::num(metrics.response_write.mean())});
  table.add_row({"p95 response (ms)",
                 TablePrinter::num(metrics.response_all.p95())});
  table.add_row({"mean disk utilization",
                 TablePrinter::num(metrics.mean_disk_utilization(), 3)});
  table.add_row({"disk access CV",
                 TablePrinter::num(metrics.disk_access_cv(), 3)});
  table.add_row({"arrays", std::to_string(metrics.arrays)});
  table.add_row({"total disks", std::to_string(metrics.total_disks)});
  table.add_row({"events executed", std::to_string(metrics.events_executed)});
  table.print(std::cout);
  return 0;
}
