// Trace toolbox: generate a synthetic OLTP trace to a file, analyse a
// trace file (Table 2-style statistics), or replay one through a chosen
// organization. Shows the TraceReader/TraceWriter path users take to
// drive the simulator with their own traces.
//
// Usage:
//   trace_tools generate <trace1|trace2> <scale> <out.trace>
//   trace_tools analyze <file.trace>
//   trace_tools replay <file.trace> <base|mirror|raid5|parstrip>
#include <fstream>
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  trace_tools generate <trace1|trace2> <scale> <out.trace>\n"
               "  trace_tools analyze <file.trace>\n"
               "  trace_tools replay <file.trace> "
               "<base|mirror|raid5|parstrip> [--cached]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "generate") {
    if (argc < 5) return usage();
    WorkloadOptions options;
    options.scale = std::atof(argv[3]);
    auto trace = make_workload(argv[2], options);
    std::ofstream out(argv[4]);
    if (!out) {
      std::cerr << "cannot open " << argv[4] << "\n";
      return 1;
    }
    TraceWriter::write(*trace, out);
    std::cout << "wrote " << argv[4] << "\n";
    return 0;
  }

  if (command == "analyze") {
    auto reader = TraceReader::open(argv[2]);
    const TraceStats stats = TraceStats::collect(*reader);
    std::cout << TraceStats::table({&stats}, {argv[2]});
    return 0;
  }

  if (command == "replay") {
    if (argc < 4) return usage();
    SimulationConfig config;
    const std::string org = argv[3];
    if (org == "base") config.organization = Organization::kBase;
    else if (org == "mirror") config.organization = Organization::kMirror;
    else if (org == "raid5") config.organization = Organization::kRaid5;
    else if (org == "parstrip")
      config.organization = Organization::kParityStriping;
    else return usage();
    config.cached = argc > 4 && std::string(argv[4]) == "--cached";

    auto reader = TraceReader::open(argv[2]);
    const Metrics m = run_simulation(config, *reader);
    TablePrinter table({"metric", "value"});
    table.add_row({"requests", std::to_string(m.requests)});
    table.add_row({"mean response (ms)",
                   TablePrinter::num(m.mean_response_ms())});
    table.add_row({"p95 response (ms)",
                   TablePrinter::num(m.response_all.p95())});
    table.add_row({"mean disk utilization",
                   TablePrinter::num(m.mean_disk_utilization(), 3)});
    table.print(std::cout);
    return 0;
  }

  return usage();
}
