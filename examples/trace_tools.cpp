// Trace toolbox: generate a synthetic OLTP trace to a file, convert
// between the text and binary trace formats, analyse a trace file
// (Table 2-style statistics), or replay one through a chosen
// organization. Shows the TraceReader/TraceWriter path users take to
// drive the simulator with their own traces. analyze/replay sniff the
// format, and generate picks it from the output extension: `.btrace`
// writes the compact binary format (records bounds-checked up front so
// replays skip per-record validation), anything else the text format.
//
// Usage:
//   trace_tools generate <trace1|trace2> <scale> <out.trace|out.btrace>
//   trace_tools convert <in.trace> <out.trace|out.btrace>
//   trace_tools analyze <file.trace>
//   trace_tools replay <file.trace> <base|mirror|raid5|parstrip>
#include <fstream>
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  trace_tools generate <trace1|trace2> <scale> "
               "<out.trace|out.btrace>\n"
               "  trace_tools convert <in.trace> <out.trace|out.btrace>\n"
               "  trace_tools analyze <file.trace>\n"
               "  trace_tools replay <file.trace> "
               "<base|mirror|raid5|parstrip> [--cached]\n";
  return 2;
}

bool wants_binary(const std::string& path) {
  const std::string ext = ".btrace";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

int write_stream(raidsim::TraceStream& stream, const std::string& out_path) {
  if (wants_binary(out_path)) {
    const auto records = raidsim::BinaryTraceWriter::write_file(stream,
                                                                out_path);
    std::cout << "wrote " << out_path << " (" << records
              << " records, binary prevalidated)\n";
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  raidsim::TraceWriter::write(stream, out);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "generate") {
    if (argc < 5) return usage();
    WorkloadOptions options;
    options.scale = std::atof(argv[3]);
    auto trace = make_workload(argv[2], options);
    return write_stream(*trace, argv[4]);
  }

  if (command == "convert") {
    if (argc < 4) return usage();
    auto in = open_trace(argv[2]);
    return write_stream(*in, argv[3]);
  }

  if (command == "analyze") {
    auto reader = open_trace(argv[2]);
    const TraceStats stats = TraceStats::collect(*reader);
    std::cout << TraceStats::table({&stats}, {argv[2]});
    return 0;
  }

  if (command == "replay") {
    if (argc < 4) return usage();
    SimulationConfig config;
    const std::string org = argv[3];
    if (org == "base") config.organization = Organization::kBase;
    else if (org == "mirror") config.organization = Organization::kMirror;
    else if (org == "raid5") config.organization = Organization::kRaid5;
    else if (org == "parstrip")
      config.organization = Organization::kParityStriping;
    else return usage();
    config.cached = argc > 4 && std::string(argv[4]) == "--cached";

    auto reader = open_trace(argv[2]);
    const Metrics m = run_simulation(config, *reader);
    TablePrinter table({"metric", "value"});
    table.add_row({"requests", std::to_string(m.requests)});
    table.add_row({"mean response (ms)",
                   TablePrinter::num(m.mean_response_ms())});
    table.add_row({"p95 response (ms)",
                   TablePrinter::num(m.response_all.p95())});
    table.add_row({"mean disk utilization",
                   TablePrinter::num(m.mean_disk_utilization(), 3)});
    table.print(std::cout);
    return 0;
  }

  return usage();
}
