// Crash drill: catch a cached RAID5 array mid stripe-update with a
// deterministic probe, pull the plug, and compare four protection
// levels on the IDENTICAL seeded workload (the auditor and journal
// hooks cost zero simulated time, so every variant crashes inside the
// very same in-flight update):
//
//   A  no journal, no recovery      the classic RAID write hole: parity
//                                   and data disagree, silently, until a
//                                   disk failure turns it into garbage;
//   B  intent journal + replay      the NVRAM journal replays and
//                                   resyncs only the dirty stripes;
//   C  full-array resync baseline   also consistent, but walks every
//                                   parity group in the array;
//   D  volatile cache, full resync  the journal and the write cache are
//                                   wiped: parity is repaired but
//                                   acknowledged writes are simply gone.
//
// A shadow-model integrity auditor mirrors every logical write and
// counts write holes and lost writes after each run; the drill exits
// nonzero if any variant violates its guarantee.
//
// Usage: crash_drill [writes]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "array/cached_controller.hpp"
#include "crash/auditor.hpp"
#include "crash/crash_injector.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace raidsim;

struct Variant {
  std::string name;
  bool journal;
  bool nvram_survives;
  bool recover;
  bool full_fallback;
};

struct Outcome {
  ShadowAuditor::Report report;
  ControllerStats stats;
  RecoveryProcess::Stats recovery;
  double crash_time = -1.0;
  std::uint64_t resync_io() const {
    return stats.resync_read_blocks + stats.resync_write_blocks;
  }
};

Outcome run_variant(const Variant& v, int writes) {
  EventQueue eq;

  ArrayController::Config cfg;
  cfg.layout.organization = Organization::kRaid5;
  cfg.layout.data_disks = 4;
  cfg.layout.data_blocks_per_disk = 3000;  // full resync must hurt
  cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();

  CachedController::CacheConfig cache_cfg;
  // Room for the whole burst: the crash must land inside the periodic
  // destage sweep, not a cache-overflow victim writeback.
  cache_cfg.cache_bytes = 2048 * 4096;
  cache_cfg.destage_period_ms = 400.0;
  cache_cfg.intent_journal = v.journal;
  CachedController controller(eq, cfg, cache_cfg);
  ShadowAuditor auditor(controller);

  CrashInjector::Options opt;
  opt.nvram_survives_crash = v.nvram_survives;
  opt.auto_recover = v.recover;
  opt.recovery.full_resync_fallback = v.full_fallback;
  CrashInjector injector(eq, controller, opt);

  // Seeded write burst, identical across variants.
  Rng rng(0xD155C0);
  const std::int64_t capacity = controller.layout().logical_capacity();
  for (int i = 0; i < writes; ++i) {
    const std::int64_t block = rng.uniform_i64(0, capacity - 1);
    eq.schedule_at(i * 3.0, [&controller, block] {
      controller.submit(ArrayRequest{block, 1, true}, [](SimTime) {});
    });
  }

  // Probe between events: the instant a stripe update is caught half
  // landed (parity cover != disk content) schedule the crash a hair
  // later, so completions queued at this exact timestamp -- physically
  // finished writes whose power-fail durable prefix would cover them --
  // drain first; disarm if the window turns out to be such an artifact.
  Outcome out;
  bool armed = false;
  while (!controller.crashed() && eq.now() < 60000.0 && eq.step()) {
    const bool window = auditor.first_inconsistent_block() >= 0;
    if (window && !armed) {
      injector.crash_at(eq.now() + 1e-6);
      armed = true;
    } else if (!window && armed) {
      injector.disarm();
      armed = false;
    }
  }
  if (!controller.crashed()) {
    std::cerr << "drill error: workload never opened a crash window\n";
    std::exit(1);
  }
  out.crash_time = eq.now();

  // Quiesce: restart, recovery, and every surviving destage finish.
  eq.run_until(eq.now() + 30000.0);
  controller.shutdown();
  eq.run();

  out.report = auditor.audit();
  out.stats = controller.stats();
  out.recovery = injector.last_recovery();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int writes = argc > 1 ? std::atoi(argv[1]) : 256;

  const std::vector<Variant> variants = {
      {"A  unprotected", false, true, false, false},
      {"B  intent journal", true, true, true, false},
      {"C  full-array resync", false, true, true, true},
      {"D  volatile cache", true, false, true, true},
  };

  std::cout << "Crash drill: RAID5, 4+1 disks, " << writes
            << " cached writes; plug pulled mid stripe-update\n\n";

  TablePrinter table({"variant", "crash (ms)", "write holes", "lost writes",
                      "stripes resynced", "resync I/O (blocks)",
                      "recovery (ms)"});
  std::vector<Outcome> results;
  for (const auto& v : variants) {
    const auto r = run_variant(v, writes);
    table.add_row({v.name, TablePrinter::num(r.crash_time, 1),
                   std::to_string(r.report.write_holes),
                   std::to_string(r.report.lost_writes),
                   std::to_string(r.recovery.stripes_resynced),
                   std::to_string(r.resync_io()),
                   TablePrinter::num(r.recovery.recovery_ms, 1)});
    results.push_back(r);
  }
  table.print(std::cout);

  const auto& a = results[0];
  const auto& b = results[1];
  const auto& c = results[2];
  const auto& d = results[3];

  std::cout << "\nThe crash killed " << a.stats.crash_dropped_ops
            << " in-flight disk ops and discarded "
            << a.stats.crash_discarded_write_blocks
            << " write blocks at sector granularity; "
            << a.stats.crash_aborted_host_writes
            << " stalled host writes died unanswered.\n";
  std::cout << "B opened " << b.stats.journal_intents
            << " stripe-update intents and replayed "
            << b.stats.journal_replays << " after restart, resyncing "
            << b.recovery.stripes_resynced << " dirty stripes ("
            << b.resync_io() << " blocks of I/O) vs " << c.resync_io()
            << " for the full-array walk.\n";
  std::cout << "D lost the journal AND the write cache with the power: "
            << "parity was repaired by the fallback resync, but "
            << d.report.lost_writes
            << " acknowledged writes no longer exist anywhere.\n\n";

  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "  PASS  " : "  FAIL  ") << what << "\n";
    if (!ok) ++failures;
  };
  check(a.report.write_holes >= 1,
        "A: unprotected crash leaves a detectable write hole");
  check(b.report.write_holes == 0 && b.report.lost_writes == 0,
        "B: journal replay restores full consistency");
  check(b.recovery.used_journal && !b.recovery.full_resync,
        "B: recovery used the journal, not the fallback");
  check(c.report.write_holes == 0,
        "C: full-array resync also closes the hole");
  check(b.resync_io() < c.resync_io(),
        "B < C: journaled resync does strictly less I/O");
  check(d.report.write_holes == 0 && d.report.lost_writes >= 1,
        "D: wiped cache -> parity consistent but acked writes lost");
  if (failures != 0) {
    std::cout << "\n" << failures << " drill check(s) failed\n";
    return 1;
  }
  std::cout << "\nAll drill checks passed.\n";
  return 0;
}
