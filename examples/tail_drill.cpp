// Self-checking tail-tolerance drill. Replays the same workload three
// times per organization against a RAID5 and a mirrored array:
//   A  injection off, policies off   the fail-slow machinery must be
//                                    completely dark (zero hedges,
//                                    timeouts, redirects)
//   B  one sticky-slow disk, policies off   the damaged tail
//   C  one sticky-slow disk, policies on    hedged + redirected reads
// and asserts that the tail policies strictly reduce read p99 under the
// sticky-slow disk (C < B) while actually firing (hedges > 0). Exits
// nonzero on any violated invariant, so CI can run it as a smoke test.
//
// Usage: tail_drill [sticky_factor] [scale]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "fault/slowdown_injector.hpp"
#include "util/table.hpp"

namespace {

using namespace raidsim;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++g_failures;
}

struct RunResult {
  double read_p50 = 0.0;
  double read_p99 = 0.0;
  double read_p999 = 0.0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t redirects = 0;
  std::uint64_t quarantine_reroutes = 0;
  std::uint64_t slow_ops = 0;
};

RunResult run_once(Organization org, bool inject, bool policies,
                   double sticky_factor, double scale) {
  SimulationConfig config;
  config.organization = org;
  config.array_data_disks = 10;
  config.cached = false;
  if (policies) {
    config.tail.enabled = true;
    config.tail.read_deadline_ms = 120.0;
    config.tail.hedge_ewma_factor = 3.0;
    config.tail.redirect_on_slow = true;
    config.tail.reconstruct_on_slow = true;
  }

  WorkloadOptions wo;
  wo.scale = scale;
  auto stream = make_workload("trace2", wo);
  Simulator sim(config, stream->geometry());

  std::vector<ArrayController*> arrays;
  for (int a = 0; a < sim.arrays(); ++a)
    arrays.push_back(&sim.mutable_controller(a));

  SlowdownConfig slow;
  slow.manual_sticky = inject;
  slow.sticky_factor = sticky_factor;
  SlowdownInjector injector(sim.event_queue(), arrays, slow);
  if (inject) {
    injector.arm();
    injector.force_sticky(/*array=*/0, /*disk=*/1);
  }

  const Metrics m = sim.run(*stream);
  RunResult r;
  r.read_p50 = m.response_read.p50();
  r.read_p99 = m.response_read.p99();
  r.read_p999 = m.response_read.p999();
  r.hedges = m.controller.hedged_reads;
  r.hedge_wins = m.controller.hedge_wins;
  r.timeouts = m.controller.timeouts_fired;
  r.redirects = m.controller.redirected_reads;
  r.quarantine_reroutes = m.controller.quarantine_reroutes;
  r.slow_ops = m.disk_totals.slow_ops;
  return r;
}

void drill(Organization org, double sticky_factor, double scale) {
  std::cout << "\n== " << to_string(org) << " ==\n";
  const RunResult a = run_once(org, false, false, sticky_factor, scale);
  const RunResult b = run_once(org, true, false, sticky_factor, scale);
  const RunResult c = run_once(org, true, true, sticky_factor, scale);

  TablePrinter table({"run", "read p50", "read p99", "read p999", "hedges",
                      "wins", "timeouts", "redirects", "slow ops"});
  auto row = [&](const std::string& name, const RunResult& r) {
    table.add_row({name, TablePrinter::num(r.read_p50),
                   TablePrinter::num(r.read_p99),
                   TablePrinter::num(r.read_p999), std::to_string(r.hedges),
                   std::to_string(r.hedge_wins), std::to_string(r.timeouts),
                   std::to_string(r.redirects), std::to_string(r.slow_ops)});
  };
  row("A off/off", a);
  row("B slow/off", b);
  row("C slow/on", c);
  table.print(std::cout);

  check(a.slow_ops == 0, "injection off: no slowed disk ops");
  check(a.hedges == 0 && a.timeouts == 0 && a.redirects == 0 &&
            a.quarantine_reroutes == 0,
        "injection off: zero hedges, timeouts, redirects");
  check(b.slow_ops > 0, "injection on: the sticky disk slowed real ops");
  check(b.read_p99 > a.read_p99,
        "sticky-slow disk damages the unprotected read p99");
  check(c.hedges > 0, "policies on: hedged reads actually fired");
  check(c.read_p99 < b.read_p99,
        "policies strictly reduce read p99 under the sticky-slow disk");
  check(c.read_p999 < b.read_p999,
        "policies strictly reduce read p999 under the sticky-slow disk");
  if (org == Organization::kMirror)
    check(c.redirects > 0, "mirror: redirect-on-slow steered reads away");
}

}  // namespace

int main(int argc, char** argv) {
  const double sticky_factor = argc > 1 ? std::atof(argv[1]) : 8.0;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
  std::cout << "Tail drill: sticky factor " << sticky_factor << ", scale "
            << scale << "\n";

  drill(Organization::kRaid5, sticky_factor, scale);
  drill(Organization::kMirror, sticky_factor, scale);

  if (g_failures) {
    std::cout << "\n" << g_failures << " check(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall checks passed\n";
  return 0;
}
