// Compare every disk array organization on one workload, cached and
// uncached, in a single table -- the "which organization should I pick"
// view of the library. All configurations run as one SweepRunner batch,
// so the table fills in parallel yet prints identically at any thread
// count.
//
// Usage: organization_shootout [trace1|trace2] [scale] [N] [threads]
//            [--trace-out=<prefix>] [--sample-interval-ms=<t>]
//
// With --trace-out, every configuration additionally records its request
// lifecycle and writes `<prefix>_<i>.trace.json` (Chrome trace-event
// format, load in Perfetto) plus, with --sample-interval-ms,
// `<prefix>_<i>.timeseries.csv`.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "runner/sweep_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;

  std::string trace_out;
  double sample_interval_ms = 0.0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--sample-interval-ms=", 0) == 0) {
      sample_interval_ms = std::atof(arg.c_str() + 21);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: organization_shootout [trace1|trace2] [scale] [N] "
                   "[threads] [--trace-out=<prefix>] "
                   "[--sample-interval-ms=<t>]\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }

  const std::string trace_name =
      positional.size() > 0 ? positional[0] : "trace2";
  WorkloadOptions options;
  options.scale = positional.size() > 1 ? std::atof(positional[1].c_str())
                                        : 0.25;
  const int n = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 10;
  const int threads =
      positional.size() > 3 ? std::atoi(positional[3].c_str()) : 0;

  std::cout << "Organization shootout on " << trace_name << " (scale "
            << options.scale << ", N=" << n << ")\n\n";

  SweepRunner runner(threads);
  auto queue_one = [&](Organization org, bool cached, bool parity_caching) {
    SimulationConfig config;
    config.organization = org;
    config.array_data_disks = n;
    config.cached = cached;
    config.parity_caching = parity_caching;
    SweepJob job;
    job.config = config;
    job.trace = trace_name;
    job.workload = options;
    job.label = to_string(org) + (parity_caching ? "+pc" : "") +
                (cached ? "|16MB" : "|-");
    if (!trace_out.empty()) {
      job.trace_out = trace_out + "_" + std::to_string(runner.queued());
      job.sample_interval_ms = sample_interval_ms;
    }
    runner.submit(std::move(job));
  };

  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid10, Organization::kRaid5,
                   Organization::kParityStriping})
    queue_one(org, false, false);
  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid10, Organization::kRaid5,
                   Organization::kParityStriping})
    queue_one(org, true, false);
  queue_one(Organization::kRaid4, true, true);

  TablePrinter table({"organization", "cache", "disks", "mean ms", "read ms",
                      "write ms", "p95 ms", "util"});
  for (const auto& result : runner.run_all()) {
    const Metrics& m = result.metrics;
    const auto split = result.label.find('|');
    table.add_row({result.label.substr(0, split),
                   result.label.substr(split + 1), std::to_string(m.total_disks),
                   TablePrinter::num(m.mean_response_ms()),
                   TablePrinter::num(m.response_read.mean()),
                   TablePrinter::num(m.response_write.mean()),
                   TablePrinter::num(m.response_all.p95()),
                   TablePrinter::num(m.mean_disk_utilization(), 3)});
  }

  table.print(std::cout);
  std::cout << "\nEqual-capacity comparison: Mirror uses 2N disks, parity "
               "organizations N+1 per array.\n";
  if (!trace_out.empty())
    std::cout << "[trace artifacts written to " << trace_out
              << "_<i>.trace.json]\n";
  return 0;
}
