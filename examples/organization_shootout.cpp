// Compare every disk array organization on one workload, cached and
// uncached, in a single table -- the "which organization should I pick"
// view of the library. All configurations run as one SweepRunner batch,
// so the table fills in parallel yet prints identically at any thread
// count.
//
// Usage: organization_shootout [trace1|trace2] [scale] [N] [threads]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "runner/sweep_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace raidsim;

  const std::string trace_name = argc > 1 ? argv[1] : "trace2";
  WorkloadOptions options;
  options.scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  const int n = argc > 3 ? std::atoi(argv[3]) : 10;
  const int threads = argc > 4 ? std::atoi(argv[4]) : 0;

  std::cout << "Organization shootout on " << trace_name << " (scale "
            << options.scale << ", N=" << n << ")\n\n";

  SweepRunner runner(threads);
  auto queue_one = [&](Organization org, bool cached, bool parity_caching) {
    SimulationConfig config;
    config.organization = org;
    config.array_data_disks = n;
    config.cached = cached;
    config.parity_caching = parity_caching;
    runner.submit(SweepJob{config, trace_name, options,
                           to_string(org) + (parity_caching ? "+pc" : "") +
                               (cached ? "|16MB" : "|-")});
  };

  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid10, Organization::kRaid5,
                   Organization::kParityStriping})
    queue_one(org, false, false);
  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid10, Organization::kRaid5,
                   Organization::kParityStriping})
    queue_one(org, true, false);
  queue_one(Organization::kRaid4, true, true);

  TablePrinter table({"organization", "cache", "disks", "mean ms", "read ms",
                      "write ms", "p95 ms", "util"});
  for (const auto& result : runner.run_all()) {
    const Metrics& m = result.metrics;
    const auto split = result.label.find('|');
    table.add_row({result.label.substr(0, split),
                   result.label.substr(split + 1), std::to_string(m.total_disks),
                   TablePrinter::num(m.mean_response_ms()),
                   TablePrinter::num(m.response_read.mean()),
                   TablePrinter::num(m.response_write.mean()),
                   TablePrinter::num(m.response_all.p95()),
                   TablePrinter::num(m.mean_disk_utilization(), 3)});
  }

  table.print(std::cout);
  std::cout << "\nEqual-capacity comparison: Mirror uses 2N disks, parity "
               "organizations N+1 per array.\n";
  return 0;
}
