// overload_drill: self-checking robustness drill for the what-if
// service (run by CI).
//
// Starts the daemon in-process on a private socket and drives it
// through its failure regimes, asserting the service contract at each
// step:
//
//   1. Saturation: ~4x more concurrent jobs than the queue+workers can
//      hold. Every submission gets a typed response (ok or overloaded),
//      the queue never exceeds its bound, and nothing crashes or hangs.
//   2. Deadlines: a job with a deadline far shorter than its runtime is
//      cancelled cooperatively and reported as `deadline` promptly --
//      within the watchdog period plus one cancellation-check batch,
//      not after the full simulation.
//   3. Cache byte-identity: the same config served fresh (no_cache) and
//      from the cache returns byte-identical metrics JSON.
//   4. Retries: a job with injected transient failures succeeds after
//      the expected number of attempts.
//   5. Invalid configs: typed `invalid` rejections, never a crash.
//   6. Drain: the protocol `drain` op (the SIGTERM path) stops
//      admission and completes every in-flight job with a typed status.
//
// Exit code 0 = every assertion held.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/job_codec.hpp"
#include "svc/server.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok] %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    ++g_failures;
  }
}

std::string field_string(const raidsim::svc::JsonValue& v, const char* key) {
  const raidsim::svc::JsonValue* f = v.find(key);
  return (f != nullptr && f->is_string()) ? f->as_string() : "";
}

double field_number(const raidsim::svc::JsonValue& v, const char* key) {
  const raidsim::svc::JsonValue* f = v.find(key);
  return (f != nullptr && f->is_number()) ? f->as_number() : 0.0;
}

raidsim::svc::JobRequest base_job(std::uint64_t seed) {
  raidsim::svc::JobRequest job;
  job.trace = "trace2";
  job.workload.scale = 0.05;
  job.workload.seed = seed;
  return job;
}

}  // namespace

int main() {
  const std::string socket_path =
      "/tmp/raidsim_overload_drill." + std::to_string(::getpid()) + ".sock";

  raidsim::svc::Server::Options opts;
  opts.socket_path = socket_path;
  opts.supervisor.workers = 2;
  opts.supervisor.queue_capacity = 3;
  opts.supervisor.cache_capacity = 64;
  opts.supervisor.watchdog_period_ms = 5.0;
  opts.supervisor.backoff_base_ms = 1.0;
  opts.supervisor.drain_budget_ms = 30000.0;
  opts.log_final_stats = false;

  raidsim::svc::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  std::printf("== phase 1: saturation (%d concurrent jobs, capacity %d) ==\n",
              16, 2 + 3);
  {
    // 16 one-shot connections submit simultaneously against 2 workers +
    // 3 queue slots: admission control must shed the overflow with
    // typed `overloaded` responses while every admitted job completes.
    std::vector<std::string> statuses(16);
    std::vector<std::thread> clients;
    for (int i = 0; i < 16; ++i) {
      clients.emplace_back([&, i] {
        try {
          raidsim::svc::Client client(socket_path);
          raidsim::svc::JobRequest job = base_job(100 + i);
          job.no_cache = true;  // distinct seeds anyway; keep it honest
          job.id = "sat-" + std::to_string(i);
          statuses[i] =
              field_string(client.request(encode_job_request(job)), "status");
        } catch (const std::exception& e) {
          statuses[i] = std::string("transport: ") + e.what();
        }
      });
    }
    for (auto& t : clients) t.join();
    int ok = 0, overloaded = 0, other = 0;
    for (const std::string& s : statuses)
      (s == "ok" ? ok : s == "overloaded" ? overloaded : other) += 1;
    std::printf("  ok=%d overloaded=%d other=%d\n", ok, overloaded, other);
    check(ok + overloaded == 16, "every job got a typed ok/overloaded answer");
    check(overloaded > 0, "admission control shed load at 4x saturation");
    // At least the queue-capacity jobs are guaranteed admission: pushes
    // only fail once the queue is full, and worker pops free more slots.
    // How many more get in depends on worker timing, so 3 is the floor.
    check(ok >= 3, "at least queue-capacity (3) admitted jobs completed");

    raidsim::svc::Client probe(socket_path);
    const raidsim::svc::JsonValue stats = probe.request("{\"op\":\"stats\"}");
    const raidsim::svc::JsonValue* s = stats.find("stats");
    check(s != nullptr &&
              field_number(*s, "peak_queue_depth") <= 3.0,
          "queue depth never exceeded its bound");
  }

  std::printf("== phase 2: deadline cancellation ==\n");
  {
    raidsim::svc::Client client(socket_path);
    // trace2 at full scale takes seconds; a 50 ms deadline must cancel
    // it long before completion.
    raidsim::svc::JobRequest job;
    job.trace = "trace2";
    job.workload.scale = 1.0;
    job.workload.seed = 7;
    job.deadline_ms = 50.0;
    job.no_cache = true;
    job.id = "deadline";
    const auto t0 = std::chrono::steady_clock::now();
    const raidsim::svc::JsonValue response =
        client.request(encode_job_request(job));
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    check(field_string(response, "status") == "deadline",
          "over-deadline job reported as `deadline`");
    // Tolerance: deadline (50) + watchdog period (5) + one cancellation
    // batch + scheduling slack. Far below the multi-second full run.
    check(elapsed_ms < 2000.0,
          "cancellation was prompt (" + std::to_string(elapsed_ms) + " ms)");
  }

  std::printf("== phase 3: result-cache byte-identity ==\n");
  {
    raidsim::svc::Client client(socket_path);
    raidsim::svc::JobRequest job = base_job(42);
    job.id = "fresh";
    job.no_cache = true;  // forces a fresh run; result still stored
    const raidsim::svc::JsonValue fresh =
        client.request(encode_job_request(job));
    job.id = "hit";
    job.no_cache = false;
    const raidsim::svc::JsonValue hit =
        client.request(encode_job_request(job));
    check(field_string(fresh, "status") == "ok" &&
              field_string(hit, "status") == "ok",
          "fresh and cached runs both ok");
    const raidsim::svc::JsonValue* cached = hit.find("cached");
    check(cached != nullptr && cached->is_bool() && cached->as_bool(),
          "second identical job was served from the cache");
    const raidsim::svc::JsonValue* m1 = fresh.find("metrics");
    const raidsim::svc::JsonValue* m2 = hit.find("metrics");
    check(m1 != nullptr && m2 != nullptr && m1->dump() == m2->dump(),
          "cache hit is byte-identical to the fresh run");
  }

  std::printf("== phase 4: transient retries ==\n");
  {
    raidsim::svc::Client client(socket_path);
    raidsim::svc::JobRequest job = base_job(43);
    job.fail_first = 2;  // injected: attempts 1 and 2 throw TransientError
    job.max_retries = 3;
    job.no_cache = true;
    job.id = "retry";
    const raidsim::svc::JsonValue response =
        client.request(encode_job_request(job));
    check(field_string(response, "status") == "ok",
          "transient failures retried to success");
    check(field_number(response, "attempts") == 3.0,
          "took exactly 3 attempts (2 injected failures)");

    job.fail_first = 5;
    job.max_retries = 1;
    job.id = "retry-exhausted";
    const raidsim::svc::JsonValue exhausted =
        client.request(encode_job_request(job));
    check(field_string(exhausted, "status") == "failed",
          "persistent transient failure reported as `failed` after retries");
  }

  std::printf("== phase 5: hostile input ==\n");
  {
    raidsim::svc::Client client(socket_path);
    const char* bad[] = {
        "{\"op\":\"run\",\"config\":{\"n\":0}}",
        "{\"op\":\"run\",\"config\":{\"n\":1e9}}",
        "{\"op\":\"run\",\"config\":{\"channel_mb_per_s\":null}}",
        "{\"op\":\"run\",\"config\":{\"bogus_knob\":1}}",
        "{\"op\":\"run\",\"scale\":-1}",
        "{\"op\":\"launch-missiles\"}",
        "this is not json",
        "{\"op\":\"run\",\"config\":{\"n\":5}",  // truncated
    };
    bool all_typed = true;
    for (const char* line : bad) {
      const raidsim::svc::JsonValue response = client.request(line);
      if (field_string(response, "status") != "invalid") {
        std::printf("  [FAIL] not rejected: %s\n", line);
        all_typed = false;
      }
    }
    check(all_typed, "every hostile request got a typed `invalid` response");
    const raidsim::svc::JsonValue pong = client.request("{\"op\":\"ping\"}");
    check(field_string(pong, "status") == "ok",
          "server still healthy after hostile input");
  }

  std::printf("== phase 6: graceful drain ==\n");
  {
    // Submit a long job, then drain while it runs: the drain must stop
    // admission (typed `draining`) and the in-flight job must still get
    // a typed terminal answer -- the drain budget lets it finish.
    raidsim::svc::Client slow_client(socket_path, 60000.0);
    raidsim::svc::JobRequest slow = base_job(44);
    slow.workload.scale = 0.2;
    slow.no_cache = true;
    slow.id = "inflight";
    std::string inflight_status;
    std::thread slow_thread([&] {
      try {
        inflight_status = field_string(
            slow_client.request(encode_job_request(slow)), "status");
      } catch (const std::exception& e) {
        inflight_status = std::string("transport: ") + e.what();
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    raidsim::svc::Client drain_client(socket_path);
    const raidsim::svc::JsonValue ack =
        drain_client.request("{\"op\":\"drain\"}");
    check(field_string(ack, "status") == "ok", "drain op acknowledged");

    slow_thread.join();
    check(inflight_status == "ok" || inflight_status == "cancelled",
          "in-flight job got a typed terminal status (" + inflight_status +
              ")");

    server_thread.join();  // run() returns once the drain completes
    const auto& stats = server.supervisor().stats();
    check(stats.submitted.load() ==
              stats.completed_ok.load() + stats.failed.load() +
                  stats.cancelled.load() + stats.deadline_expired.load() +
                  stats.rejected_overload.load() +
                  stats.rejected_draining.load() +
                  stats.rejected_invalid.load(),
          "stats taxonomy accounts for every submitted job");
  }

  std::printf("%s (%d failure%s)\n",
              g_failures == 0 ? "OVERLOAD DRILL PASSED" : "OVERLOAD DRILL FAILED",
              g_failures, g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}
