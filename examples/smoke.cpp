// Internal smoke harness (not part of the documented examples): runs a
// tiny workload through every organization to sanity-check timings.
#include <iostream>

#include "core/simulator.hpp"
#include "core/workloads.hpp"

int main() {
  using namespace raidsim;
  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid5, Organization::kParityStriping}) {
    for (bool cached : {false, true}) {
      SimulationConfig config;
      config.organization = org;
      config.cached = cached;
      WorkloadOptions options;
      options.scale = 0.05;
      auto trace = make_workload("trace2", options);
      const Metrics m = run_simulation(config, *trace);
      std::cout << config.describe() << ": mean=" << m.mean_response_ms()
                << "ms read=" << m.response_read.mean()
                << " write=" << m.response_write.mean()
                << " util=" << m.mean_disk_utilization()
                << " rhit=" << m.read_hit_ratio()
                << " whit=" << m.write_hit_ratio() << " n=" << m.requests
                << "\n";
    }
  }
  // RAID4 with and without parity caching.
  for (bool pc : {false, true}) {
    SimulationConfig config;
    config.organization = Organization::kRaid4;
    config.cached = true;
    config.parity_caching = pc;
    WorkloadOptions options;
    options.scale = 0.05;
    auto trace = make_workload("trace2", options);
    const Metrics m = run_simulation(config, *trace);
    std::cout << config.describe() << ": mean=" << m.mean_response_ms()
              << "ms util=" << m.mean_disk_utilization()
              << " spools=" << m.controller.parity_spools
              << " peak=" << m.controller.parity_queue_peak << "\n";
  }
  return 0;
}
