// Failure drill: walk one array through its availability story --
// healthy service, a disk failure, degraded service, an online rebuild,
// and full recovery -- printing response times and the degraded-mode
// counters at each stage. Exercises fail_disk(), the degraded read/write
// paths, RebuildProcess, and the reliability model in one narrative.
//
// Usage: failure_drill [raid5|parstrip|mirror|raid10] [N]
#include <iostream>
#include <string>

#include "array/rebuild.hpp"
#include "core/closed_loop.hpp"
#include "core/reliability.hpp"
#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace raidsim;

Organization parse_org(const std::string& name) {
  if (name == "raid5") return Organization::kRaid5;
  if (name == "parstrip") return Organization::kParityStriping;
  if (name == "mirror") return Organization::kMirror;
  if (name == "raid10") return Organization::kRaid10;
  throw std::invalid_argument("unknown organization: " + name);
}

struct StageResult {
  double mean_ms;
  std::uint64_t degraded_reads;
  std::uint64_t degraded_writes;
};

/// Per-stage driver state. Held by shared_ptr because think-time events
/// scheduled near the end of a stage can fire after drive() returns;
/// they must find valid (and deactivated) state, not a dead stack frame.
struct DriveState {
  Simulator* sim = nullptr;
  SyntheticTrace* addresses = nullptr;
  Rng* rng = nullptr;
  int requests = 0;
  int issued = 0;
  int done = 0;
  double sum = 0.0;
  bool active = true;
};

void issue_next(const std::shared_ptr<DriveState>& state) {
  if (!state->active || state->issued >= state->requests) return;
  auto rec = state->addresses->next();
  if (!rec) return;
  ++state->issued;
  rec->delta_ms = 0.0;
  auto& eq = state->sim->event_queue();
  const double start = eq.now();
  state->sim->submit(*rec, [state, start](SimTime t) {
    state->sum += t - start;
    ++state->done;
    if (state->issued < state->requests) {
      state->sim->event_queue().schedule_in(
          state->rng->exponential(10.0), [state] { issue_next(state); });
    }
  });
}

/// Drive `requests` closed-loop I/Os against an existing simulator and
/// report the stage's mean response.
StageResult drive(Simulator& sim, SyntheticTrace& addresses, Rng& rng,
                  int requests) {
  const std::uint64_t before_reads =
      sim.controller(0).stats().degraded_reads;
  const std::uint64_t before_writes =
      sim.controller(0).stats().degraded_writes;
  auto state = std::make_shared<DriveState>();
  state->sim = &sim;
  state->addresses = &addresses;
  state->rng = &rng;
  state->requests = requests;
  // Four clients, 10 ms think time.
  for (int c = 0; c < 4; ++c) issue_next(state);
  auto& eq = sim.event_queue();
  while (state->done < requests && eq.step()) {
  }
  state->active = false;  // disarm stragglers from this stage
  return {state->sum / state->done,
          sim.controller(0).stats().degraded_reads - before_reads,
          sim.controller(0).stats().degraded_writes - before_writes};
}

}  // namespace

int main(int argc, char** argv) {
  const Organization org = parse_org(argc > 1 ? argv[1] : "raid5");
  const int n = argc > 2 ? std::atoi(argv[2]) : 10;
  const int kStageRequests = 4000;

  SimulationConfig config;
  config.organization = org;
  config.array_data_disks = n;

  TraceProfile profile = TraceProfile::trace2();
  profile.geometry.data_disks = n;  // one array
  profile.requests = 10 * kStageRequests;
  SyntheticTrace addresses(profile);
  Rng rng(2718);

  Simulator sim(config, profile.geometry);
  std::cout << "Failure drill: " << config.describe() << "\n"
            << "Analytic MTTDL of this group: "
            << TablePrinter::num(
                   group_mttdl_hours(org, n) / (24.0 * 365.0), 1)
            << " years (100,000 h disk MTTF, 24 h repair)\n\n";

  TablePrinter table({"stage", "mean response (ms)", "degraded reads",
                      "degraded writes"});
  auto record = [&](const std::string& stage, const StageResult& r) {
    table.add_row({stage, TablePrinter::num(r.mean_ms),
                   std::to_string(r.degraded_reads),
                   std::to_string(r.degraded_writes)});
  };

  record("1. healthy", drive(sim, addresses, rng, kStageRequests));

  sim.mutable_controller(0).fail_disk(0);
  record("2. disk 0 failed (degraded)",
         drive(sim, addresses, rng, kStageRequests));

  RebuildProcess::Options rebuild_options;
  rebuild_options.blocks_per_pass = 30;
  RebuildProcess rebuild(sim.event_queue(), sim.mutable_controller(0),
                         rebuild_options);
  bool rebuilt = false;
  rebuild.start([&](SimTime) { rebuilt = true; });
  record("3. rebuilding (foreground continues)",
         drive(sim, addresses, rng, kStageRequests));
  std::cout << "   rebuild progress during stage 3: "
            << TablePrinter::num(100.0 * rebuild.progress(), 1) << "%\n";

  // Let the rebuild finish quietly, then measure recovered service.
  while (!rebuilt && sim.event_queue().step()) {
  }
  record("4. recovered", drive(sim, addresses, rng, kStageRequests));

  table.print(std::cout);
  sim.drain_and_finalize();
  return 0;
}
