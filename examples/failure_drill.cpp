// Scripted failure drill: walk one array through the full automatic
// recovery pipeline -- healthy service, an injected whole-disk failure
// with no spare on hand (degraded service), a hot spare arriving
// (HealthMonitor launches the rebuild), online reconstruction under
// foreground load, and full recovery -- printing the response-time
// delta of each phase and the monitor's event log. Ends with a scrub
// epilogue: a planted latent sector error found and repaired by the
// patrol read.
//
// Usage: failure_drill [raid5|parstrip|mirror|raid10] [N]
#include <iostream>
#include <string>

#include "core/closed_loop.hpp"
#include "core/reliability.hpp"
#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "fault/health_monitor.hpp"
#include "fault/mttdl_sim.hpp"
#include "fault/scrub.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace raidsim;

Organization parse_org(const std::string& name) {
  if (name == "raid5") return Organization::kRaid5;
  if (name == "parstrip") return Organization::kParityStriping;
  if (name == "mirror") return Organization::kMirror;
  if (name == "raid10") return Organization::kRaid10;
  throw std::invalid_argument("unknown organization: " + name);
}

std::string to_string(HealthMonitor::EventKind kind) {
  switch (kind) {
    case HealthMonitor::EventKind::kDiskFailure: return "disk failure";
    case HealthMonitor::EventKind::kDataLoss: return "DATA LOSS";
    case HealthMonitor::EventKind::kSpareAllocated: return "spare allocated";
    case HealthMonitor::EventKind::kSpareExhausted: return "spare pool empty";
    case HealthMonitor::EventKind::kRebuildStarted: return "rebuild started";
    case HealthMonitor::EventKind::kRebuildCompleted:
      return "rebuild completed";
    case HealthMonitor::EventKind::kDiskSlow: return "disk slow";
    case HealthMonitor::EventKind::kQuarantined: return "quarantined";
    case HealthMonitor::EventKind::kUnquarantined: return "unquarantined";
  }
  return "?";
}

struct StageResult {
  double mean_ms;
  std::uint64_t degraded_reads;
  std::uint64_t degraded_writes;
};

/// Per-stage driver state. Held by shared_ptr because think-time events
/// scheduled near the end of a stage can fire after drive() returns;
/// they must find valid (and deactivated) state, not a dead stack frame.
struct DriveState {
  Simulator* sim = nullptr;
  SyntheticTrace* addresses = nullptr;
  Rng* rng = nullptr;
  int requests = 0;
  int issued = 0;
  int done = 0;
  double sum = 0.0;
  bool active = true;
};

void issue_next(const std::shared_ptr<DriveState>& state) {
  if (!state->active || state->issued >= state->requests) return;
  auto rec = state->addresses->next();
  if (!rec) return;
  ++state->issued;
  rec->delta_ms = 0.0;
  auto& eq = state->sim->event_queue();
  const double start = eq.now();
  state->sim->submit(*rec, [state, start](SimTime t) {
    state->sum += t - start;
    ++state->done;
    if (state->issued < state->requests) {
      state->sim->event_queue().schedule_in(
          state->rng->exponential(10.0), [state] { issue_next(state); });
    }
  });
}

/// Drive `requests` closed-loop I/Os against an existing simulator and
/// report the stage's mean response.
StageResult drive(Simulator& sim, SyntheticTrace& addresses, Rng& rng,
                  int requests) {
  const std::uint64_t before_reads =
      sim.controller(0).stats().degraded_reads;
  const std::uint64_t before_writes =
      sim.controller(0).stats().degraded_writes;
  auto state = std::make_shared<DriveState>();
  state->sim = &sim;
  state->addresses = &addresses;
  state->rng = &rng;
  state->requests = requests;
  // Four clients, 10 ms think time.
  for (int c = 0; c < 4; ++c) issue_next(state);
  auto& eq = sim.event_queue();
  while (state->done < requests && eq.step()) {
  }
  state->active = false;  // disarm stragglers from this stage
  return {state->sum / state->done,
          sim.controller(0).stats().degraded_reads - before_reads,
          sim.controller(0).stats().degraded_writes - before_writes};
}

}  // namespace

int main(int argc, char** argv) {
  const Organization org = parse_org(argc > 1 ? argv[1] : "raid5");
  const int n = argc > 2 ? std::atoi(argv[2]) : 10;
  const int kStageRequests = 4000;

  SimulationConfig config;
  config.organization = org;
  config.array_data_disks = n;

  TraceProfile profile = TraceProfile::trace2();
  profile.geometry.data_disks = n;  // one array
  profile.requests = 10 * kStageRequests;
  SyntheticTrace addresses(profile);
  Rng rng(2718);

  Simulator sim(config, profile.geometry);

  // Reliability context: the analytic MTTDL of this group, cross-checked
  // by a quick Monte-Carlo run (see bench/ext_mttdl_montecarlo for the
  // full validation).
  MttdlConfig mttdl;
  mttdl.organization = org;
  mttdl.total_data_disks = n;
  mttdl.array_data_disks = n;
  const auto estimate = simulate_mttdl(mttdl, 400);
  const double hours_per_year = 24.0 * 365.0;
  // system_mttdl_hours, not group_mttdl_hours: a mirrored array of N
  // data disks is N independent pairs (groups), so the array-level
  // figure is the per-pair MTTDL divided by N. The Monte-Carlo estimate
  // simulates the whole array and must be compared at the same level.
  std::cout << "Failure drill: " << config.describe() << "\n"
            << "Analytic MTTDL of this array: "
            << TablePrinter::num(system_mttdl_hours(org, n, n) /
                                     hours_per_year,
                                 1)
            << " years (100,000 h disk MTTF, 24 h repair); Monte-Carlo "
            << "cross-check: "
            << TablePrinter::num(estimate.mean_hours / hours_per_year, 1)
            << " years (" << estimate.lifetimes << " lifetimes, ratio "
            << TablePrinter::num(estimate.ratio(), 2) << ")\n\n";

  // The monitor starts with an EMPTY spare pool: the injected failure
  // leaves the array degraded until the drill delivers a spare.
  HealthMonitor::Options monitor_options;
  monitor_options.hot_spares = 0;
  monitor_options.spare_swap_ms = 500.0;  // spindle-up after delivery
  monitor_options.rebuild.blocks_per_pass = 30;
  HealthMonitor monitor(sim.event_queue(), sim.mutable_controller(0),
                        monitor_options);

  TablePrinter table({"phase", "mean response (ms)", "vs healthy",
                      "degraded reads", "degraded writes"});
  double healthy_ms = 0.0;
  auto record = [&](const std::string& stage, const StageResult& r) {
    if (healthy_ms == 0.0) healthy_ms = r.mean_ms;
    table.add_row({stage, TablePrinter::num(r.mean_ms),
                   TablePrinter::num(r.mean_ms - healthy_ms, 2) + " ms",
                   std::to_string(r.degraded_reads),
                   std::to_string(r.degraded_writes)});
  };

  record("1. healthy", drive(sim, addresses, rng, kStageRequests));

  // Inject a whole-disk failure. With the spare pool empty the monitor
  // records the exhaustion and leaves the array degraded.
  monitor.on_disk_failure(0, 0);
  record("2. disk 0 failed, no spare (degraded)",
         drive(sim, addresses, rng, kStageRequests));

  // The replacement disk arrives: the monitor allocates it and starts
  // the rebuild on its own.
  monitor.add_spares(1);
  record("3. spare arrived, rebuilding (foreground continues)",
         drive(sim, addresses, rng, kStageRequests));

  // Let the rebuild finish quietly, then measure recovered service.
  while (monitor.rebuilds_completed() == 0 && sim.event_queue().step()) {
  }
  record("4. recovered", drive(sim, addresses, rng, kStageRequests));
  table.print(std::cout);

  std::cout << "\nMonitor event log:\n";
  TablePrinter events({"time (s)", "event", "disk"});
  for (const auto& e : monitor.events())
    events.add_row({TablePrinter::num(e.time / 1000.0, 2), to_string(e.kind),
                    e.disk >= 0 ? std::to_string(e.disk) : "-"});
  events.print(std::cout);

  // Epilogue: a latent sector error on a surviving disk, found and
  // repaired in place by one background scrub sweep.
  auto& controller = sim.mutable_controller(0);
  const auto extent = controller.layout().map_read(42, 1)[0];
  controller.disks()[static_cast<std::size_t>(extent.disk)]
      ->plant_media_error(extent.start_block);
  ScrubProcess scrub(sim.event_queue(), controller);
  scrub.start();
  while (scrub.running() && sim.event_queue().step()) {
  }
  std::cout << "\nScrub epilogue: planted 1 latent sector error on disk "
            << extent.disk << "; sweep found " << scrub.stats().errors_found
            << ", repaired " << controller.stats().media_repairs
            << " (reconstruct-and-rewrite), "
            << scrub.stats().blocks_scrubbed << " blocks patrolled.\n";

  sim.drain_and_finalize();
  return 0;
}
