// Explore the controller-cache design space for one organization: cache
// size x destage period, reporting response time, hit ratios, and
// destage behaviour. Demonstrates programmatic sweeps over
// SimulationConfig.
//
// Usage: cache_tuning [trace1|trace2] [org] [scale]
//   org: base | mirror | raid5 | parstrip | raid4pc
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "util/table.hpp"

namespace {

raidsim::Organization parse_org(const std::string& name, bool& parity_caching) {
  using raidsim::Organization;
  parity_caching = false;
  if (name == "base") return Organization::kBase;
  if (name == "mirror") return Organization::kMirror;
  if (name == "raid5") return Organization::kRaid5;
  if (name == "parstrip") return Organization::kParityStriping;
  if (name == "raid4pc") {
    parity_caching = true;
    return Organization::kRaid4;
  }
  throw std::invalid_argument("unknown organization: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;

  const std::string trace_name = argc > 1 ? argv[1] : "trace2";
  bool parity_caching = false;
  const Organization org =
      parse_org(argc > 2 ? argv[2] : "raid5", parity_caching);
  WorkloadOptions options;
  options.scale = argc > 3 ? std::atof(argv[3]) : 0.25;

  std::cout << "Cache tuning for " << to_string(org) << " on " << trace_name
            << " (scale " << options.scale << ")\n\n";

  TablePrinter table({"cache", "destage period", "mean ms", "read hit %",
                      "write hit %", "destage writes", "stalls"});
  for (std::int64_t mb : {8, 16, 64}) {
    for (double period_ms : {100.0, 300.0, 1000.0}) {
      SimulationConfig config;
      config.organization = org;
      config.cached = true;
      config.parity_caching = parity_caching;
      config.cache_bytes = mb << 20;
      config.destage_period_ms = period_ms;
      auto trace = make_workload(trace_name, options);
      const Metrics m = run_simulation(config, *trace);
      table.add_row({std::to_string(mb) + "MB",
                     TablePrinter::num(period_ms, 0) + "ms",
                     TablePrinter::num(m.mean_response_ms()),
                     TablePrinter::num(100.0 * m.read_hit_ratio(), 1),
                     TablePrinter::num(100.0 * m.write_hit_ratio(), 1),
                     std::to_string(m.controller.destage_writes),
                     std::to_string(m.controller.write_stalls +
                                    m.cache.stalls)});
    }
  }
  table.print(std::cout);
  return 0;
}
