// Visualise how each organization spreads a skewed workload over its
// arms: per-disk access counts and utilizations (the Figure 6/7 effect),
// plus the parity-disk load for RAID4. Demonstrates the per-disk metrics
// in the public API.
//
// Usage: hot_spot_analysis [trace1|trace2] [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulator.hpp"
#include "core/workloads.hpp"

namespace {

void report(const std::string& name, const raidsim::Metrics& m) {
  std::printf("%s\n", name.c_str());
  std::printf("  mean response %.2f ms, access CV %.3f, util mean %.3f "
              "max %.3f\n",
              m.mean_response_ms(), m.disk_access_cv(),
              m.mean_disk_utilization(), m.max_disk_utilization());
  const auto max_count =
      *std::max_element(m.disk_accesses.begin(), m.disk_accesses.end());
  const std::size_t disks_to_show = std::min<std::size_t>(
      m.disk_accesses.size(), 22);
  for (std::size_t i = 0; i < disks_to_show; ++i) {
    const int bar =
        max_count ? static_cast<int>(36.0 *
                                     static_cast<double>(m.disk_accesses[i]) /
                                     static_cast<double>(max_count))
                  : 0;
    std::printf("  disk %2zu |%-36s| %8llu ops  util %.3f\n", i,
                std::string(static_cast<std::size_t>(bar), '=').c_str(),
                static_cast<unsigned long long>(m.disk_accesses[i]),
                m.disk_utilization[i]);
  }
  if (m.disk_accesses.size() > disks_to_show)
    std::printf("  ... (%zu more disks)\n",
                m.disk_accesses.size() - disks_to_show);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raidsim;

  const std::string trace_name = argc > 1 ? argv[1] : "trace2";
  WorkloadOptions options;
  options.scale = argc > 2 ? std::atof(argv[2]) : 0.25;

  std::printf("Hot-spot analysis on %s (scale %.2f)\n\n", trace_name.c_str(),
              options.scale);

  for (auto org : {Organization::kBase, Organization::kMirror,
                   Organization::kRaid5, Organization::kParityStriping}) {
    SimulationConfig config;
    config.organization = org;
    auto trace = make_workload(trace_name, options);
    report(to_string(org), run_simulation(config, *trace));
  }

  // RAID4 with parity caching: watch the dedicated parity disk (the last
  // one) absorb all parity traffic.
  SimulationConfig config;
  config.organization = Organization::kRaid4;
  config.cached = true;
  config.parity_caching = true;
  auto trace = make_workload(trace_name, options);
  report("RAID4 + parity caching (last disk is the parity disk)",
         run_simulation(config, *trace));
  return 0;
}
