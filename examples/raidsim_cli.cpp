// Full-featured command-line front end to the simulator: every knob the
// paper studies is a flag. The Swiss-army-knife companion to the focused
// examples.
//
// Usage: raidsim_cli [flags]
//   --trace=trace1|trace2     workload preset          (default trace2)
//   --trace-file=<path>       replay a trace file instead of a preset
//                             (text or binary; format sniffed)
//   --scale=<f>               fraction of the preset trace (default 0.25)
//   --speed=<f>               arrival-rate multiplier   (default 1.0)
//   --seed=<n>                workload RNG seed override
//   --org=base|mirror|raid5|raid4|raid10|parstrip       (default raid5)
//   --n=<disks>               array size N              (default 10)
//   --su=<blocks>             RAID4/5 striping unit     (default 1)
//   --sync=si|rf|rfpr|df|dfpr parity synchronization    (default df)
//   --parity-placement=middle|end                       (default middle)
//   --parity-fine-chunk=<blk> fine-grained ParStrip     (default 0 = off)
//   --sched=fifo|sstf|scan    disk queue scheduling     (default fifo)
//   --cache=<MB>              enable NV cache of this size
//   --destage-period=<ms>     destage period            (default 300)
//   --no-old-data             disable old-data retention
//   --parity-caching          RAID4 parity caching
//   --fail-disk=<d>           run array 0 degraded with disk d failed
//   --rebuild                 rebuild the failed disk online
//   --shards=<n>              sharded engine: n per-array-group event
//                             kernels on a thread pool (default 0 = the
//                             classic single-queue engine; incompatible
//                             with --fail-disk/--rebuild)
//   --shard-threads=<n>       threads for the sharded engine
//                             (default 0 = min(shards, hw))
//   --event-kernel=calendar|heap
//                             event-queue priority structure (default
//                             calendar; results are bit-identical, heap
//                             is the differential-testing yardstick)
//   --op-alloc=arena|pool     op-state allocator (default arena: per-
//                             engine slabs, non-atomic refcounts; pool
//                             is the thread-local/atomic yardstick --
//                             results are bit-identical)
//   --tail-deadline=<ms>      read deadline; on expiry escalate to an
//                             alternate read (tail-tolerance policy)
//   --hedge-delay=<ms>        fixed hedged-read delay (0 = off)
//   --hedge-ewma=<f>          adaptive hedge delay: f x the primary
//                             disk's EWMA latency (0 = off)
//   --redirect-on-slow        mirror reads prefer the faster copy
//   --reconstruct-on-slow     RAID5/ParStrip reads may reconstruct
//                             around a straggler
//   --csv                     machine-readable result line (with
//                             retry/timeout/hedge/redirect counters)
//   --csv-header              print the --csv column names and exit
//   --json                    full Metrics::to_json dump on stdout
//   --progress                live heartbeat on stderr (events, sim time,
//                             percent done); passive, results unchanged
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "sim/progress.hpp"

#include "array/rebuild.hpp"
#include "core/reliability.hpp"
#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "runner/sharded_sim.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

namespace {

using namespace raidsim;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "raidsim_cli: " << message << " (--help for usage)\n";
  std::exit(2);
}

Organization parse_org(const std::string& v) {
  if (v == "base") return Organization::kBase;
  if (v == "mirror") return Organization::kMirror;
  if (v == "raid5") return Organization::kRaid5;
  if (v == "raid4") return Organization::kRaid4;
  if (v == "raid10") return Organization::kRaid10;
  if (v == "parstrip") return Organization::kParityStriping;
  fail("unknown organization: " + v);
}

SyncPolicy parse_sync(const std::string& v) {
  if (v == "si") return SyncPolicy::kSimultaneousIssue;
  if (v == "rf") return SyncPolicy::kReadFirst;
  if (v == "rfpr") return SyncPolicy::kReadFirstPriority;
  if (v == "df") return SyncPolicy::kDiskFirst;
  if (v == "dfpr") return SyncPolicy::kDiskFirstPriority;
  fail("unknown sync policy: " + v);
}

DiskScheduling parse_sched(const std::string& v) {
  if (v == "fifo") return DiskScheduling::kFifo;
  if (v == "sstf") return DiskScheduling::kSstf;
  if (v == "scan") return DiskScheduling::kScan;
  fail("unknown scheduling policy: " + v);
}

EventKernel parse_kernel(const std::string& v) {
  if (v == "calendar") return EventKernel::kCalendar;
  if (v == "heap") return EventKernel::kHeap;
  fail("unknown event kernel: " + v);
}

OpAlloc parse_op_alloc(const std::string& v) {
  if (v == "arena") return OpAlloc::kArena;
  if (v == "pool") return OpAlloc::kPool;
  fail("unknown op-state allocator: " + v);
}

/// --progress: wall-clock-throttled heartbeat to stderr. Shard threads
/// may call concurrently, so the throttle state is atomic. Final frame
/// always prints, then a newline so the result table starts clean.
ProgressFn make_heartbeat() {
  using Clock = std::chrono::steady_clock;
  auto last = std::make_shared<std::atomic<std::int64_t>>(0);
  const auto epoch = Clock::now();
  return [last, epoch](const ProgressSnapshot& s) {
    const std::int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              epoch)
            .count();
    std::int64_t prev = last->load(std::memory_order_relaxed);
    if (!s.final_frame &&
        (now_ms - prev < 200 ||
         !last->compare_exchange_strong(prev, now_ms,
                                        std::memory_order_relaxed)))
      return;
    last->store(now_ms, std::memory_order_relaxed);
    if (s.total > 0) {
      std::fprintf(stderr,
                   "\rraidsim_cli: %5.1f%%  %llu/%llu requests  "
                   "%llu events  sim %.0f ms   ",
                   100.0 * static_cast<double>(s.done) /
                       static_cast<double>(s.total),
                   static_cast<unsigned long long>(s.done),
                   static_cast<unsigned long long>(s.total),
                   static_cast<unsigned long long>(s.events), s.sim_ms);
    } else {
      std::fprintf(stderr,
                   "\rraidsim_cli: %llu requests  %llu events  sim %.0f ms   ",
                   static_cast<unsigned long long>(s.done),
                   static_cast<unsigned long long>(s.events), s.sim_ms);
    }
    if (s.final_frame) std::fprintf(stderr, "\n");
  };
}

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig config;
  std::string trace_name = "trace2";
  std::string trace_file;
  WorkloadOptions workload;
  workload.scale = 0.25;
  int fail_disk = -1;
  bool rebuild = false;
  bool csv = false;
  bool json = false;
  bool progress = false;

  const char* csv_header =
      "config,requests,mean_ms,read_ms,write_ms,p95_ms,p99_ms,p999_ms,"
      "read_hit,write_hit,mean_util,transient_retries,retry_exhaustions,"
      "timeouts_fired,hedged_reads,hedge_wins,hedge_cancellations,"
      "redirected_reads,quarantine_reroutes";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << "see the header of examples/raidsim_cli.cpp for flags\n";
      return 0;
    } else if (const char* v = value("--trace=")) {
      trace_name = v;
    } else if (const char* v = value("--trace-file=")) {
      trace_file = v;
    } else if (const char* v = value("--scale=")) {
      workload.scale = std::atof(v);
    } else if (const char* v = value("--speed=")) {
      workload.speed = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      workload.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--org=")) {
      config.organization = parse_org(v);
    } else if (const char* v = value("--n=")) {
      config.array_data_disks = std::atoi(v);
    } else if (const char* v = value("--su=")) {
      config.striping_unit_blocks = std::atoi(v);
    } else if (const char* v = value("--sync=")) {
      config.sync = parse_sync(v);
    } else if (const char* v = value("--parity-placement=")) {
      config.parity_placement = std::string(v) == "end"
                                    ? ParityPlacement::kEndCylinders
                                    : ParityPlacement::kMiddleCylinders;
    } else if (const char* v = value("--parity-fine-chunk=")) {
      config.parity_fine_grain_chunk_blocks = std::atoi(v);
    } else if (const char* v = value("--sched=")) {
      config.disk_scheduling = parse_sched(v);
    } else if (const char* v = value("--cache=")) {
      config.cached = true;
      config.cache_bytes = static_cast<std::int64_t>(std::atoi(v)) << 20;
    } else if (const char* v = value("--destage-period=")) {
      config.destage_period_ms = std::atof(v);
    } else if (arg == "--no-old-data") {
      config.retain_old_data = false;
    } else if (arg == "--parity-caching") {
      config.parity_caching = true;
    } else if (const char* v = value("--fail-disk=")) {
      fail_disk = std::atoi(v);
    } else if (arg == "--rebuild") {
      rebuild = true;
    } else if (const char* v = value("--shards=")) {
      config.shards = std::atoi(v);
    } else if (const char* v = value("--shard-threads=")) {
      config.shard_threads = std::atoi(v);
    } else if (const char* v = value("--event-kernel=")) {
      config.event_kernel = parse_kernel(v);
    } else if (const char* v = value("--op-alloc=")) {
      config.op_alloc = parse_op_alloc(v);
    } else if (const char* v = value("--tail-deadline=")) {
      config.tail.enabled = true;
      config.tail.read_deadline_ms = std::atof(v);
    } else if (const char* v = value("--hedge-delay=")) {
      config.tail.enabled = true;
      config.tail.hedge_delay_ms = std::atof(v);
    } else if (const char* v = value("--hedge-ewma=")) {
      config.tail.enabled = true;
      config.tail.hedge_ewma_factor = std::atof(v);
    } else if (arg == "--redirect-on-slow") {
      config.tail.enabled = true;
      config.tail.redirect_on_slow = true;
    } else if (arg == "--reconstruct-on-slow") {
      config.tail.enabled = true;
      config.tail.reconstruct_on_slow = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--csv-header") {
      std::cout << csv_header << '\n';
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--progress") {
      progress = true;
    } else {
      fail("unknown flag: " + arg);
    }
  }

  try {
    config.validate();
    std::unique_ptr<TraceStream> trace;
    if (!trace_file.empty()) {
      trace = open_trace(trace_file);  // sniffs text vs binary
      if (workload.speed != 1.0)
        trace = std::make_unique<SpeedAdapter>(std::move(trace),
                                               workload.speed);
    } else {
      trace = make_workload(trace_name, workload);
    }

    Metrics m;
    if (config.shards >= 1) {
      if (fail_disk >= 0)
        fail("--shards is incompatible with --fail-disk/--rebuild");
      if (progress) {
        ShardedSimulator sim(config, trace->geometry(), workload.seed);
        sim.set_progress_hook(make_heartbeat());
        m = sim.run(*trace);
      } else {
        m = run_sharded_simulation(config, *trace, workload.seed);
      }
    } else {
      Simulator sim(config, trace->geometry());
      if (progress) sim.set_progress_hook(make_heartbeat());
      std::unique_ptr<RebuildProcess> rebuilder;
      if (fail_disk >= 0) {
        sim.mutable_controller(0).fail_disk(fail_disk);
        if (rebuild) {
          rebuilder = std::make_unique<RebuildProcess>(
              sim.event_queue(), sim.mutable_controller(0));
          rebuilder->start(nullptr);
        }
      }
      m = sim.run(*trace);
    }

    if (json) {
      m.to_json(std::cout);
      std::cout << '\n';
      return 0;
    }
    if (csv) {
      std::cout << config.describe() << ',' << m.requests << ','
                << m.mean_response_ms() << ',' << m.response_read.mean()
                << ',' << m.response_write.mean() << ','
                << m.response_all.p95() << ',' << m.response_all.p99() << ','
                << m.response_all.p999() << ',' << m.read_hit_ratio() << ','
                << m.write_hit_ratio() << ',' << m.mean_disk_utilization()
                << ',' << m.controller.transient_retries << ','
                << m.controller.retry_exhaustions << ','
                << m.controller.timeouts_fired << ','
                << m.controller.hedged_reads << ','
                << m.controller.hedge_wins << ','
                << m.controller.hedge_cancellations << ','
                << m.controller.redirected_reads << ','
                << m.controller.quarantine_reroutes << '\n';
      return 0;
    }

    std::cout << config.describe() << "\n\n";
    TablePrinter table({"metric", "value"});
    table.add_row({"requests", std::to_string(m.requests)});
    table.add_row({"mean response (ms)",
                   TablePrinter::num(m.mean_response_ms())});
    table.add_row({"read / write (ms)",
                   TablePrinter::num(m.response_read.mean()) + " / " +
                       TablePrinter::num(m.response_write.mean())});
    table.add_row({"p50 / p95 / p99 (ms)",
                   TablePrinter::num(m.response_all.p50()) + " / " +
                       TablePrinter::num(m.response_all.p95()) + " / " +
                       TablePrinter::num(m.response_all.p99())});
    if (config.cached) {
      table.add_row({"read / write hit",
                     TablePrinter::num(100.0 * m.read_hit_ratio(), 1) +
                         "% / " +
                         TablePrinter::num(100.0 * m.write_hit_ratio(), 1) +
                         "%"});
    }
    table.add_row({"mean / max disk util",
                   TablePrinter::num(m.mean_disk_utilization(), 3) + " / " +
                       TablePrinter::num(m.max_disk_utilization(), 3)});
    table.add_row({"arrays x disks",
                   std::to_string(m.arrays) + " x " +
                       std::to_string(m.total_disks / std::max(1, m.arrays))});
    if (fail_disk >= 0) {
      table.add_row({"degraded reads",
                     std::to_string(m.controller.degraded_reads)});
      table.add_row({"degraded writes",
                     std::to_string(m.controller.degraded_writes)});
    }
    const double mttdl_years =
        system_mttdl_hours(config.organization, trace->geometry().data_disks,
                           config.array_data_disks) /
        (24.0 * 365.0);
    table.add_row({"system MTTDL (years)", TablePrinter::num(mttdl_years, 1)});
    table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "raidsim_cli: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
