#include <gtest/gtest.h>

#include "layout/layout.hpp"

namespace raidsim {
namespace {

constexpr std::int64_t kBlocks = 1000;
constexpr std::int64_t kPhysical = 1200;

TEST(BaseLayout, MapsDiskMajor) {
  BaseLayout layout(4, kBlocks, kPhysical);
  EXPECT_EQ(layout.total_disks(), 4);
  EXPECT_EQ(layout.logical_capacity(), 4 * kBlocks);

  auto exts = layout.map_read(0, 1);
  ASSERT_EQ(exts.size(), 1u);
  EXPECT_EQ(exts[0].disk, 0);
  EXPECT_EQ(exts[0].start_block, 0);

  exts = layout.map_read(kBlocks + 17, 1);
  ASSERT_EQ(exts.size(), 1u);
  EXPECT_EQ(exts[0].disk, 1);
  EXPECT_EQ(exts[0].start_block, 17);
  EXPECT_EQ(exts[0].logical_start, kBlocks + 17);
}

TEST(BaseLayout, SplitsAtDiskBoundary) {
  BaseLayout layout(4, kBlocks, kPhysical);
  auto exts = layout.map_read(kBlocks - 2, 5);
  ASSERT_EQ(exts.size(), 2u);
  EXPECT_EQ(exts[0].disk, 0);
  EXPECT_EQ(exts[0].block_count, 2);
  EXPECT_EQ(exts[1].disk, 1);
  EXPECT_EQ(exts[1].start_block, 0);
  EXPECT_EQ(exts[1].block_count, 3);
}

TEST(BaseLayout, WritesArePlainWithoutParity) {
  BaseLayout layout(4, kBlocks, kPhysical);
  auto plans = layout.map_write(5, 1);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_FALSE(plans[0].parity.valid());
  EXPECT_TRUE(plans[0].full_stripe);
  ASSERT_EQ(plans[0].writes.size(), 1u);
  EXPECT_EQ(plans[0].writes[0].disk, 0);
}

TEST(BaseLayout, RangeChecks) {
  BaseLayout layout(2, kBlocks, kPhysical);
  EXPECT_THROW(layout.map_read(-1, 1), std::out_of_range);
  EXPECT_THROW(layout.map_read(0, 0), std::out_of_range);
  EXPECT_THROW(layout.map_read(2 * kBlocks, 1), std::out_of_range);
  EXPECT_THROW(layout.map_read(2 * kBlocks - 1, 2), std::out_of_range);
  EXPECT_NO_THROW(layout.map_read(2 * kBlocks - 1, 1));
}

TEST(BaseLayout, CapacityCheck) {
  EXPECT_THROW(BaseLayout(2, kPhysical + 1, kPhysical), std::invalid_argument);
  EXPECT_NO_THROW(BaseLayout(2, kPhysical, kPhysical));
}

TEST(MirrorLayout, PrimaryAndTwin) {
  MirrorLayout layout(3, kBlocks, kPhysical);
  EXPECT_EQ(layout.total_disks(), 6);
  EXPECT_EQ(layout.mirror_of(0), 1);
  EXPECT_EQ(layout.mirror_of(1), 0);
  EXPECT_EQ(layout.mirror_of(4), 5);
  EXPECT_EQ(layout.mirror_of(5), 4);

  auto exts = layout.map_read(kBlocks + 3, 1);
  ASSERT_EQ(exts.size(), 1u);
  EXPECT_EQ(exts[0].disk, 2);  // logical disk 1 -> physical 2
  EXPECT_EQ(exts[0].start_block, 3);
}

TEST(MirrorLayout, WritesGoToBothCopies) {
  MirrorLayout layout(3, kBlocks, kPhysical);
  auto plans = layout.map_write(kBlocks + 3, 2);
  ASSERT_EQ(plans.size(), 1u);
  const auto& plan = plans[0];
  EXPECT_FALSE(plan.parity.valid());
  EXPECT_TRUE(plan.full_stripe);
  ASSERT_EQ(plan.writes.size(), 2u);
  EXPECT_EQ(plan.writes[0].disk, 2);
  EXPECT_EQ(plan.writes[1].disk, 3);
  EXPECT_EQ(plan.writes[0].start_block, plan.writes[1].start_block);
  EXPECT_EQ(plan.writes[0].block_count, 2);
}

TEST(MirrorLayout, LogicalIdentityPreserved) {
  MirrorLayout layout(2, kBlocks, kPhysical);
  auto plans = layout.map_write(7, 1);
  ASSERT_EQ(plans.size(), 1u);
  for (const auto& w : plans[0].writes) EXPECT_EQ(w.logical_start, 7);
}

}  // namespace
}  // namespace raidsim
